"""Disjoint-set (union-find) over arbitrary hashable elements.

This is the engine behind the most-general-unifier construction
(:mod:`repro.algorithms.unifier`): unifying two cell values unions their
classes, and the non-injectivity measure ⊓ (paper Eq. 6) is read off the
per-side null counts of each class.

The structure supports *snapshots* with O(changes) rollback, which the greedy
signature algorithm and the exact branch-and-bound search use to test a
tentative tuple pair and undo it cheaply when it conflicts.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

E = TypeVar("E", bound=Hashable)


class UnionFind(Generic[E]):
    """Union-find with union-by-size, path compression, and undo log.

    Path compression is only applied when no snapshot is active (compression
    is hard to undo); with an active snapshot :meth:`find` walks parent
    pointers without mutating them, so rollback only needs to revert the
    explicit unions.

    Examples
    --------
    >>> uf = UnionFind()
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> token = uf.snapshot()
    >>> uf.union("b", "c")
    True
    >>> uf.rollback(token)
    >>> uf.connected("a", "c")
    False
    """

    def __init__(self, elements: Iterable[E] = ()) -> None:
        self._parent: dict[E, E] = {}
        self._size: dict[E, int] = {}
        # Undo log: list of (child_root, parent_root) unions, in order.
        self._log: list[tuple[E, E]] = []
        self._snapshots = 0
        for element in elements:
            self.add(element)

    def add(self, element: E) -> None:
        """Register ``element`` as a singleton class (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: E) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: E) -> E:
        """Return the canonical representative of ``element``'s class."""
        self.add(element)
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        if self._snapshots == 0:
            # Path compression (safe: no rollback can be requested).
            current = element
            while parent[current] != root:
                parent[current], current = root, parent[current]
        return root

    def connected(self, a: E, b: E) -> bool:
        """Whether ``a`` and ``b`` are in the same class."""
        return self.find(a) == self.find(b)

    def union(self, a: E, b: E) -> bool:
        """Merge the classes of ``a`` and ``b``.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a class.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        # root_b becomes a child of root_a.
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._log.append((root_b, root_a))
        return True

    def class_size(self, element: E) -> int:
        """Number of elements in ``element``'s class."""
        return self._size[self.find(element)]

    def snapshot(self) -> int:
        """Open a snapshot; returns a token for :meth:`rollback`.

        While any snapshot is open, path compression is disabled so that
        rollback restores the exact prior state.
        """
        self._snapshots += 1
        return len(self._log)

    def rollback(self, token: int) -> None:
        """Undo all unions performed after ``snapshot`` returned ``token``."""
        if self._snapshots <= 0:
            raise RuntimeError("rollback without a matching snapshot")
        while len(self._log) > token:
            child, parent = self._log.pop()
            self._parent[child] = child
            self._size[parent] -= self._size[child]
        self._snapshots -= 1

    def commit(self) -> None:
        """Close the most recent snapshot, keeping its unions."""
        if self._snapshots <= 0:
            raise RuntimeError("commit without a matching snapshot")
        self._snapshots -= 1

    def classes(self) -> Iterator[list[E]]:
        """Yield the classes as lists (order unspecified)."""
        buckets: dict[E, list[E]] = {}
        for element in self._parent:
            buckets.setdefault(self.find(element), []).append(element)
        yield from buckets.values()
