"""The :class:`Comparator` session object — the library's main entry point.

A :class:`Comparator` fixes the algorithm, match options, and execution
policy **once**, and keeps a content-addressed
:class:`~repro.parallel.SignatureCache` alive across calls, so comparing
one base instance against hundreds of variants (the paper's experiment
shape) prepares and indexes each distinct instance a single time.  All
comparison shapes hang off the one object:

    comparator = repro.Comparator(
        algorithm=repro.ExactOptions(node_budget=50_000),
        options=repro.MatchOptions.paper_default(),
        jobs=4,
    )
    results = comparator.compare_many(pairs)   # batch, cached, parallel
    one = comparator.compare(left, right)      # one pair, cached
    raw = comparator.compare_one(left, right)  # one pair, full knobs
    best = comparator.compare_anytime(left, right, deadline=2.0)

The module-level helpers :func:`repro.compare`,
:func:`repro.compare_many`, and :func:`repro.compare_anytime` are thin
wrappers that build a throwaway ``Comparator`` per call — convenient for
scripts, but sessions that compare more than once should hold a
``Comparator`` to keep its cache warm.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Sequence

from .algorithms.dispatch import run_algorithm
from .algorithms.options import (
    Algorithm,
    AlgorithmOptions,
    AnytimeOptions,
    resolve_algorithm,
)
from .algorithms.result import ComparisonResult
from .core.instance import Instance, prepare_for_comparison
from .mappings.constraints import MatchOptions
from .parallel.cache import SignatureCache
from .parallel.engine import compare_many
from .runtime.anytime import compare_anytime as _compare_anytime
from .runtime.budget import CancellationToken
from .runtime.faults import FaultPlan
from .runtime.isolation import WorkerLimits
from .runtime.retry import Executor, RetryPolicy


class Comparator:
    """A configured comparison session with a shared signature cache.

    Parameters
    ----------
    algorithm:
        An :class:`~repro.Algorithm` member, a typed options instance
        (e.g. :class:`~repro.ExactOptions`), or ``None`` for signature
        defaults.  Legacy strings are accepted with a
        ``DeprecationWarning``.
    options:
        Match constraints and λ applied to every comparison.
    jobs:
        Worker fan-out for :meth:`compare_many` (``1`` = in-process
        serial); :meth:`compare` always runs in-process.
    cache:
        A cache to share with other sessions; a private
        :class:`SignatureCache` is created when omitted.
    deadline:
        Per-pair cooperative deadline in seconds.
    limits / retry / fault_plan:
        Worker-path execution policy, as in
        :func:`repro.parallel.compare_many`.
    out:
        Optional sink for retry/progress lines.

    Examples
    --------
    >>> import repro
    >>> comparator = repro.Comparator(algorithm=repro.Algorithm.EXACT)
    >>> a = repro.Instance.from_rows("R", ("A",), [("x",)])
    >>> b = repro.Instance.from_rows("R", ("A",), [("y",)])
    >>> comparator.compare(a, b).similarity
    0.0
    >>> comparator.cache.misses
    2
    """

    def __init__(
        self,
        algorithm: Algorithm | AlgorithmOptions | str | None = None,
        options: MatchOptions | None = None,
        *,
        jobs: int = 1,
        cache: SignatureCache | None = None,
        deadline: float | None = None,
        refine: bool = False,
        limits: WorkerLimits | None = None,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        out: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = resolve_algorithm(algorithm)
        self.options = options
        self.jobs = jobs
        self.cache = cache if cache is not None else SignatureCache()
        self.deadline = deadline
        self.refine = refine
        self.limits = limits
        self.retry = retry
        self.fault_plan = fault_plan
        self.out = out
        # Live delta sessions keyed by id() of their latest result; the
        # weakref lets a session die with the result chain it serves.
        self._delta_sessions: dict[
            int, tuple["weakref.ref[ComparisonResult]", object]
        ] = {}

    def compare(self, left: Instance, right: Instance) -> ComparisonResult:
        """Compare one pair in-process, through the session cache."""
        [result] = self.compare_many([(left, right)], jobs=1)
        return result

    def compare_one(
        self,
        left: Instance,
        right: Instance,
        *,
        options: MatchOptions | None = None,
        prepare: bool = True,
        align_schemas: bool = False,
        refine: bool | None = None,
        deadline: float | None = None,
        token: CancellationToken | None = None,
        executor: Executor | None = None,
        control=None,
    ) -> ComparisonResult:
        """One comparison with every per-call knob exposed (no cache).

        This is the session form of :func:`repro.compare`: the algorithm
        comes from the session, everything else can be overridden per
        call.  Unlike :meth:`compare` it does **not** go through the
        signature cache — use it when you need ``prepare=False`` (the
        match must reference your exact tuple objects), schema alignment,
        cancellation, or a fault-tolerant executor for a single pair.

        Parameters mirror :func:`repro.compare`; ``options``, ``refine``
        and ``deadline`` default to the session's settings.
        """
        if align_schemas:
            from .versioning.operations import align_schemas as _align

            left, right = _align(left, right)
        if prepare:
            left, right = prepare_for_comparison(left, right)
        return run_algorithm(
            left,
            right,
            self.spec,
            self.options if options is None else options,
            control=control,
            deadline=self.deadline if deadline is None else deadline,
            token=token,
            executor=executor,
            refine=self.refine if refine is None else refine,
        )

    def compare_anytime(
        self,
        left: Instance,
        right: Instance,
        *,
        deadline: float | None = None,
        options: MatchOptions | None = None,
        token: CancellationToken | None = None,
        prepare: bool = True,
        executor: Executor | None = None,
    ) -> ComparisonResult:
        """Best similarity obtainable within ``deadline`` seconds.

        Runs the anytime ladder (signature → refine → exact) regardless
        of the session algorithm; when the session was configured with
        :class:`~repro.AnytimeOptions`, its knobs (node budget, refine
        move budget, check interval) shape the ladder.  ``deadline``
        defaults to the session deadline.
        """
        spec = (
            self.spec
            if isinstance(self.spec, AnytimeOptions)
            else AnytimeOptions()
        )
        kwargs = {}
        if spec.refine_move_budget is not None:
            kwargs["refine_move_budget"] = spec.refine_move_budget
        return _compare_anytime(
            left,
            right,
            deadline=self.deadline if deadline is None else deadline,
            options=self.options if options is None else options,
            token=token,
            prepare=prepare,
            node_budget=spec.node_budget,
            check_interval=spec.check_interval,
            executor=executor,
            **kwargs,
        )

    def compare_many(
        self,
        pairs: Iterable[tuple[Instance, Instance]],
        *,
        jobs: int | None = None,
        fault_pairs: Sequence[int] | None = None,
    ) -> list[ComparisonResult]:
        """Compare every pair with the session configuration; input order.

        ``jobs`` overrides the session fan-out for this batch.
        """
        return compare_many(
            pairs,
            self.spec,
            self.options,
            jobs=self.jobs if jobs is None else jobs,
            cache=self.cache,
            deadline=self.deadline,
            refine=self.refine,
            limits=self.limits,
            retry=self.retry,
            fault_plan=self.fault_plan,
            fault_pairs=fault_pairs,
            out=self.out,
        )

    # -- delta-aware comparison ------------------------------------------

    def delta_session(
        self,
        left: Instance,
        right: Instance,
        *,
        options: MatchOptions | None = None,
        align_preference: bool = True,
        params=None,
        fallback_fraction: float | None = None,
    ):
        """Open a warm :class:`~repro.delta.DeltaSession` for this pair.

        The instances are used **as-is** (no preparation): delta batches
        reference the caller's tuple ids, so the ids must stay stable.
        The instances must already be comparable (disjoint tuple ids and
        null labels) — prepare them once with
        :func:`repro.core.instance.prepare_for_comparison` if needed and
        keep expressing batches against the prepared right instance.

        The session's initial result is registered with this comparator,
        so ``compare_delta(session.last_result, batch)`` continues it.
        """
        from .delta.engine import DEFAULT_FALLBACK_FRACTION, DeltaSession

        session = DeltaSession(
            left,
            right,
            self.options if options is None else options,
            align_preference=align_preference,
            params=params,
            fallback_fraction=(
                DEFAULT_FALLBACK_FRACTION
                if fallback_fraction is None
                else fallback_fraction
            ),
        )
        self._register_delta(session.last_result, session)
        return session

    def compare_delta(self, prev_result: ComparisonResult, batch):
        """Re-compare after a :class:`~repro.delta.DeltaBatch` warm.

        ``batch`` mutates the *right* instance of ``prev_result``'s match
        (ops reference that instance's tuple ids).  When ``prev_result``
        came from this comparator's delta machinery the live session is
        reused; otherwise the match is replayed into a fresh session
        first (no greedy re-run either way).

        Returns a result with ``algorithm == "signature-delta"`` whose
        ``stats["staleness_bound"]`` certifies how far the warm answer
        can trail a cold re-comparison; ``stats["certified_exact"]``
        flags a zero bound.
        """
        from .delta.engine import DeltaSession

        session = self._live_delta_session(prev_result)
        if session is None:
            session = DeltaSession.from_result(prev_result)
        result = session.advance(batch)
        self._register_delta(result, session)
        return result

    def _register_delta(self, result: ComparisonResult, session) -> None:
        self._purge_delta_sessions()
        self._delta_sessions[id(result)] = (weakref.ref(result), session)

    def _live_delta_session(self, result: ComparisonResult):
        entry = self._delta_sessions.get(id(result))
        if entry is None:
            return None
        ref, session = entry
        if ref() is not result or session.last_result is not result:
            # id() reuse after GC, or the session moved past this result.
            del self._delta_sessions[id(result)]
            return None
        return session

    def _purge_delta_sessions(self) -> None:
        dead = [key for key, (ref, _) in self._delta_sessions.items()
                if ref() is None]
        for key in dead:
            del self._delta_sessions[key]

    def cache_stats(self) -> dict:
        """The session cache's counters (entries/hits/misses/hit_rate)."""
        return self.cache.stats()

    def __repr__(self) -> str:
        return (
            f"Comparator(algorithm={self.spec.algorithm.value!r}, "
            f"jobs={self.jobs}, cache={self.cache.stats()})"
        )


__all__ = ["Comparator"]
