"""The :class:`Comparator` session object: one configuration, many comparisons.

:func:`repro.compare` is stateless — every call re-resolves options and
re-prepares both instances.  A :class:`Comparator` instead fixes the
algorithm, match options, and execution policy **once**, and keeps a
content-addressed :class:`~repro.parallel.SignatureCache` alive across
calls, so comparing one base instance against hundreds of variants (the
paper's experiment shape) prepares and indexes each distinct instance a
single time.

    comparator = repro.Comparator(
        algorithm=repro.ExactOptions(node_budget=50_000),
        options=repro.MatchOptions.paper_default(),
        jobs=4,
    )
    results = comparator.compare_many(pairs)
    one = comparator.compare(left, right)
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .algorithms.options import Algorithm, AlgorithmOptions, resolve_algorithm
from .algorithms.result import ComparisonResult
from .core.instance import Instance
from .mappings.constraints import MatchOptions
from .parallel.cache import SignatureCache
from .parallel.engine import compare_many
from .runtime.faults import FaultPlan
from .runtime.isolation import WorkerLimits
from .runtime.retry import RetryPolicy


class Comparator:
    """A configured comparison session with a shared signature cache.

    Parameters
    ----------
    algorithm:
        An :class:`~repro.Algorithm` member, a typed options instance
        (e.g. :class:`~repro.ExactOptions`), or ``None`` for signature
        defaults.  Legacy strings are accepted with a
        ``DeprecationWarning``.
    options:
        Match constraints and λ applied to every comparison.
    jobs:
        Worker fan-out for :meth:`compare_many` (``1`` = in-process
        serial); :meth:`compare` always runs in-process.
    cache:
        A cache to share with other sessions; a private
        :class:`SignatureCache` is created when omitted.
    deadline:
        Per-pair cooperative deadline in seconds.
    limits / retry / fault_plan:
        Worker-path execution policy, as in
        :func:`repro.parallel.compare_many`.
    out:
        Optional sink for retry/progress lines.

    Examples
    --------
    >>> import repro
    >>> comparator = repro.Comparator(algorithm=repro.Algorithm.EXACT)
    >>> a = repro.Instance.from_rows("R", ("A",), [("x",)])
    >>> b = repro.Instance.from_rows("R", ("A",), [("y",)])
    >>> comparator.compare(a, b).similarity
    0.0
    >>> comparator.cache.misses
    2
    """

    def __init__(
        self,
        algorithm: Algorithm | AlgorithmOptions | str | None = None,
        options: MatchOptions | None = None,
        *,
        jobs: int = 1,
        cache: SignatureCache | None = None,
        deadline: float | None = None,
        refine: bool = False,
        limits: WorkerLimits | None = None,
        retry: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        out: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.spec = resolve_algorithm(algorithm)
        self.options = options
        self.jobs = jobs
        self.cache = cache if cache is not None else SignatureCache()
        self.deadline = deadline
        self.refine = refine
        self.limits = limits
        self.retry = retry
        self.fault_plan = fault_plan
        self.out = out

    def compare(self, left: Instance, right: Instance) -> ComparisonResult:
        """Compare one pair in-process, through the session cache."""
        [result] = self.compare_many([(left, right)], jobs=1)
        return result

    def compare_many(
        self,
        pairs: Iterable[tuple[Instance, Instance]],
        *,
        jobs: int | None = None,
        fault_pairs: Sequence[int] | None = None,
    ) -> list[ComparisonResult]:
        """Compare every pair with the session configuration; input order.

        ``jobs`` overrides the session fan-out for this batch.
        """
        return compare_many(
            pairs,
            self.spec,
            self.options,
            jobs=self.jobs if jobs is None else jobs,
            cache=self.cache,
            deadline=self.deadline,
            refine=self.refine,
            limits=self.limits,
            retry=self.retry,
            fault_plan=self.fault_plan,
            fault_pairs=fault_pairs,
            out=self.out,
        )

    def cache_stats(self) -> dict:
        """The session cache's counters (entries/hits/misses/hit_rate)."""
        return self.cache.stats()

    def __repr__(self) -> str:
        return (
            f"Comparator(algorithm={self.spec.algorithm.value!r}, "
            f"jobs={self.jobs}, cache={self.cache.stats()})"
        )


__all__ = ["Comparator"]
