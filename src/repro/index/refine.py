"""Candidate refinement: from admissible bounds to exact ranked hits.

The index answers a query in two phases.  **Candidate generation**
(:mod:`~repro.index.sketch` bounds + :mod:`~repro.index.lsh`) is cheap and
approximate-from-above; **refinement** (this module) runs the real
:func:`~repro.algorithms.signature.signature_compare` on as few candidates
as the bounds allow, through the PR-3 batch machinery:

* every full comparison goes through the shared
  :class:`~repro.parallel.SignatureCache`, so an instance is prepared and
  signature-indexed once no matter how many queries touch it;
* with ``RefinePolicy(jobs > 1)`` refinement chunks fan over the
  :class:`~repro.parallel.pool.WorkerPool` (with the PR-2 retry/limit/fault
  policies) via :func:`repro.parallel.compare_many`;
* **upper-bound-ordered early termination**: candidates are refined in
  descending bound order, and refinement stops as soon as the best
  unrefined bound drops *strictly below* the current k-th best true
  similarity — an unrefined candidate can then never enter the top-k (its
  true score is ≤ its bound), and ties are never cut (ties refine).

Exactness: with admissible bounds and complete outcomes, the refined hits
are *identical* — names, scores, matched-tuple counts, tie order — to the
brute-force scan over every comparable table.  ``benchmarks/bench_index.py``
gates on that equality (recall@k = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from ..algorithms.assignment import assignment_bounds as solve_assignment_bounds
from ..algorithms.dispatch import run_algorithm
from ..algorithms.options import (
    Algorithm,
    AlgorithmOptions,
    SignatureOptions,
    resolve_algorithm,
)
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import signature_compare
from ..core.instance import Instance
from ..mappings.constraints import MatchOptions
from ..obs.metrics import active_metrics
from ..obs.trace import span
from ..parallel.cache import PreparedSide, SignatureCache
from ..parallel.engine import compare_many
from ..runtime.faults import FaultPlan
from ..runtime.isolation import WorkerLimits
from ..runtime.retry import RetryPolicy
from ..versioning.operations import align_schemas
from .sketch import InstanceSketch, comparable, similarity_upper_bound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import SimilarityIndex


@dataclass(frozen=True)
class SearchHit:
    """One ranked search result."""

    name: str
    similarity: float
    matched_tuples: int

    def __repr__(self) -> str:
        return (
            f"SearchHit({self.name!r}, sim={self.similarity:.3f}, "
            f"matched={self.matched_tuples})"
        )


@dataclass(frozen=True)
class DuplicatePair:
    """A near-duplicate table pair found in the lake."""

    first: str
    second: str
    similarity: float


@dataclass(frozen=True)
class RefinePolicy:
    """Execution policy for the refinement phase.

    ``jobs > 1`` fans refinement chunks over fork workers;
    ``deadline``/``limits``/``retry``/``fault_plan`` are the PR-2/PR-3
    worker policies, applied per comparison.  Note that a deadline that
    actually trips makes the affected scores lower bounds, which weakens
    the exactness guarantee — keep policies off when bit-exact parity with
    brute force is required.

    ``algorithm`` accepts the same vocabulary as :func:`repro.compare`
    (an :class:`~repro.Algorithm` member, a typed options instance, or a
    legacy string).  ``None`` — the default — refines with the signature
    algorithm, whose scores the sketch bounds are admissible for; other
    algorithms re-rank with their own scores, so the index-vs-brute-force
    parity guarantee then only holds against a brute force running the
    same algorithm.

    ``assignment_bounds`` tightens each surviving candidate's sketch bound
    with the solved 1:1 assignment relaxation
    (:func:`repro.algorithms.assignment.assignment_bounds`) before
    refinement.  The tightened bound is still an admissible upper bound on
    the true similarity, so exactness is preserved; the gain is more
    bound-only pruning at the cost of one polynomial solve per candidate.
    """

    jobs: int = 1
    deadline: float | None = None
    limits: WorkerLimits | None = None
    retry: RetryPolicy | None = None
    fault_plan: FaultPlan | None = None
    out: Callable[[str], None] | None = None
    algorithm: "Algorithm | AlgorithmOptions | str | None" = None
    assignment_bounds: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def resolved_algorithm(self) -> AlgorithmOptions:
        """The refinement algorithm as typed options (signature default)."""
        if self.algorithm is None:
            return SignatureOptions()
        return resolve_algorithm(self.algorithm)

    @property
    def needs_workers(self) -> bool:
        return (
            self.jobs > 1
            or self.limits is not None
            or self.fault_plan is not None
        )


@dataclass
class RefineReport:
    """What a search/dedup run did, for benchmarks and diagnostics.

    ``refined`` counts full ``signature_compare`` runs — the quantity the
    index exists to minimize; brute force spends one per comparable table
    (or pair).  ``pruned`` candidates were eliminated by the admissible
    bound alone; ``incomparable`` were skipped for different relation
    names, exactly as the brute-force path skips them.
    """

    candidates: int = 0
    bound_evaluations: int = 0
    assignment_bound_evaluations: int = 0
    refined: int = 0
    pruned: int = 0
    incomparable: int = 0
    lsh_candidates: int = 0
    bounds: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "bound_evaluations": self.bound_evaluations,
            "assignment_bound_evaluations": self.assignment_bound_evaluations,
            "refined": self.refined,
            "pruned": self.pruned,
            "incomparable": self.incomparable,
            "lsh_candidates": self.lsh_candidates,
        }

    def publish(self, op: str) -> None:
        """Mirror the report's counters into the active metrics registry.

        ``op`` labels the operation (``search`` / ``dedup``) so one run's
        searches and dedups aggregate separately.  No-op when metrics are
        disabled.
        """
        registry = active_metrics()
        if registry is None:
            return
        registry.counter("index.runs", 1, op=op)
        for key, value in self.as_dict().items():
            registry.counter(f"index.{key}", value, op=op)


class QueryComparer:
    """One query instance compared against many candidates, prep hoisted.

    The historical lake loop re-prepared and re-aligned the *query* for
    every candidate; this helper prepares it once through the shared
    :class:`SignatureCache` and reuses the prepared side (tuples + Alg. 4
    signature index) across all schema-compatible candidates.  Candidates
    with differing attribute sets fall back to per-pair Sec. 4.3 alignment
    — padding depends on the candidate's schema, so it cannot be hoisted —
    but the padded sides still flow through the cache.
    """

    def __init__(
        self,
        cache: SignatureCache,
        options: MatchOptions,
        query: Instance,
        spec: AlgorithmOptions | None = None,
    ) -> None:
        self.cache = cache
        self.options = options
        self.query = query
        self.spec = SignatureOptions() if spec is None else spec
        self._query_names = set(query.schema.relation_names())
        self._query_entry: PreparedSide | None = None

    def prepared_pair(
        self, candidate: Instance
    ) -> tuple[PreparedSide, PreparedSide] | None:
        """Cache entries for (query, candidate), or ``None`` if incomparable."""
        if self._query_names != set(candidate.schema.relation_names()):
            return None
        if self.query.schema.is_compatible_with(candidate.schema):
            if self._query_entry is None:
                self._query_entry = self.cache.get(self.query, "left")
            left_entry = self._query_entry
            right_entry = self.cache.get(candidate, "right")
        else:
            left, right = align_schemas(self.query, candidate)
            left_entry = self.cache.get(left, "left")
            right_entry = self.cache.get(right, "right")
        return left_entry, right_entry

    def compare(self, candidate: Instance) -> ComparisonResult | None:
        """Full comparison with the policy algorithm, or ``None``.

        Signature refinement (the default) reuses the cached Alg. 4
        indexes directly; other algorithms run through the common
        dispatcher, which forwards the indexes to those able to exploit
        them.
        """
        pair = self.prepared_pair(candidate)
        if pair is None:
            return None
        left_entry, right_entry = pair
        if isinstance(self.spec, SignatureOptions):
            return signature_compare(
                left_entry.instance,
                right_entry.instance,
                self.options,
                align_preference=self.spec.align_preference,
                left_index=left_entry.index,
                right_index=right_entry.index,
            )
        return run_algorithm(
            left_entry.instance,
            right_entry.instance,
            self.spec,
            self.options,
            left_index=left_entry.index,
            right_index=right_entry.index,
        )


def _aligned_pair(
    query: Instance, candidate: Instance
) -> tuple[Instance, Instance]:
    """The pair as the brute-force path would compare it (aligned if needed)."""
    if query.schema.is_compatible_with(candidate.schema):
        return query, candidate
    return align_schemas(query, candidate)


def _refine_batch(
    index: "SimilarityIndex",
    comparer: QueryComparer,
    names: Sequence[str],
    policy: RefinePolicy,
) -> list[ComparisonResult]:
    """Run full comparisons for a chunk of candidates, serial or pooled."""
    if not policy.needs_workers:
        results = []
        for name in names:
            result = comparer.compare(index.get(name))
            assert result is not None  # comparability pre-checked by bounds
            results.append(result)
        return results
    pairs = [
        _aligned_pair(comparer.query, index.get(name)) for name in names
    ]
    return compare_many(
        pairs,
        policy.resolved_algorithm(),
        index.options,
        jobs=policy.jobs,
        cache=index.cache,
        deadline=policy.deadline,
        limits=policy.limits,
        retry=policy.retry,
        fault_plan=policy.fault_plan,
        out=policy.out,
    )


def refine_search(
    index: "SimilarityIndex",
    query: Instance,
    top_k: int,
    policy: RefinePolicy | None = None,
    exact: bool = True,
) -> tuple[list[SearchHit], RefineReport]:
    """Rank index tables against ``query``; exact top-k with pruning.

    With ``exact=True`` (default) the result is identical to brute force:
    every comparable table gets a bound, refinement proceeds in descending
    bound order, and stops only when no unrefined table can reach the
    top-k.  ``exact=False`` restricts the candidate set to the LSH
    shortlist — sub-linear, but a sufficiently similar table outside every
    shared bucket can be missed.
    """
    with span("index.search", top_k=top_k, exact=exact) as search_span:
        hits, report = _refine_search_impl(index, query, top_k, policy, exact)
        search_span.set(**report.as_dict())
    report.publish("search")
    return hits, report


def _refine_search_impl(
    index: "SimilarityIndex",
    query: Instance,
    top_k: int,
    policy: RefinePolicy | None,
    exact: bool,
) -> tuple[list[SearchHit], RefineReport]:
    policy = policy if policy is not None else RefinePolicy()
    report = RefineReport()
    if top_k <= 0 or len(index) == 0:
        return [], report

    query_sketch = InstanceSketch.build(query, index.params)
    shortlist = index.lsh.candidates(query_sketch.minhash)
    report.lsh_candidates = len(shortlist)

    names = sorted(shortlist & set(index.names())) if not exact else index.names()
    bounds: dict[str, float] = {}
    for name in names:
        candidate_sketch = index.sketch(name)
        if not comparable(query_sketch, candidate_sketch):
            report.incomparable += 1
            continue
        report.bound_evaluations += 1
        bounds[name] = similarity_upper_bound(
            query_sketch, candidate_sketch, index.options
        )
    report.candidates = len(bounds)
    report.bounds = dict(bounds)

    order = sorted(bounds, key=lambda name: (-bounds[name], name))
    comparer = QueryComparer(
        index.cache, index.options, query, spec=policy.resolved_algorithm()
    )
    if policy.assignment_bounds:
        for name in order:
            pair = comparer.prepared_pair(index.get(name))
            if pair is None:
                continue
            left_entry, right_entry = pair
            report.assignment_bound_evaluations += 1
            tightened = solve_assignment_bounds(
                left_entry.instance, right_entry.instance, index.options
            ).upper_bound
            if tightened < bounds[name]:
                bounds[name] = tightened
        report.bounds = dict(bounds)
        order = sorted(bounds, key=lambda name: (-bounds[name], name))
    hits: list[SearchHit] = []
    position = 0
    chunk = max(1, policy.jobs)
    while position < len(order):
        if len(hits) >= top_k:
            hits.sort(key=lambda h: (-h.similarity, h.name))
            kth_similarity = hits[top_k - 1].similarity
            if bounds[order[position]] < kth_similarity:
                break  # nothing left can enter the top-k (bound admissible)
        batch = order[position : position + chunk]
        position += len(batch)
        for name, result in zip(
            batch, _refine_batch(index, comparer, batch, policy)
        ):
            report.refined += 1
            hits.append(
                SearchHit(
                    name=name,
                    similarity=result.similarity,
                    matched_tuples=len(result.match.m),
                )
            )
    report.pruned = len(order) - report.refined
    hits.sort(key=lambda h: (-h.similarity, h.name))
    return hits[:top_k], report


def _comparable_pairs(index: "SimilarityIndex") -> Iterator[tuple[str, str]]:
    names = index.names()
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            yield first, second


def refine_dedup(
    index: "SimilarityIndex",
    threshold: float,
    policy: RefinePolicy | None = None,
    exact: bool = True,
) -> tuple[list[DuplicatePair], RefineReport]:
    """All table pairs with true similarity ≥ ``threshold``.

    Exact mode bound-checks every pair (cheap) and refines only pairs whose
    admissible bound reaches the threshold — a pair below it provably
    cannot be a duplicate.  ``exact=False`` refines only LSH candidate
    pairs (sub-quadratic; may miss duplicates whose signatures never share
    a band).
    """
    with span("index.dedup", threshold=threshold, exact=exact) as dedup_span:
        pairs, report = _refine_dedup_impl(index, threshold, policy, exact)
        dedup_span.set(**report.as_dict())
    report.publish("dedup")
    return pairs, report


def _refine_dedup_impl(
    index: "SimilarityIndex",
    threshold: float,
    policy: RefinePolicy | None,
    exact: bool,
) -> tuple[list[DuplicatePair], RefineReport]:
    policy = policy if policy is not None else RefinePolicy()
    report = RefineReport()
    lsh_pairs = set(index.lsh.candidate_pairs())
    report.lsh_candidates = len(lsh_pairs)

    pair_source = (
        sorted(lsh_pairs) if not exact else list(_comparable_pairs(index))
    )
    tighteners: dict[str, QueryComparer] = {}
    survivors: list[tuple[str, str, float]] = []
    for first, second in pair_source:
        first_sketch, second_sketch = index.sketch(first), index.sketch(second)
        if not comparable(first_sketch, second_sketch):
            report.incomparable += 1
            continue
        report.bound_evaluations += 1
        bound = similarity_upper_bound(
            first_sketch, second_sketch, index.options
        )
        if bound < threshold:
            report.pruned += 1
            continue
        if policy.assignment_bounds:
            comparer = tighteners.get(first)
            if comparer is None:
                comparer = tighteners[first] = QueryComparer(
                    index.cache,
                    index.options,
                    index.get(first),
                    spec=policy.resolved_algorithm(),
                )
            pair = comparer.prepared_pair(index.get(second))
            if pair is not None:
                left_entry, right_entry = pair
                report.assignment_bound_evaluations += 1
                tightened = solve_assignment_bounds(
                    left_entry.instance, right_entry.instance, index.options
                ).upper_bound
                bound = min(bound, tightened)
                if bound < threshold:
                    report.pruned += 1
                    continue
        survivors.append((first, second, bound))
    report.candidates = len(survivors)

    # LSH-confirmed pairs first within equal bounds: the likeliest
    # duplicates refine early (pure ordering; the result set is unaffected).
    survivors.sort(
        key=lambda item: (
            -item[2],
            (item[0], item[1]) not in lsh_pairs,
            item[0],
            item[1],
        )
    )
    pairs: list[DuplicatePair] = []
    position = 0
    chunk = max(1, policy.jobs)
    while position < len(survivors):
        batch = survivors[position : position + chunk]
        position += len(batch)
        comparers = [
            (
                first,
                second,
                QueryComparer(
                    index.cache,
                    index.options,
                    index.get(first),
                    spec=policy.resolved_algorithm(),
                ),
            )
            for first, second, _bound in batch
        ]
        if not policy.needs_workers:
            results = [
                comparer.compare(index.get(second))
                for _first, second, comparer in comparers
            ]
        else:
            raw_pairs = [
                _aligned_pair(index.get(first), index.get(second))
                for first, second, _bound in batch
            ]
            results = compare_many(
                raw_pairs,
                policy.resolved_algorithm(),
                index.options,
                jobs=policy.jobs,
                cache=index.cache,
                deadline=policy.deadline,
                limits=policy.limits,
                retry=policy.retry,
                fault_plan=policy.fault_plan,
                out=policy.out,
            )
        for (first, second, _bound), result in zip(batch, results):
            report.refined += 1
            if result is not None and result.similarity >= threshold:
                pairs.append(DuplicatePair(first, second, result.similarity))
    pairs.sort(key=lambda p: (-p.similarity, p.first, p.second))
    return pairs, report


__all__ = [
    "DuplicatePair",
    "QueryComparer",
    "RefinePolicy",
    "RefineReport",
    "SearchHit",
    "refine_dedup",
    "refine_search",
]
