"""The :class:`SimilarityIndex` facade: sketches + LSH + cache + store.

One object owns everything a data lake needs for sub-linear similarity
discovery: the registered instances, their sketches
(:mod:`~repro.index.sketch`), the banded LSH tables
(:mod:`~repro.index.lsh`), a shared signature cache for refinement
(:mod:`repro.parallel`), and — optionally — a bound on-disk store
(:mod:`~repro.index.store`) that mirrors every ``add``/``remove``/
``update`` incrementally.

The index is *maintained*, not rebuilt: adding, removing, or replacing a
single table touches only that table's sketch, its LSH buckets, and (when
bound) its one store file — in the spirit of incremental maintenance of
incomplete databases (Chabin et al.), where re-deriving the world on every
update is the thing to avoid.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..delta.batch import DeltaBatch
from ..delta.maintenance import SketchMaintainer
from ..delta.report import (
    MODE_ADDED,
    MODE_INCREMENTAL,
    MODE_REBUILT,
    UpdateReport,
)
from ..mappings.constraints import MatchOptions
from ..parallel.cache import SignatureCache
from .lsh import LSHIndex
from .refine import (
    DuplicatePair,
    RefinePolicy,
    RefineReport,
    SearchHit,
    refine_dedup,
    refine_search,
)
from .sketch import IndexParams, InstanceSketch

if True:  # pragma: no cover - typing convenience, avoids a cycle at runtime
    from typing import TYPE_CHECKING

    if TYPE_CHECKING:
        from .store import IndexStore


class SimilarityIndex:
    """A persistent, incrementally maintained sketch index over instances.

    Parameters
    ----------
    params:
        Sketch/LSH shape (:class:`IndexParams`); fixed for the life of the
        index and persisted with it.
    options:
        Match constraints and λ used for bounds *and* refinement — the
        bound is admissible with respect to exactly these options.
    cache:
        A :class:`SignatureCache` shared with other components (e.g. a
        :class:`~repro.Comparator`); a private one is created if omitted.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> index = SimilarityIndex()
    >>> index.add("a", Instance.from_rows("R", ("X",), [("1",), ("2",)]))
    >>> index.add("b", Instance.from_rows("R", ("X",), [("9",)]))
    >>> [hit.name for hit in index.search(
    ...     Instance.from_rows("R", ("X",), [("1",)]), top_k=1)]
    ['a']
    """

    def __init__(
        self,
        params: IndexParams | None = None,
        options: MatchOptions | None = None,
        cache: SignatureCache | None = None,
        *,
        delta_maintenance: bool = True,
    ) -> None:
        self.params = params if params is not None else IndexParams()
        self.options = (
            options if options is not None else MatchOptions.versioning()
        )
        self.cache = cache if cache is not None else SignatureCache()
        self.lsh = LSHIndex(self.params)
        self.delta_maintenance = delta_maintenance
        self._instances: dict[str, Instance] = {}
        self._sketches: dict[str, InstanceSketch] = {}
        self._maintainers: dict[str, SketchMaintainer] = {}
        self._store: "IndexStore | None" = None
        self.last_report: RefineReport | None = None
        self.last_update: UpdateReport | None = None

    # -- registry -------------------------------------------------------------

    def add(self, name: str, instance: Instance) -> UpdateReport:
        """Register ``instance`` under ``name``; sketches and persists it.

        With ``delta_maintenance`` on (the default) the table is seeded
        into a live :class:`~repro.delta.SketchMaintainer`, so later
        ``update``/``update_delta`` calls repair the sketch instead of
        re-sketching.  Returns an :class:`~repro.delta.UpdateReport` with
        ``mode == "added"`` (the new sketch rides on ``report.sketch``).
        """
        if name in self._instances:
            raise ValueError(f"table {name!r} already in the index")
        if self.delta_maintenance:
            maintainer = SketchMaintainer(instance, self.params)
            sketch = maintainer.sketch_for(instance)
            self._maintainers[name] = maintainer
        else:
            sketch = InstanceSketch.build(instance, self.params)
        self._instances[name] = instance
        self._sketches[name] = sketch
        self.lsh.add(name, sketch.minhash)
        if self._store is not None:
            self._store.write_table(name, instance, sketch)
        report = UpdateReport(
            table=name,
            mode=MODE_ADDED,
            relations_touched=tuple(sorted(instance.schema.relation_names())),
            lsh_buckets_entered=self.params.bands,
            sketch=sketch,
        )
        self.last_update = report
        return report

    def remove(self, name: str) -> None:
        """Drop a table from the index (and the bound store, if any)."""
        if name not in self._instances:
            raise KeyError(self._unknown(name))
        del self._instances[name]
        del self._sketches[name]
        self._maintainers.pop(name, None)
        self.lsh.remove(name)
        if self._store is not None:
            self._store.remove_table(name)

    def update(self, name: str, instance: Instance) -> UpdateReport:
        """Replace the instance registered under ``name`` (must exist).

        Deliberately NOT remove-then-add: the store mirrors an update as a
        single upsert log record, so a crash mid-update recovers to the
        old instance or the new one — never to the table missing.

        With ``delta_maintenance`` on and an unchanged schema, the
        replacement is diffed into a :class:`~repro.delta.DeltaBatch` and
        maintained incrementally (``mode == "incremental"``): sketch
        columns are repaired token-by-token, min-hash slots patched or
        selectively recomputed, and only the changed LSH band buckets are
        touched.  A table restored from disk seeds its maintainer lazily
        here.  Schema changes (or ``delta_maintenance=False``) re-sketch
        the table instead (``"rebuilt"``).
        """
        if name not in self._instances:
            raise KeyError(self._unknown(name))
        old = self._instances[name]
        if self.delta_maintenance and old.schema.is_compatible_with(
            instance.schema
        ):
            maintainer = self._maintainers.get(name)
            if maintainer is None:
                # Store-restored tables skip seeding until the first
                # mutation actually needs the maintainer.
                maintainer = SketchMaintainer(old, self.params)
                self._maintainers[name] = maintainer
            batch = DeltaBatch.from_instances(old, instance)
            return self._apply_maintained(name, maintainer, batch, instance)
        return self._rebuild(name, instance)

    def update_delta(self, name: str, batch: DeltaBatch) -> UpdateReport:
        """Apply a :class:`~repro.delta.DeltaBatch` to a registered table.

        The batch's ops reference the stored instance's tuple ids; the
        sketch, min-hash, and LSH membership are repaired in place and the
        bound store (if any) mirrors the result as one upsert.  A table
        restored from disk without a live maintainer is seeded lazily
        from its current instance first, then maintained.
        """
        if name not in self._instances:
            raise KeyError(self._unknown(name))
        old = self._instances[name]
        new_instance = batch.apply(old)
        maintainer = self._maintainers.get(name)
        if maintainer is None:
            # Lazily seed (store-restored tables skip seeding until the
            # first mutation actually needs it).
            maintainer = SketchMaintainer(old, self.params)
            self._maintainers[name] = maintainer
        return self._apply_maintained(name, maintainer, batch, new_instance)

    def _apply_maintained(
        self,
        name: str,
        maintainer: SketchMaintainer,
        batch: DeltaBatch,
        instance: Instance,
    ) -> UpdateReport:
        sketch, repair = maintainer.apply(batch, instance)
        self._instances[name] = instance
        self._sketches[name] = sketch
        entered, left = self.lsh.rebucket(name, sketch.minhash)
        if self._store is not None:
            self._store.write_table(name, instance, sketch)
        summary = batch.summary()
        report = UpdateReport(
            table=name,
            mode=MODE_INCREMENTAL,
            tuples_inserted=summary["inserted"],
            tuples_deleted=summary["deleted"],
            tuples_updated=summary["updated"],
            relations_touched=tuple(sorted(batch.relations_touched())),
            sketch_columns_repaired=len(repair.columns_touched),
            sketch_columns_rebuilt=0,
            minhash_slots_patched=repair.minhash_slots_patched,
            minhash_slots_rebuilt=repair.minhash_slots_rebuilt,
            lsh_buckets_entered=entered,
            lsh_buckets_left=left,
            sketch=sketch,
        )
        self.last_update = report
        return report

    def _rebuild(self, name: str, instance: Instance) -> UpdateReport:
        """Full re-sketch fallback (schema change / no maintainer)."""
        if self.delta_maintenance:
            maintainer = SketchMaintainer(instance, self.params)
            sketch = maintainer.sketch_for(instance)
            self._maintainers[name] = maintainer
        else:
            sketch = InstanceSketch.build(instance, self.params)
        self._instances[name] = instance
        self._sketches[name] = sketch
        self.lsh.remove(name)
        self.lsh.add(name, sketch.minhash)
        if self._store is not None:
            self._store.write_table(name, instance, sketch)
        n_columns = sum(
            len(instance.schema.relation(rel_name).attributes)
            for rel_name in instance.schema.relation_names()
        )
        report = UpdateReport(
            table=name,
            mode=MODE_REBUILT,
            relations_touched=tuple(sorted(instance.schema.relation_names())),
            sketch_columns_rebuilt=n_columns,
            minhash_slots_rebuilt=self.params.num_perms,
            lsh_buckets_entered=self.params.bands,
            lsh_buckets_left=self.params.bands,
            sketch=sketch,
        )
        self.last_update = report
        return report

    def get(self, name: str) -> Instance:
        """The registered instance called ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    def sketch(self, name: str) -> InstanceSketch:
        """The stored sketch of table ``name``."""
        try:
            return self._sketches[name]
        except KeyError:
            raise KeyError(self._unknown(name)) from None

    def names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def _unknown(self, name: str) -> str:
        known = ", ".join(repr(n) for n in self.names()) or "none"
        return f"no table {name!r} in the index (known tables: {known})"

    def _restore(
        self, name: str, instance: Instance, sketch: InstanceSketch
    ) -> None:
        """Install a loaded table without re-sketching (store reload path)."""
        self._instances[name] = instance
        self._sketches[name] = sketch
        self.lsh.add(name, sketch.minhash)

    # -- discovery ------------------------------------------------------------

    def search(
        self,
        query: Instance,
        top_k: int = 5,
        policy: RefinePolicy | None = None,
        exact: bool = True,
    ) -> list[SearchHit]:
        """Exact top-k similarity search (see :func:`refine_search`).

        The per-run :class:`RefineReport` (refined/pruned/bound counters)
        is kept in :attr:`last_report`.
        """
        hits, self.last_report = refine_search(
            self, query, top_k, policy=policy, exact=exact
        )
        return hits

    def near_duplicates(
        self,
        threshold: float = 0.8,
        policy: RefinePolicy | None = None,
        exact: bool = True,
    ) -> list[DuplicatePair]:
        """All pairs with true similarity ≥ ``threshold`` (bound-pruned)."""
        pairs, self.last_report = refine_dedup(
            self, threshold, policy=policy, exact=exact
        )
        return pairs

    def duplicate_clusters(
        self,
        threshold: float = 0.8,
        policy: RefinePolicy | None = None,
        exact: bool = True,
    ) -> list[set[str]]:
        """Connected components of the near-duplicate graph (size ≥ 2)."""
        from ..utils.unionfind import UnionFind

        components: UnionFind = UnionFind(self.names())
        for pair in self.near_duplicates(
            threshold=threshold, policy=policy, exact=exact
        ):
            components.union(pair.first, pair.second)
        clusters = [
            set(group) for group in components.classes() if len(group) >= 2
        ]
        clusters.sort(key=lambda c: (-len(c), sorted(c)))
        return clusters

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> "IndexStore":
        """Write the whole index to ``path`` and bind the store.

        Saving uses the store's bulk snapshot path (table files plus one
        manifest commit, no log records), so re-saving an unchanged index
        is byte-identical.  After ``save``, every ``add``/``remove``/
        ``update`` is mirrored to disk as a write-ahead log record.
        """
        from .store import IndexStore

        store = IndexStore(path)
        store.initialize(self.params, self.options)
        store.bulk_write(
            [
                (name, self._instances[name], self._sketches[name])
                for name in self.names()
            ]
        )
        self._store = store
        return store

    @classmethod
    def load(cls, path, cache: SignatureCache | None = None) -> "SimilarityIndex":
        """Reload an index from disk, deterministically (see store docs)."""
        from .store import load_index

        return load_index(path, cache=cache)

    def bind(self, store: "IndexStore | None") -> None:
        """Attach (or detach with ``None``) a store for incremental writes."""
        self._store = store

    @property
    def store(self) -> "IndexStore | None":
        return self._store

    def stats(self) -> dict:
        """Counters for diagnostics: size, LSH occupancy, cache, last run."""
        return {
            "tables": len(self),
            "params": self.params.as_dict(),
            "lsh": self.lsh.bucket_stats(),
            "cache": self.cache.stats(),
            "last_report": (
                self.last_report.as_dict() if self.last_report else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex(tables={len(self)}, "
            f"params={self.params.as_dict()})"
        )


__all__ = ["SimilarityIndex"]
