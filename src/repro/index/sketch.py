"""Per-instance sketches: null-aware token multisets, min-hash, upper bounds.

A :class:`InstanceSketch` is a small, serializable summary of one instance,
built once when the instance enters the index and reused for every query:

* **column summaries** — per ``(relation, attribute)``, the multiset of
  constant values (stored as stable 64-bit hashes with counts) plus the
  number of null cells.  These drive :func:`similarity_upper_bound`, an
  **admissible** upper bound on the paper's instance-similarity score:
  the bound never under-estimates, so pruning a candidate whose bound is
  below the current top-k floor can never drop a true hit;
* **min-hash signature** — over the instance's null-aware token multiset
  (one token per cell, constants by value, nulls by position only — null
  *labels* never enter a token, mirroring how the Alg. 4 signatures ignore
  them).  Banded LSH (:mod:`repro.index.lsh`) uses the signature for
  sub-linear candidate generation.

Why the bound is admissible (sketch of the argument): a matched cell scores
at most 1 when both sides hold the *same* constant, at most 1 for null-null,
at most λ for null-vs-constant, and exactly 0 for conflicting constants
(:mod:`repro.scoring.cell_score`; ``⊓ ≥ 2`` caps the null cases).  Summing
those per-cell maxima column-by-column over both sides over-approximates the
score numerator ``Σ_t score(M,t) + Σ_t' score(M,t')`` for *any* instance
match ``M`` — each tuple's score is an average of pair scores, each of which
the column-wise maxima dominate.  Dividing by the exact denominator
``size(I) + size(I')`` (computed on the Sec. 4.3 aligned schema, exactly as
the brute-force path pads it) yields the bound.  Under fully injective
options the bound tightens to multiset intersections and a
``min(|I|,|I'|)·arity`` cap per relation, both of which still dominate any
1:1 match.  ``tests/properties/test_sketch_bound.py`` checks the inequality
on random perturbed instances.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..core.errors import FormatError
from ..core.instance import Instance
from ..core.values import is_null
from ..mappings.constraints import MatchOptions
from ..parallel.cache import instance_fingerprint

try:  # pragma: no cover - exercised through both lanes
    import numpy as _np
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None

_COLUMNAR_MIN_CELLS = 4096
"""Build the columnar view for sketching above this many cells."""

_NUMPY_MIN_TOKENS = 256
"""Below this many distinct tokens the pure min-hash loop wins."""

_MERSENNE_PRIME = (1 << 61) - 1
"""Modulus of the universal hash family behind the min-hash permutations."""

EMPTY_SLOT = _MERSENNE_PRIME
"""Signature value of an empty token set (no token can ever hash to it)."""


def stable_hash64(text: str) -> int:
    """A 64-bit hash of ``text`` that is stable across runs and processes.

    Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``),
    so sketches built from it would not reload deterministically; BLAKE2b
    is stable, fast, and collision-resistant far beyond sketch sizes.
    Collisions, if they ever happened, would only *raise* the upper bound
    (a query constant spuriously counted as present) — admissibility is
    preserved by construction.
    """
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class IndexParams:
    """Sketch and LSH tuning knobs, fixed per index (and persisted with it).

    Attributes
    ----------
    num_perms:
        Min-hash signature length.  More permutations → better Jaccard
        estimates and finer LSH bands, at linear sketch cost.
    bands, rows:
        Banded-LSH shape; ``bands * rows`` must not exceed ``num_perms``.
        Two instances collide in a band when their signatures agree on all
        ``rows`` slots of that band, so more rows per band → fewer, more
        similar candidates.
    seed:
        Seed of the permutation coefficients; part of the index identity
        (two stores built with different seeds are not comparable).
    """

    num_perms: int = 64
    bands: int = 16
    rows: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_perms < 1:
            raise ValueError(f"num_perms must be >= 1, got {self.num_perms}")
        if self.bands < 1 or self.rows < 1:
            raise ValueError(
                f"bands and rows must be >= 1, got bands={self.bands} "
                f"rows={self.rows}"
            )
        if self.bands * self.rows > self.num_perms:
            raise ValueError(
                f"bands*rows = {self.bands * self.rows} exceeds "
                f"num_perms = {self.num_perms}"
            )

    def coefficients(self) -> tuple[tuple[int, int], ...]:
        """The ``(a, b)`` pairs of the universal hash family, deterministic."""
        rng = random.Random(self.seed)
        return tuple(
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(_MERSENNE_PRIME))
            for _ in range(self.num_perms)
        )

    def as_dict(self) -> dict:
        return {
            "num_perms": self.num_perms,
            "bands": self.bands,
            "rows": self.rows,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IndexParams":
        try:
            return cls(
                num_perms=int(payload["num_perms"]),
                bands=int(payload["bands"]),
                rows=int(payload["rows"]),
                seed=int(payload["seed"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise FormatError(f"invalid index params payload: {error}") from error


@dataclass(frozen=True)
class ColumnSketch:
    """Summary of one attribute column: constant multiset + null count."""

    constants: dict[int, int] = field(default_factory=dict)
    null_count: int = 0

    @property
    def constant_count(self) -> int:
        return sum(self.constants.values())

    @property
    def cell_count(self) -> int:
        return self.constant_count + self.null_count


@dataclass(frozen=True)
class RelationSketch:
    """Per-relation summary: schema shape plus one column sketch per attribute."""

    name: str
    attributes: tuple[str, ...]
    tuple_count: int
    columns: dict[str, ColumnSketch]


def _constant_token(value) -> str:
    """Identity-preserving encoding of a constant (type + repr)."""
    return f"{type(value).__name__}:{value!r}"


@dataclass(frozen=True)
class InstanceSketch:
    """The full per-instance sketch held by the similarity index.

    Everything here is invariant under null relabeling and tuple re-id
    (``fingerprint`` is the content hash of
    :func:`repro.parallel.instance_fingerprint`), so semantically equal
    instances sketch identically — the same invariance the signature
    cache relies on.
    """

    fingerprint: str
    relations: dict[str, RelationSketch]
    minhash: tuple[int, ...]
    token_count: int

    @classmethod
    def build(cls, instance: Instance, params: IndexParams) -> "InstanceSketch":
        """Sketch ``instance`` under ``params`` (deterministic).

        Uses the columnar lane (per-code token aggregation over the
        :meth:`~repro.core.instance.Instance.columns` view) when the view
        is already cached or the instance is large enough to warrant
        building it; both lanes produce identical sketches
        (property-tested).  Cells the codes cannot reconstruct exactly
        (``ColumnarInstance.overrides``) force the object lane, since
        tokens are type-and-repr sensitive.
        """
        view = instance._columnar
        if view is None and _cell_estimate(instance) >= _COLUMNAR_MIN_CELLS:
            view = instance.columns()
        if view is not None and not view.overrides:
            return cls._build_columnar(instance, view, params)
        return cls._build_object(instance, params)

    @classmethod
    def _build_columnar(cls, instance, view, params) -> "InstanceSketch":
        """One pass per column over code arrays, tokens per distinct code."""
        relations: dict[str, RelationSketch] = {}
        token_hashes: list[int] = []
        decode = view.decode
        token_cache: dict[int, tuple[str, int]] = {}
        for rel_name, crel in view.relations.items():
            attributes = crel.schema.attributes
            columns_out: dict[str, ColumnSketch] = {}
            for position, attribute in enumerate(attributes):
                counts = _code_counts(crel.columns[position])
                constants: dict[int, int] = {}
                null_total = 0
                per_base: dict[str, int] = {}
                for code, count in counts:
                    if code < 0:
                        null_total += count
                        continue
                    cached = token_cache.get(code)
                    if cached is None:
                        encoded = _constant_token(decode[code])
                        cached = (encoded, stable_hash64(encoded))
                        token_cache[code] = cached
                    encoded, key = cached
                    constants[key] = constants.get(key, 0) + count
                    base = f"{rel_name}\x1f{attribute}\x1fC\x1f{encoded}"
                    per_base[base] = per_base.get(base, 0) + count
                if null_total:
                    per_base[f"{rel_name}\x1f{attribute}\x1fN"] = null_total
                for base, count in per_base.items():
                    token_hashes.extend(
                        stable_hash64(f"{base}\x1f{occurrence}")
                        for occurrence in range(count)
                    )
                columns_out[attribute] = ColumnSketch(
                    constants=constants, null_count=null_total
                )
            relations[rel_name] = RelationSketch(
                name=rel_name,
                attributes=attributes,
                tuple_count=crel.n_rows,
                columns=columns_out,
            )
        return cls(
            fingerprint=instance_fingerprint(instance),
            relations=relations,
            minhash=_minhash(token_hashes, params),
            token_count=len(token_hashes),
        )

    @classmethod
    def _build_object(
        cls, instance: Instance, params: IndexParams
    ) -> "InstanceSketch":
        relations: dict[str, RelationSketch] = {}
        token_hashes: list[int] = []
        for relation in instance.relations():
            rel_name = relation.schema.name
            attributes = relation.schema.attributes
            columns: dict[str, dict] = {
                a: {"constants": {}, "nulls": 0} for a in attributes
            }
            occurrences: dict[str, int] = {}
            count = 0
            for t in relation:
                count += 1
                for attribute, value in zip(attributes, t.values):
                    column = columns[attribute]
                    if is_null(value):
                        column["nulls"] += 1
                        base = f"{rel_name}\x1f{attribute}\x1fN"
                    else:
                        encoded = _constant_token(value)
                        key = stable_hash64(encoded)
                        column["constants"][key] = (
                            column["constants"].get(key, 0) + 1
                        )
                        base = f"{rel_name}\x1f{attribute}\x1fC\x1f{encoded}"
                    # Multiset semantics: the k-th occurrence of a token is a
                    # distinct element, so duplicated rows shift the Jaccard
                    # estimate instead of collapsing.
                    occurrence = occurrences.get(base, 0)
                    occurrences[base] = occurrence + 1
                    token_hashes.append(stable_hash64(f"{base}\x1f{occurrence}"))
            relations[rel_name] = RelationSketch(
                name=rel_name,
                attributes=attributes,
                tuple_count=count,
                columns={
                    a: ColumnSketch(
                        constants=dict(columns[a]["constants"]),
                        null_count=columns[a]["nulls"],
                    )
                    for a in attributes
                },
            )
        return cls(
            fingerprint=instance_fingerprint(instance),
            relations=relations,
            minhash=_minhash(token_hashes, params),
            token_count=len(token_hashes),
        )

    def relation_names(self) -> frozenset[str]:
        return frozenset(self.relations)


def _cell_estimate(instance: Instance) -> int:
    """Cell count of an instance without touching any cell."""
    return sum(
        len(relation) * relation.schema.arity
        for relation in instance.relations()
    )


def _code_counts(column) -> list[tuple[int, int]]:
    """``(code, count)`` pairs of one code column (order irrelevant)."""
    if _np is not None and len(column) >= _NUMPY_MIN_TOKENS:
        codes, counts = _np.unique(
            _np.frombuffer(column, dtype=_np.int64), return_counts=True
        )
        return list(zip(map(int, codes), map(int, counts)))
    counts: dict[int, int] = {}
    for code in column:
        counts[code] = counts.get(code, 0) + 1
    return list(counts.items())


def _minhash(token_hashes: list[int], params: IndexParams) -> tuple[int, ...]:
    """Min-hash signature of a token-hash multiset (set semantics on hashes)."""
    if not token_hashes:
        return (EMPTY_SLOT,) * params.num_perms
    distinct = set(token_hashes)
    if _np is not None and len(distinct) >= _NUMPY_MIN_TOKENS:
        return _minhash_numpy(distinct, params)
    signature = []
    for a, b in params.coefficients():
        signature.append(
            min((a * h + b) % _MERSENNE_PRIME for h in distinct)
        )
    return tuple(signature)


def _minhash_numpy(distinct: set[int], params: IndexParams) -> tuple[int, ...]:
    """Vectorized min-hash, bit-exact with the pure loop.

    ``(a*h + b) mod p`` with ``p = 2^61 - 1`` cannot be computed directly
    in uint64 (``a*h`` overflows), so the product is assembled from 31-bit
    limbs using ``2^61 ≡ 1 (mod p)``:

        a*h = a_hi*h_hi*2^62 + (a_hi*h_lo + a_lo*h_hi)*2^31 + a_lo*h_lo
        2^62 ≡ 2,   m*2^31 ≡ (m >> 30) + (m & (2^30-1)) * 2^31

    Every intermediate stays below 2^64 (terms are < 2^62 each), so the
    congruence is exact and one final ``% p`` recovers the value.
    """
    h = _np.fromiter(distinct, dtype=_np.uint64, count=len(distinct))
    p = _np.uint64(_MERSENNE_PRIME)
    h = h % p
    one = _np.uint64(1)
    shift31 = _np.uint64(31)
    shift30 = _np.uint64(30)
    mask31 = _np.uint64((1 << 31) - 1)
    mask30 = _np.uint64((1 << 30) - 1)
    h_hi = h >> shift31
    h_lo = h & mask31
    signature = []
    for a, b in params.coefficients():
        a_hi = _np.uint64(a >> 31)
        a_lo = _np.uint64(a & ((1 << 31) - 1))
        t1 = (a_hi * h_hi) << one
        mid = a_hi * h_lo + a_lo * h_hi
        t2 = (mid >> shift30) + ((mid & mask30) << shift31)
        t3 = a_lo * h_lo
        total = (t1 + t2 + t3) % p
        signature.append(int(((total + _np.uint64(b)) % p).min()))
    return tuple(signature)


def estimated_jaccard(left: InstanceSketch, right: InstanceSketch) -> float:
    """Fraction of agreeing signature slots — the min-hash Jaccard estimate."""
    if len(left.minhash) != len(right.minhash):
        raise ValueError("sketches built with different num_perms")
    agreeing = sum(1 for a, b in zip(left.minhash, right.minhash) if a == b)
    return agreeing / len(left.minhash)


def comparable(query: InstanceSketch, candidate: InstanceSketch) -> bool:
    """Whether the sketched instances are lake-comparable (same relations)."""
    return query.relation_names() == candidate.relation_names()


def _column(sketch: RelationSketch, attribute: str) -> ColumnSketch:
    """The column sketch for ``attribute``, or a virtual padded column.

    An attribute the relation lacks is exactly what Sec. 4.3 alignment pads
    with one fresh null per row, so the virtual column is all nulls.
    """
    column = sketch.columns.get(attribute)
    if column is not None:
        return column
    return ColumnSketch(constants={}, null_count=sketch.tuple_count)


def _side_bound_general(
    probe: RelationSketch,
    other: RelationSketch,
    attributes: tuple[str, ...],
    lam: float,
) -> float:
    """Upper bound on ``Σ_{t ∈ probe} score(M, t)`` with no injectivity.

    Any probe cell can pair with the best cell anywhere in the other
    column: a constant scores 1 when the other column contains it at all,
    λ when the other column has a null, 0 otherwise; a null scores 1
    against another null, λ against a constant.
    """
    total = 0.0
    for attribute in attributes:
        probe_col = _column(probe, attribute)
        other_col = _column(other, attribute)
        other_has_null = other_col.null_count > 0
        other_has_constant = bool(other_col.constants)
        matched = sum(
            count
            for key, count in probe_col.constants.items()
            if key in other_col.constants
        )
        total += matched
        total += (probe_col.constant_count - matched) * (
            lam if other_has_null else 0.0
        )
        if probe_col.null_count:
            if other_has_null:
                total += probe_col.null_count
            elif other_has_constant:
                total += probe_col.null_count * lam
    return total


def _side_bound_injective(
    probe: RelationSketch,
    other: RelationSketch,
    attributes: tuple[str, ...],
    lam: float,
) -> float:
    """Upper bound on the probe-side sum under a fully injective match.

    1:1 tuple mappings mean at most ``min(count, count')`` disjoint pairs
    can realize a 1-score on any given constant, at most
    ``min(nulls, nulls')`` pairs a 1-score on null-null cells, and at most
    ``min(|probe|, |other|)`` probe tuples have a non-empty image at all.
    """
    per_tuple_cap = min(probe.tuple_count, other.tuple_count) * len(attributes)
    total = 0.0
    for attribute in attributes:
        probe_col = _column(probe, attribute)
        other_col = _column(other, attribute)
        matched_constants = sum(
            min(count, other_col.constants.get(key, 0))
            for key, count in probe_col.constants.items()
        )
        matched_nulls = min(probe_col.null_count, other_col.null_count)
        rest = probe_col.cell_count - matched_constants - matched_nulls
        total += matched_constants + matched_nulls + rest * lam
    return min(total, per_tuple_cap)


def similarity_upper_bound(
    query: InstanceSketch,
    candidate: InstanceSketch,
    options: MatchOptions,
) -> float:
    """Admissible upper bound on ``signature_compare`` / exact similarity.

    Computed entirely from the two sketches in ``O(sketch size)`` — no
    tuple alignment, no unification — on the Sec. 4.3 *aligned* schema
    (union of attributes per relation), exactly the shape the brute-force
    lake path pads to.  Returns 0.0 for incomparable sketches (different
    relation names), mirroring the lake's skip.

    The bound dominates the true score for *any* instance match honoring
    ``options``; pruning with it therefore never drops a true top-k hit or
    an above-threshold duplicate.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> params = IndexParams()
    >>> a = InstanceSketch.build(
    ...     Instance.from_rows("R", ("A",), [("x",)]), params)
    >>> b = InstanceSketch.build(
    ...     Instance.from_rows("R", ("A",), [("y",)]), params)
    >>> similarity_upper_bound(a, a, MatchOptions.versioning())
    1.0
    >>> similarity_upper_bound(a, b, MatchOptions.versioning())
    0.0
    """
    if not comparable(query, candidate):
        return 0.0
    side = (
        _side_bound_injective
        if options.fully_injective
        else _side_bound_general
    )
    numerator = 0.0
    denominator = 0
    for name in sorted(query.relations):
        q_rel = query.relations[name]
        c_rel = candidate.relations[name]
        extra = tuple(
            a for a in c_rel.attributes if a not in q_rel.attributes
        )
        attributes = q_rel.attributes + extra
        denominator += (q_rel.tuple_count + c_rel.tuple_count) * len(attributes)
        if q_rel.tuple_count == 0 or c_rel.tuple_count == 0:
            continue  # no pairs possible in this relation
        numerator += side(q_rel, c_rel, attributes, options.lam)
        numerator += side(c_rel, q_rel, attributes, options.lam)
    if denominator == 0:
        return 1.0  # two empty instances are vacuously isomorphic
    return min(1.0, numerator / denominator)


def sketch_to_dict(sketch: InstanceSketch) -> dict:
    """JSON-ready encoding, deterministic (sorted hashes, sorted relations)."""
    return {
        "fingerprint": sketch.fingerprint,
        "token_count": sketch.token_count,
        "minhash": list(sketch.minhash),
        "relations": {
            name: {
                "attributes": list(rel.attributes),
                "tuples": rel.tuple_count,
                "columns": {
                    attribute: {
                        "nulls": column.null_count,
                        "constants": sorted(
                            [key, count]
                            for key, count in column.constants.items()
                        ),
                    }
                    for attribute, column in rel.columns.items()
                },
            }
            for name, rel in sorted(sketch.relations.items())
        },
    }


def sketch_from_dict(payload: dict) -> InstanceSketch:
    """Decode :func:`sketch_to_dict` output; raises FormatError when malformed."""
    try:
        relations = {}
        for name, rel in payload["relations"].items():
            columns = {}
            for attribute, column in rel["columns"].items():
                columns[attribute] = ColumnSketch(
                    constants={
                        int(key): int(count)
                        for key, count in column["constants"]
                    },
                    null_count=int(column["nulls"]),
                )
            relations[name] = RelationSketch(
                name=name,
                attributes=tuple(rel["attributes"]),
                tuple_count=int(rel["tuples"]),
                columns=columns,
            )
        return InstanceSketch(
            fingerprint=payload["fingerprint"],
            relations=relations,
            minhash=tuple(int(v) for v in payload["minhash"]),
            token_count=int(payload["token_count"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FormatError(f"invalid sketch payload: {error}") from error


__all__ = [
    "ColumnSketch",
    "EMPTY_SLOT",
    "IndexParams",
    "InstanceSketch",
    "RelationSketch",
    "comparable",
    "estimated_jaccard",
    "similarity_upper_bound",
    "sketch_from_dict",
    "sketch_to_dict",
    "stable_hash64",
]
