"""Banded locality-sensitive hashing over min-hash sketches.

The classic banding scheme: a signature of ``bands * rows`` slots is cut
into ``bands`` contiguous bands; two instances become *candidates* when at
least one band agrees on all of its ``rows`` slots.  With Jaccard
similarity ``s``, the candidate probability is ``1 - (1 - s^rows)^bands`` —
an S-curve whose threshold is tuned by the band shape
(:class:`~repro.index.sketch.IndexParams`).

The LSH tables are an in-memory acceleration structure, deliberately *not*
persisted: they rebuild deterministically from the stored sketches on
:func:`repro.index.store.load_index`, keeping the on-disk format minimal.

Role in the exact pipeline: candidate generation orders and shortlists;
the **admissible sketch bound** (:func:`~repro.index.sketch.similarity_upper_bound`)
is what certifies pruning.  ``exact=False`` search/dedup modes trust the
LSH shortlist alone (sub-linear, recall < 1 possible); the default exact
modes use LSH candidates first but verify every remaining table by bound.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .sketch import IndexParams


class LSHIndex:
    """Banded LSH buckets mapping band keys to member names.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.index.sketch import InstanceSketch, IndexParams
    >>> params = IndexParams(num_perms=8, bands=4, rows=2)
    >>> lsh = LSHIndex(params)
    >>> sketch = InstanceSketch.build(
    ...     Instance.from_rows("R", ("A",), [("x",)]), params)
    >>> lsh.add("a", sketch.minhash)
    >>> lsh.candidates(sketch.minhash)
    {'a'}
    """

    def __init__(self, params: IndexParams) -> None:
        self.params = params
        self._buckets: list[dict[tuple[int, ...], set[str]]] = [
            {} for _ in range(params.bands)
        ]
        self._members: dict[str, tuple[tuple[int, ...], ...]] = {}

    def _band_keys(
        self, minhash: Sequence[int]
    ) -> tuple[tuple[int, ...], ...]:
        if len(minhash) < self.params.bands * self.params.rows:
            raise ValueError(
                f"signature of length {len(minhash)} is too short for "
                f"{self.params.bands} bands x {self.params.rows} rows"
            )
        rows = self.params.rows
        return tuple(
            tuple(minhash[band * rows : (band + 1) * rows])
            for band in range(self.params.bands)
        )

    def add(self, name: str, minhash: Sequence[int]) -> None:
        """Insert ``name`` under every band key of its signature."""
        if name in self._members:
            raise ValueError(f"{name!r} is already in the LSH index")
        keys = self._band_keys(minhash)
        self._members[name] = keys
        for band, key in enumerate(keys):
            self._buckets[band].setdefault(key, set()).add(name)

    def remove(self, name: str) -> None:
        """Remove ``name`` from all of its buckets."""
        try:
            keys = self._members.pop(name)
        except KeyError:
            raise KeyError(f"{name!r} is not in the LSH index") from None
        for band, key in enumerate(keys):
            bucket = self._buckets[band].get(key)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._buckets[band][key]

    def rebucket(self, name: str, minhash: Sequence[int]) -> tuple[int, int]:
        """Move ``name`` to the buckets of a repaired signature.

        Only bands whose key actually changed are touched — for a small
        delta most band keys survive, so this is the cheap path behind
        incremental index maintenance.  Returns ``(entered, left)``: the
        number of band buckets joined and abandoned (equal by
        construction, and 0 for an unchanged signature).
        """
        try:
            old_keys = self._members[name]
        except KeyError:
            raise KeyError(f"{name!r} is not in the LSH index") from None
        new_keys = self._band_keys(minhash)
        changed = 0
        for band, (old_key, new_key) in enumerate(zip(old_keys, new_keys)):
            if old_key == new_key:
                continue
            changed += 1
            bucket = self._buckets[band].get(old_key)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._buckets[band][old_key]
            self._buckets[band].setdefault(new_key, set()).add(name)
        self._members[name] = new_keys
        return changed, changed

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def candidates(self, minhash: Sequence[int]) -> set[str]:
        """All members sharing at least one band with ``minhash``."""
        found: set[str] = set()
        for band, key in enumerate(self._band_keys(minhash)):
            bucket = self._buckets[band].get(key)
            if bucket:
                found.update(bucket)
        return found

    def candidate_pairs(
        self, names: Iterable[str] | None = None
    ) -> list[tuple[str, str]]:
        """All intra-bucket member pairs, deduplicated and sorted.

        ``names`` optionally restricts the pairs to a subset of members.
        This is the dedup front door: only pairs landing in a shared
        bucket are *likely* near-duplicates; the exact dedup path still
        bound-checks the remaining pairs.
        """
        allowed = None if names is None else set(names)
        pairs: set[tuple[str, str]] = set()
        for band_buckets in self._buckets:
            for bucket in band_buckets.values():
                members = sorted(
                    bucket if allowed is None else bucket & allowed
                )
                for i, first in enumerate(members):
                    for second in members[i + 1 :]:
                        pairs.add((first, second))
        return sorted(pairs)

    def bucket_stats(self) -> dict:
        """Occupancy counters for diagnostics and the benchmark report."""
        sizes = [
            len(bucket)
            for band_buckets in self._buckets
            for bucket in band_buckets.values()
        ]
        return {
            "members": len(self._members),
            "bands": self.params.bands,
            "rows": self.params.rows,
            "buckets": len(sizes),
            "largest_bucket": max(sizes, default=0),
        }


__all__ = ["LSHIndex"]
