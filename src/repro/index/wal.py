"""Append-only, checksummed write-ahead segment log for the index store.

Every store mutation (``add``/``remove``/``update``) is one record
appended to the current segment; the snapshot (manifest + table files) is
only rewritten by compaction.  A power cut at any byte therefore loses at
most the *unacknowledged suffix* of the log — recovery scans to the last
valid record, truncates the torn tail, and replays the valid prefix onto
the snapshot.

On-disk segment format (all integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       4     magic  b"RWAL"
    4       4     format version (u32)
    8       8     generation (u64) — must match the manifest's
    16      ...   records

    record: 4     payload length N (u32, 1 <= N <= MAX_RECORD_BYTES)
            4     CRC32C of the payload (u32, Castagnoli polynomial)
            N     payload (canonical JSON: sorted keys, compact)

Design points:

* **Torn tails are detected, never guessed at.**  A record is valid only
  if its full header and payload are present and the CRC matches.  The
  scan stops at the first invalid byte and everything after it is
  declared torn — even if later bytes happen to look like records (the
  "reordered unsynced writes" case: a hole of zeros followed by intact
  data must not resynchronize, because everything after the hole was
  unacknowledged).  A zero length field is invalid by construction, so a
  zeroed hole can never masquerade as an empty record.
* **Group commit.**  :class:`SegmentWriter` batches fsyncs: with
  ``sync_every=N`` the writer syncs once per N appends (``1`` = every
  record durable before ``append`` returns; ``0`` = only on explicit
  :meth:`~SegmentWriter.sync`/:meth:`~SegmentWriter.close`).  Callers
  that promise durability (the serve ``ingest`` ack) call
  :meth:`~SegmentWriter.sync` — one fsync covers every record appended
  since the last one, which is what makes batched ingest cheap.
* **Crash-enumerable.**  All writes go through the
  :mod:`repro.runtime.crashfs` IO layer and cross a ``"storage"``
  fault checkpoint, so both the deterministic power-cut matrix and
  seeded :class:`~repro.runtime.faults.FaultPlan` injection cover this
  code without monkeypatching internals.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from pathlib import Path

from ..core.errors import StoreCorruptionError
from ..runtime.crashfs import io_layer
from ..runtime.faults import fault_checkpoint

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
MAX_RECORD_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sIQ")
_RECORD = struct.Struct(">II")

HEADER_SIZE = _HEADER.size
RECORD_HEADER_SIZE = _RECORD.size


# -- CRC32C (Castagnoli), slicing-by-16 -----------------------------------
#
# Pure Python on purpose (no deps).  Recovery checksums every byte of the
# log, so this is the hot loop of the crash-recovery path: the buffer is
# unpacked into 64-bit words once (no per-iteration slicing) and consumed
# 16 bytes per iteration against 16 precomputed tables, which keeps a
# 10k-record replay inside the benchmark gate.

def _build_crc32c_tables(count: int = 16) -> list[list[int]]:
    poly = 0x82F63B78
    base = []
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        base.append(crc)
    tables = [base]
    for t in range(1, count):
        prev = tables[t - 1]
        tables.append(
            [(prev[i] >> 8) ^ base[prev[i] & 0xFF] for i in range(256)]
        )
    return tables


_T = _build_crc32c_tables()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C checksum of ``data`` (optionally continuing from ``crc``)."""
    crc ^= 0xFFFFFFFF
    (t0, t1, t2, t3, t4, t5, t6, t7,
     t8, t9, t10, t11, t12, t13, t14, t15) = _T
    length = len(data)
    pairs = length >> 4
    if pairs:
        words = struct.unpack_from(f"<{2 * pairs}Q", data)
        for k in range(0, 2 * pairs, 2):
            low = words[k]
            high = words[k + 1]
            x = (crc ^ low) & 0xFFFFFFFF
            hi = low >> 32
            crc = (
                t15[x & 0xFF]
                ^ t14[(x >> 8) & 0xFF]
                ^ t13[(x >> 16) & 0xFF]
                ^ t12[x >> 24]
                ^ t11[hi & 0xFF]
                ^ t10[(hi >> 8) & 0xFF]
                ^ t9[(hi >> 16) & 0xFF]
                ^ t8[hi >> 24]
                ^ t7[high & 0xFF]
                ^ t6[(high >> 8) & 0xFF]
                ^ t5[(high >> 16) & 0xFF]
                ^ t4[(high >> 24) & 0xFF]
                ^ t3[(high >> 32) & 0xFF]
                ^ t2[(high >> 40) & 0xFF]
                ^ t1[(high >> 48) & 0xFF]
                ^ t0[high >> 56]
            )
    i = pairs << 4
    if length - i >= 8:
        (word,) = struct.unpack_from("<Q", data, i)
        x = (crc ^ word) & 0xFFFFFFFF
        hi = word >> 32
        crc = (
            t7[x & 0xFF]
            ^ t6[(x >> 8) & 0xFF]
            ^ t5[(x >> 16) & 0xFF]
            ^ t4[x >> 24]
            ^ t3[hi & 0xFF]
            ^ t2[(hi >> 8) & 0xFF]
            ^ t1[(hi >> 16) & 0xFF]
            ^ t0[hi >> 24]
        )
        i += 8
    while i < length:
        crc = (crc >> 8) ^ t0[(crc ^ data[i]) & 0xFF]
        i += 1
    return crc ^ 0xFFFFFFFF


# Recovery checksums every record in the log; doing that one record at a
# time is Python-loop bound, so when numpy is available the scan verifies
# all candidate records in one vectorized pass — one CRC lane per record,
# eight bytes per step, grouped by size so padding never dominates.
try:
    import numpy as _np
except Exception:  # pragma: no cover - numpy is optional everywhere
    _np = None

_BATCH_MIN_RECORDS = 8
_BATCH_GROUP = 4096

if _np is not None:
    _TNP = tuple(_np.array(t, dtype=_np.uint32) for t in _T[:8])


def _crc32c_batch(payloads: list[bytes]) -> list[int]:
    """CRC32C of every payload, lane-parallel (requires numpy)."""
    lens = _np.array([len(p) for p in payloads], dtype=_np.int64)
    results = _np.zeros(len(payloads), dtype=_np.uint32)
    t0, t1, t2, t3, t4, t5, t6, t7 = _TNP
    t0_list = _T[0]
    order = _np.argsort(lens, kind="stable")
    for group_start in range(0, len(payloads), _BATCH_GROUP):
        idx = order[group_start:group_start + _BATCH_GROUP]
        group_lens = lens[idx]
        word_counts = group_lens >> 3
        max_words = int(word_counts.max())
        crc = _np.full(len(idx), 0xFFFFFFFF, dtype=_np.uint32)
        if max_words:
            words = _np.zeros((len(idx), max_words), dtype="<u8")
            for row, j in enumerate(idx):
                count = int(word_counts[row])
                if count:
                    words[row, :count] = _np.frombuffer(
                        payloads[j], dtype="<u8", count=count
                    )
            low = (words & 0xFFFFFFFF).astype(_np.uint32).T.copy()
            high = (words >> _np.uint64(32)).astype(_np.uint32).T.copy()
            for i in range(max_words):
                x = crc ^ low[i]
                h = high[i]
                step = (
                    t7[x & 0xFF]
                    ^ t6[(x >> 8) & 0xFF]
                    ^ t5[(x >> 16) & 0xFF]
                    ^ t4[x >> 24]
                    ^ t3[h & 0xFF]
                    ^ t2[(h >> 8) & 0xFF]
                    ^ t1[(h >> 16) & 0xFF]
                    ^ t0[h >> 24]
                )
                crc = _np.where(word_counts > i, step, crc)
        for row, j in enumerate(idx):
            state = int(crc[row])
            for byte in payloads[j][int(word_counts[row]) << 3:]:
                state = (state >> 8) ^ t0_list[(state ^ byte) & 0xFF]
            results[j] = state ^ 0xFFFFFFFF
    return [int(value) for value in results]


def _verify_record_crcs(
    pending: list[tuple[int, bytes, int]],
) -> tuple[int, int] | None:
    """First CRC mismatch in ``pending`` as ``(index, actual)``; else None."""
    if _np is not None and len(pending) >= _BATCH_MIN_RECORDS:
        actuals = _crc32c_batch([payload for _, payload, _ in pending])
        for k, (_, _, expected) in enumerate(pending):
            if actuals[k] != expected:
                return k, actuals[k]
        return None
    for k, (_, payload, expected) in enumerate(pending):
        actual = crc32c(payload)
        if actual != expected:
            return k, actual
    return None


# -- record encoding -------------------------------------------------------

def encode_payload(record: dict) -> bytes:
    """Canonical payload bytes: sorted keys, compact separators, UTF-8."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_record(payload: bytes) -> bytes:
    """One framed record: length + CRC32C + payload."""
    if not payload:
        raise ValueError("WAL records must have a non-empty payload")
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte cap"
        )
    return _RECORD.pack(len(payload), crc32c(payload)) + payload


def encode_header(generation: int) -> bytes:
    return _HEADER.pack(WAL_MAGIC, WAL_VERSION, generation)


def segment_name(generation: int) -> str:
    """The canonical segment filename for a snapshot generation."""
    return f"segment-{generation:06d}.log"


@dataclass(frozen=True)
class TornTail:
    """Where and why a segment stops being valid."""

    offset: int
    reason: str
    expected_crc: int | None = None
    actual_crc: int | None = None

    def describe(self) -> str:
        text = f"{self.reason} at byte offset {self.offset}"
        if self.expected_crc is not None:
            text += (
                f" (expected CRC32C {self.expected_crc:#010x}, "
                f"actual {self.actual_crc:#010x})"
            )
        return text


@dataclass
class ScanResult:
    """Everything a recovery pass learns from one segment scan."""

    path: Path
    generation: int
    records: list[tuple[int, bytes]]  # (byte offset, payload)
    valid_length: int                 # header + valid records, in bytes
    file_length: int
    torn: TornTail | None

    @property
    def is_clean(self) -> bool:
        return self.torn is None

    @property
    def torn_bytes(self) -> int:
        return self.file_length - self.valid_length


class LogReader:
    """Recovery-on-open: scan a segment to its last valid record.

    The reader distinguishes *torn* segments (a crash left a partial
    tail; truncating it is the designed recovery) from *corrupt* ones
    (wrong magic, wrong version, wrong generation — the file is not the
    log the manifest promised, and no truncation can fix that).
    """

    def __init__(self, path, expect_generation: int | None = None) -> None:
        self.path = Path(path)
        self.expect_generation = expect_generation

    def scan(self) -> ScanResult:
        """Parse the segment; never raises for torn tails."""
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            raise StoreCorruptionError(
                f"WAL segment missing at {self.path} (the manifest "
                f"references it, so it was durable at commit time)",
                path=self.path,
            ) from None
        generation = self.expect_generation or 0
        if len(data) < HEADER_SIZE:
            return ScanResult(
                self.path, generation, [], 0, len(data),
                TornTail(0, "truncated segment header"),
            )
        magic, version, generation = _HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise StoreCorruptionError(
                f"{self.path} is not a WAL segment: bad magic {magic!r}",
                path=self.path, offset=0,
                expected=WAL_MAGIC.hex(), actual=magic.hex(),
            )
        if version != WAL_VERSION:
            raise StoreCorruptionError(
                f"unsupported WAL segment version {version} at "
                f"{self.path} (this build reads version {WAL_VERSION})",
                path=self.path, offset=4,
                expected=WAL_VERSION, actual=version,
            )
        if (
            self.expect_generation is not None
            and generation != self.expect_generation
        ):
            raise StoreCorruptionError(
                f"WAL segment {self.path} belongs to generation "
                f"{generation}, manifest expects "
                f"{self.expect_generation}",
                path=self.path, offset=8,
                expected=self.expect_generation, actual=generation,
            )
        # Framing walk first, CRC verification second: deferring the
        # checksums lets them run as one batched pass over every
        # candidate record, which is what keeps long-log recovery fast.
        # A mismatch at record k then invalidates k and everything after
        # it (the no-resync rule), exactly as an inline check would.
        pending: list[tuple[int, bytes, int]] = []
        offset = HEADER_SIZE
        torn: TornTail | None = None
        size = len(data)
        while offset < size:
            if size - offset < RECORD_HEADER_SIZE:
                torn = TornTail(offset, "truncated record header")
                break
            length, expected = _RECORD.unpack_from(data, offset)
            if length == 0:
                torn = TornTail(offset, "zero-length record")
                break
            if length > MAX_RECORD_BYTES:
                torn = TornTail(
                    offset, f"implausible record length {length}"
                )
                break
            start = offset + RECORD_HEADER_SIZE
            if size - start < length:
                torn = TornTail(offset, "truncated record payload")
                break
            payload = data[start:start + length]
            pending.append((offset, payload, expected))
            offset = start + length
        mismatch = _verify_record_crcs(pending)
        if mismatch is not None:
            k, actual = mismatch
            torn = TornTail(
                pending[k][0], "record checksum mismatch",
                expected_crc=pending[k][2], actual_crc=actual,
            )
            pending = pending[:k]
        records = [(off, payload) for off, payload, _ in pending]
        valid_length = offset if torn is None else torn.offset
        return ScanResult(
            self.path, generation, records, valid_length, size, torn
        )

    def repair(self, scan: ScanResult) -> int:
        """Truncate the torn tail in place; returns bytes dropped.

        A ``valid_length`` of 0 means even the header was torn — the
        segment is rewritten as empty (header only), which is exactly the
        state the log had before its first record.
        """
        if scan.is_clean:
            return 0
        io = io_layer()
        dropped = scan.torn_bytes
        if scan.valid_length < HEADER_SIZE:
            handle = io.open_fresh(self.path)
            try:
                io.write(handle, encode_header(scan.generation))
                io.fsync(handle)
            finally:
                io.close(handle)
            return scan.file_length
        io.truncate(self.path, scan.valid_length)
        return dropped

    @staticmethod
    def decode(payload: bytes, *, path=None, offset: int | None = None) -> dict:
        """Decode one CRC-valid payload into its record dict."""
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreCorruptionError(
                f"CRC-valid WAL record at byte offset {offset} of {path} "
                f"holds undecodable JSON: {error}",
                path=path, offset=offset,
            ) from error
        if not isinstance(record, dict) or "op" not in record:
            raise StoreCorruptionError(
                f"WAL record at byte offset {offset} of {path} is not an "
                f"operation object",
                path=path, offset=offset,
            )
        return record


class SegmentWriter:
    """Appends framed records to one segment, batching fsyncs.

    Parameters
    ----------
    path:
        The segment file (must exist with a valid header unless created
        via :meth:`create`).
    generation:
        Recorded for diagnostics; the header already pins it on disk.
    sync_every:
        Group-commit window in records: fsync after every Nth append.
        ``1`` makes every append durable before it returns; ``0`` defers
        entirely to explicit :meth:`sync`/:meth:`close` calls.
    """

    def __init__(self, path, generation: int, *, sync_every: int = 1) -> None:
        if sync_every < 0:
            raise ValueError(f"sync_every must be >= 0, got {sync_every}")
        self.path = Path(path)
        self.generation = generation
        self.sync_every = sync_every
        self.appended = 0
        self.synced_records = 0
        self.syncs = 0
        self._pending = 0
        self._handle = io_layer().open_append(self.path)

    @classmethod
    def create(
        cls, path, generation: int, *, sync_every: int = 1
    ) -> "SegmentWriter":
        """Write a fresh segment (header only, durable) and open it."""
        io = io_layer()
        handle = io.open_fresh(path)
        try:
            io.write(handle, encode_header(generation))
            io.fsync(handle)
        finally:
            io.close(handle)
        return cls(path, generation, sync_every=sync_every)

    def append(self, payload: bytes) -> int:
        """Append one record; returns the number of records now appended.

        Durability follows the group-commit window — callers that must
        ack durably call :meth:`sync` afterwards (idempotent and cheap
        when the window already synced).
        """
        fault_checkpoint("storage")
        io_layer().write(self._handle, encode_record(payload))
        self.appended += 1
        self._pending += 1
        if self.sync_every and self._pending >= self.sync_every:
            self.sync()
        return self.appended

    def append_record(self, record: dict) -> int:
        """Encode ``record`` canonically and append it."""
        return self.append(encode_payload(record))

    def sync(self) -> None:
        """Make every appended record durable (one fsync for the batch)."""
        if self._pending:
            fault_checkpoint("storage")
            io_layer().fsync(self._handle)
            self.synced_records += self._pending
            self._pending = 0
            self.syncs += 1

    @property
    def in_sync(self) -> bool:
        """Whether every appended record has been fsync'd."""
        return self._pending == 0

    def close(self) -> None:
        """Sync pending records and release the file handle."""
        if self._handle is not None:
            self.sync()
            io_layer().close(self._handle)
            self._handle = None


__all__ = [
    "HEADER_SIZE",
    "LogReader",
    "MAX_RECORD_BYTES",
    "RECORD_HEADER_SIZE",
    "ScanResult",
    "SegmentWriter",
    "TornTail",
    "WAL_MAGIC",
    "WAL_VERSION",
    "crc32c",
    "encode_header",
    "encode_payload",
    "encode_record",
    "segment_name",
]
