"""``repro.index`` — persistent sketch-based similarity index.

The retrieval layer over the paper's similarity measure: per-instance
sketches with an admissible upper bound on the similarity score
(:mod:`~repro.index.sketch`), banded LSH candidate generation
(:mod:`~repro.index.lsh`), versioned on-disk persistence with incremental
maintenance (:mod:`~repro.index.store`), and bound-ordered exact
refinement through the parallel engine (:mod:`~repro.index.refine`) —
assembled by :class:`~repro.index.core.SimilarityIndex`.

See ``docs/INDEX.md`` for the full tour.
"""

from ..delta.report import UpdateReport
from .core import SimilarityIndex
from .lsh import LSHIndex
from .refine import (
    DuplicatePair,
    QueryComparer,
    RefinePolicy,
    RefineReport,
    SearchHit,
    refine_dedup,
    refine_search,
)
from .sketch import (
    IndexParams,
    InstanceSketch,
    comparable,
    estimated_jaccard,
    similarity_upper_bound,
    sketch_from_dict,
    sketch_to_dict,
    stable_hash64,
)
from ..core.errors import StoreCorruptionError
from .store import (
    FORMAT_NAME,
    FORMAT_VERSION,
    CompactionReport,
    IndexStore,
    RecoveryReport,
    StoreFinding,
    load_index,
    save_index,
)
from .wal import (
    LogReader,
    ScanResult,
    SegmentWriter,
    TornTail,
    crc32c,
    segment_name,
)

__all__ = [
    "CompactionReport",
    "DuplicatePair",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "IndexParams",
    "IndexStore",
    "InstanceSketch",
    "LSHIndex",
    "LogReader",
    "QueryComparer",
    "RecoveryReport",
    "RefinePolicy",
    "RefineReport",
    "ScanResult",
    "SearchHit",
    "SegmentWriter",
    "SimilarityIndex",
    "StoreCorruptionError",
    "StoreFinding",
    "TornTail",
    "UpdateReport",
    "comparable",
    "crc32c",
    "estimated_jaccard",
    "load_index",
    "refine_dedup",
    "refine_search",
    "save_index",
    "segment_name",
    "similarity_upper_bound",
    "sketch_from_dict",
    "sketch_to_dict",
    "stable_hash64",
]
