"""On-disk persistence for the similarity index: versioned, incremental.

Layout of a store directory::

    <path>/
      manifest.json            format, version, params, options, table map
      tables/<digest16>.json   one file per table: instance + sketch

Design points:

* **Versioned format** — ``manifest.json`` carries ``format``/``version``
  and every load validates them (via the same :class:`FormatError`
  diagnostics discipline as :mod:`repro.io_.serialization`, which encodes
  the instances themselves).
* **Incremental maintenance** — ``add``/``remove``/``update`` of a single
  table touches exactly one table file plus the manifest; the rest of the
  store is never rewritten (cf. incremental updating of incomplete
  databases, Chabin et al.).
* **Deterministic reload** — table files are keyed by a digest of the
  *table name* (two tables may hold content-identical instances), payloads
  are written with sorted keys, and the LSH tables are rebuilt from the
  stored sketches — sketches embed the params' permutations, so a reload
  is bit-identical to the pre-save index.
* **Integrity** — each table file records the instance fingerprint three
  ways (manifest entry, sketch, recomputed from the decoded instance);
  any disagreement raises :class:`FormatError` instead of silently
  serving corrupt data.
* **Atomicity** — every file is written to a temporary sibling and
  ``os.replace``'d into place, so a crash mid-write never leaves a
  half-written manifest or table.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..core.errors import FormatError, StoreCorruptionError
from ..core.instance import Instance
from ..io_.serialization import instance_from_dict, instance_to_dict
from ..mappings.constraints import MatchOptions
from ..parallel.cache import SignatureCache, instance_fingerprint
from .sketch import (
    IndexParams,
    InstanceSketch,
    sketch_from_dict,
    sketch_to_dict,
)

FORMAT_NAME = "repro-index-store"
FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_TABLES_DIR = "tables"


def _table_filename(name: str) -> str:
    """Stable per-table filename: digest of the *name*, not the content."""
    digest = hashlib.blake2b(name.encode(), digest_size=8).hexdigest()
    return f"{digest}.json"


def _options_to_dict(options: MatchOptions) -> dict:
    return {
        "left_injective": options.left_injective,
        "right_injective": options.right_injective,
        "left_total": options.left_total,
        "right_total": options.right_total,
        "lam": options.lam,
    }


def _options_from_dict(payload: dict) -> MatchOptions:
    try:
        return MatchOptions(
            left_injective=bool(payload["left_injective"]),
            right_injective=bool(payload["right_injective"]),
            left_total=bool(payload["left_total"]),
            right_total=bool(payload["right_total"]),
            lam=float(payload["lam"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FormatError(f"invalid match options payload: {error}") from error


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsync-able here
        pass
    finally:
        os.close(fd)


def _write_json(path: Path, payload: dict) -> None:
    """Atomic, durable, deterministic JSON write.

    The payload goes to a temporary sibling (sorted keys), is fsync'd,
    renamed into place with ``os.replace``, and then the *directory* is
    fsync'd — without the directory sync a crash after rename can still
    lose the entry, leaving a manifest that references a table file the
    directory never durably recorded.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _read_json(path: Path, what: str) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FormatError(f"{what} not found at {path}") from None
    except json.JSONDecodeError as error:
        raise StoreCorruptionError(
            f"{what} at {path} is corrupt or truncated: {error}", path=path
        ) from error
    except OSError as error:
        raise FormatError(f"cannot read {what} at {path}: {error}") from error
    if not isinstance(payload, dict):
        raise StoreCorruptionError(
            f"{what} at {path} is not a JSON object", path=path
        )
    return payload


class IndexStore:
    """A directory-backed store holding one similarity index.

    The store keeps its manifest in memory and mirrors every mutation to
    disk; all writes are atomic and the manifest is written last, so the
    manifest never references a table file that does not exist yet.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._tables_path = self.path / _TABLES_DIR
        self._manifest: dict | None = None

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, params: IndexParams, options: MatchOptions) -> None:
        """Create (or reset) the store directory for a fresh index."""
        if self.path.exists():
            if not self.path.is_dir():
                raise FormatError(f"{self.path} exists and is not a directory")
            if any(self.path.iterdir()) and not (self.path / _MANIFEST).exists():
                raise FormatError(
                    f"{self.path} is a non-empty directory without a "
                    f"{_MANIFEST}; refusing to overwrite it"
                )
        self._tables_path.mkdir(parents=True, exist_ok=True)
        for stale in self._tables_path.glob("*.json"):
            stale.unlink()
        self._manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "params": params.as_dict(),
            "options": _options_to_dict(options),
            "tables": {},
        }
        self._flush_manifest()

    def manifest(self) -> dict:
        """The validated manifest (reading it from disk on first access)."""
        if self._manifest is None:
            payload = _read_json(self.path / _MANIFEST, "index manifest")
            if payload.get("format") != FORMAT_NAME:
                raise FormatError(
                    f"not an index store: format is "
                    f"{payload.get('format')!r}, expected {FORMAT_NAME!r}"
                )
            if payload.get("version") != FORMAT_VERSION:
                raise FormatError(
                    f"unsupported index store version "
                    f"{payload.get('version')!r} (this build reads "
                    f"version {FORMAT_VERSION})"
                )
            if not isinstance(payload.get("tables"), dict):
                raise FormatError("index manifest has no table map")
            self._manifest = payload
        return self._manifest

    def _flush_manifest(self) -> None:
        assert self._manifest is not None
        _write_json(self.path / _MANIFEST, self._manifest)

    # -- accessors ----------------------------------------------------------

    def params(self) -> IndexParams:
        return IndexParams.from_dict(self.manifest().get("params", {}))

    def options(self) -> MatchOptions:
        return _options_from_dict(self.manifest().get("options", {}))

    def table_names(self) -> list[str]:
        return sorted(self.manifest()["tables"])

    # -- mutation -----------------------------------------------------------

    def write_table(
        self, name: str, instance: Instance, sketch: InstanceSketch
    ) -> None:
        """Write (or replace) one table file and update the manifest."""
        manifest = self.manifest()
        filename = _table_filename(name)
        _write_json(
            self._tables_path / filename,
            {
                "name": name,
                "instance": instance_to_dict(instance),
                "sketch": sketch_to_dict(sketch),
            },
        )
        manifest["tables"][name] = {
            "file": filename,
            "fingerprint": sketch.fingerprint,
        }
        self._flush_manifest()

    def remove_table(self, name: str) -> None:
        """Delete one table file and drop its manifest entry."""
        manifest = self.manifest()
        try:
            entry = manifest["tables"].pop(name)
        except KeyError:
            raise KeyError(f"no table {name!r} in the index store") from None
        self._flush_manifest()
        table_path = self._tables_path / entry["file"]
        if table_path.exists():
            table_path.unlink()

    # -- reading ------------------------------------------------------------

    def load_table(self, name: str) -> tuple[Instance, InstanceSketch]:
        """Decode one table, verifying all three fingerprint records agree."""
        manifest = self.manifest()
        try:
            entry = manifest["tables"][name]
        except KeyError:
            raise KeyError(f"no table {name!r} in the index store") from None
        table_path = self._tables_path / entry["file"]
        payload = _read_json(table_path, f"table file for {name!r}")
        if payload.get("name") != name:
            raise StoreCorruptionError(
                f"table file {table_path} claims name "
                f"{payload.get('name')!r}, manifest says {name!r}",
                path=table_path,
            )
        try:
            instance = instance_from_dict(payload["instance"])
            sketch = sketch_from_dict(payload["sketch"])
        except KeyError as error:
            raise StoreCorruptionError(
                f"table file {table_path} is missing {error}",
                path=table_path,
            ) from error
        recomputed = instance_fingerprint(instance)
        if not (
            entry.get("fingerprint") == sketch.fingerprint == recomputed
        ):
            raise StoreCorruptionError(
                f"fingerprint mismatch for table {name!r} at {table_path}: "
                f"manifest {entry.get('fingerprint')!r}, sketch "
                f"{sketch.fingerprint!r}, recomputed {recomputed!r}",
                path=table_path,
            )
        return instance, sketch


def save_index(index, path) -> IndexStore:
    """Persist ``index`` at ``path`` and bind the store for incremental writes."""
    return index.save(path)


def load_index(path, cache: SignatureCache | None = None):
    """Rebuild a :class:`~repro.index.core.SimilarityIndex` from a store.

    Tables are installed in sorted-name order with their *stored* sketches
    (no re-sketching), and the LSH tables are rebuilt from those sketches —
    both deterministic, so two loads of the same store are identical, and a
    load of a just-saved index equals the original.
    """
    from .core import SimilarityIndex

    store = IndexStore(path)
    index = SimilarityIndex(
        params=store.params(), options=store.options(), cache=cache
    )
    for name in store.table_names():
        instance, sketch = store.load_table(name)
        index._restore(name, instance, sketch)
    index.bind(store)
    return index


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "IndexStore",
    "load_index",
    "save_index",
]
