"""On-disk persistence for the similarity index: versioned, crash-consistent.

Layout of a store directory::

    <path>/
      manifest.json                snapshot: format, version, generation,
                                   params, options, table map, WAL pointer
      tables/<digest>-g<gen>.json  one file per snapshot table:
                                   instance + sketch
      wal/segment-<gen>.log        write-ahead segment log for every
                                   mutation since the snapshot

Design points:

* **Write-ahead logging** — ``add``/``remove``/``update`` append one
  checksummed record to the current WAL segment
  (:mod:`repro.index.wal`); the snapshot is never rewritten on the
  mutation path.  A mutation is durable exactly when its record is
  fsync'd, which is what the serve layer's ingest ack waits for.
* **Recovery on open** — opening a store scans the segment to its last
  valid record, truncates any torn tail (bytes past the last fsync a
  power cut may have shredded), and replays the valid prefix onto the
  manifest snapshot.  Replay is idempotent: it rebuilds the overlay from
  scratch, so re-opening — or crashing *during* recovery and opening
  again — converges to the same state.
* **Compaction** — :meth:`IndexStore.compact` folds the log into a new
  snapshot generation: new table files (generation-qualified names, so
  files referenced by the old manifest are never touched), a fresh
  segment, then one atomic manifest replace as the commit point.
  Concurrent readers see either the old generation (with its log) or the
  new one — both complete.
* **Integrity** — each table records its instance fingerprint three ways
  (manifest/WAL entry, sketch, recomputed from the decoded instance);
  any disagreement raises :class:`StoreCorruptionError` carrying the
  expected and actual values.  :meth:`IndexStore.verify` runs every
  check without stopping at the first failure and returns a per-table
  report.
* **Crash-enumerable IO** — every state-changing filesystem operation
  goes through the :mod:`repro.runtime.crashfs` layer, so the
  crash-injection matrix can cut the power at each individual write,
  fsync, rename, and directory sync and assert that recovery lands on
  either the pre- or post-mutation state, never a mix.

See ``docs/STORE.md`` for the full on-disk contract.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import FormatError, StoreCorruptionError
from ..core.instance import Instance
from ..io_.serialization import instance_from_dict, instance_to_dict
from ..mappings.constraints import MatchOptions
from ..obs.metrics import counter_inc
from ..parallel.cache import SignatureCache, instance_fingerprint
from ..runtime.crashfs import io_layer
from ..runtime.faults import fault_checkpoint
from .sketch import (
    IndexParams,
    InstanceSketch,
    sketch_from_dict,
    sketch_to_dict,
)
from .wal import LogReader, SegmentWriter, segment_name

FORMAT_NAME = "repro-index-store"
FORMAT_VERSION = 2

_MANIFEST = "manifest.json"
_TABLES_DIR = "tables"
_WAL_DIR = "wal"

# errnos that mean "this filesystem cannot fsync directories" — the only
# ones _fsync_dir is allowed to swallow.
_FSYNC_UNSUPPORTED = frozenset(
    code
    for code in (
        errno.EINVAL,
        getattr(errno, "ENOTSUP", None),
        getattr(errno, "EOPNOTSUPP", None),
    )
    if code is not None
)


def _table_filename(name: str, generation: int) -> str:
    """Stable per-table filename: digest of the *name*, tagged with the
    generation that wrote it.

    The generation tag guarantees compaction writes fresh files instead
    of overwriting ones the previous manifest still references — a crash
    between the table rewrite and the manifest switch must leave the old
    generation fully intact.
    """
    digest = hashlib.blake2b(name.encode(), digest_size=8).hexdigest()
    return f"{digest}-g{generation:06d}.json"


def _options_to_dict(options: MatchOptions) -> dict:
    return {
        "left_injective": options.left_injective,
        "right_injective": options.right_injective,
        "left_total": options.left_total,
        "right_total": options.right_total,
        "lam": options.lam,
    }


def _options_from_dict(payload: dict) -> MatchOptions:
    try:
        return MatchOptions(
            left_injective=bool(payload["left_injective"]),
            right_injective=bool(payload["right_injective"]),
            left_total=bool(payload["left_total"]),
            right_total=bool(payload["right_total"]),
            lam=float(payload["lam"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise FormatError(f"invalid match options payload: {error}") from error


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives a power cut.

    Only ``EINVAL``/``ENOTSUP`` are tolerated — filesystems that genuinely
    cannot sync directories — and each skip is counted on the
    ``repro.index.store.fsync_skipped`` metric so a deployment on such a
    filesystem is visible.  Every other failure (``EIO``, ``ENOSPC``, a
    dying disk) is re-raised: swallowing it would turn a real durability
    loss into a silent one.
    """
    try:
        io_layer().fsync_dir(path)
    except OSError as error:
        if error.errno in _FSYNC_UNSUPPORTED:
            counter_inc("repro.index.store.fsync_skipped")
            return
        raise


def _write_json(path: Path, payload: dict) -> None:
    """Atomic, durable, deterministic JSON write.

    The payload goes to a temporary sibling (sorted keys), is fsync'd,
    renamed into place with ``os.replace``, and then the *directory* is
    fsync'd — without the directory sync a crash after rename can still
    lose the entry, leaving a manifest that references a table file the
    directory never durably recorded.
    """
    io = io_layer()
    data = (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode()
    tmp = path.with_name(path.name + ".tmp")
    handle = io.open_fresh(tmp)
    try:
        io.write(handle, data)
        io.fsync(handle)
    finally:
        io.close(handle)
    io.replace(tmp, path)
    _fsync_dir(path.parent)


def _read_json(path: Path, what: str) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FormatError(f"{what} not found at {path}") from None
    except json.JSONDecodeError as error:
        raise StoreCorruptionError(
            f"{what} at {path} is corrupt or truncated: {error}", path=path
        ) from error
    except OSError as error:
        raise FormatError(f"cannot read {what} at {path}: {error}") from error
    if not isinstance(payload, dict):
        raise StoreCorruptionError(
            f"{what} at {path} is not a JSON object", path=path
        )
    return payload


@dataclass
class RecoveryReport:
    """What one recovery-on-open pass found and did."""

    generation: int
    snapshot_tables: int
    wal_records: int
    wal_bytes: int
    torn_bytes_dropped: int = 0
    torn_offset: int | None = None
    torn_reason: str | None = None

    @property
    def was_torn(self) -> bool:
        return self.torn_reason is not None

    def as_dict(self) -> dict:
        return {
            "generation": self.generation,
            "snapshot_tables": self.snapshot_tables,
            "wal_records": self.wal_records,
            "wal_bytes": self.wal_bytes,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "torn_offset": self.torn_offset,
            "torn_reason": self.torn_reason,
        }


@dataclass
class CompactionReport:
    """What one compaction folded."""

    old_generation: int
    new_generation: int
    records_folded: int
    tables_rewritten: int
    tables_dropped: int
    files_removed: int

    def as_dict(self) -> dict:
        return {
            "old_generation": self.old_generation,
            "new_generation": self.new_generation,
            "records_folded": self.records_folded,
            "tables_rewritten": self.tables_rewritten,
            "tables_dropped": self.tables_dropped,
            "files_removed": self.files_removed,
        }


@dataclass
class StoreFinding:
    """One problem :meth:`IndexStore.verify` found.

    ``severity`` is ``"error"`` for corruption (verify exits non-zero)
    and ``"warning"`` for harmless debris (orphaned files a crashed
    compaction left behind).
    """

    severity: str
    kind: str
    message: str
    path: str | None = None
    table: str | None = None
    offset: int | None = None
    expected: object = None
    actual: object = None

    def as_dict(self) -> dict:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
            "path": self.path,
            "table": self.table,
            "offset": self.offset,
            "expected": self.expected,
            "actual": self.actual,
        }


def _finding_from_corruption(
    error: StoreCorruptionError, kind: str, table: str | None = None
) -> StoreFinding:
    return StoreFinding(
        severity="error",
        kind=kind,
        message=str(error),
        path=str(error.path) if error.path is not None else None,
        table=table,
        offset=error.offset,
        expected=error.expected,
        actual=error.actual,
    )


class IndexStore:
    """A directory-backed, write-ahead-logged store for one index.

    The store keeps a snapshot manifest plus a WAL overlay in memory and
    mirrors every mutation as one log record; all snapshot writes are
    atomic and the manifest is the commit point, so the manifest never
    references files that do not durably exist.

    Parameters
    ----------
    path:
        The store directory.
    sync_every:
        WAL group-commit window in records (``1`` = every mutation
        durable before the call returns; ``N`` = one fsync per N records;
        ``0`` = only on explicit :meth:`sync`).  Acknowledged-durable
        paths (serve ingest) call :meth:`sync` regardless.
    auto_compact_records:
        When > 0, fold the log into a new snapshot automatically once it
        holds this many records.  Off by default: compaction timing is
        the caller's policy (CLI ``repro index compact``, serve idle
        hooks, cron).
    """

    def __init__(
        self,
        path,
        *,
        sync_every: int = 1,
        auto_compact_records: int = 0,
    ) -> None:
        self.path = Path(path)
        self.sync_every = sync_every
        self.auto_compact_records = auto_compact_records
        self._tables_path = self.path / _TABLES_DIR
        self._wal_path = self.path / _WAL_DIR
        self._manifest: dict | None = None
        self._overlay: dict[str, dict] = {}
        self._deleted: set[str] = set()
        self._writer: SegmentWriter | None = None
        self._wal_records = 0
        self.last_recovery: RecoveryReport | None = None

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, params: IndexParams, options: MatchOptions) -> None:
        """Create (or reset) the store directory for a fresh index."""
        if self.path.exists():
            if not self.path.is_dir():
                raise FormatError(f"{self.path} exists and is not a directory")
            if any(self.path.iterdir()) and not (self.path / _MANIFEST).exists():
                raise FormatError(
                    f"{self.path} is a non-empty directory without a "
                    f"{_MANIFEST}; refusing to overwrite it"
                )
        # Release any segment the previous incarnation held open before
        # its file is unlinked below.
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._tables_path.mkdir(parents=True, exist_ok=True)
        self._wal_path.mkdir(parents=True, exist_ok=True)
        for stale in self._tables_path.glob("*.json"):
            stale.unlink()
        for stale in self._wal_path.glob("segment-*.log"):
            stale.unlink()
        generation = 1
        # Segment before manifest: the manifest names it, so it must be
        # durable first.
        self._writer = SegmentWriter.create(
            self._wal_path / segment_name(generation),
            generation,
            sync_every=self.sync_every,
        )
        _fsync_dir(self._wal_path)
        self._manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "generation": generation,
            "params": params.as_dict(),
            "options": _options_to_dict(options),
            "tables": {},
            "wal": f"{_WAL_DIR}/{segment_name(generation)}",
        }
        self._flush_manifest()
        self._overlay = {}
        self._deleted = set()
        self._wal_records = 0
        self.last_recovery = RecoveryReport(
            generation=generation, snapshot_tables=0,
            wal_records=0, wal_bytes=0,
        )

    def open(self) -> RecoveryReport:
        """Load the manifest and replay the WAL; idempotent.

        Recovery truncates any torn log tail (bytes a power cut left
        half-written past the last fsync) and replays the valid prefix.
        Every accessor calls this lazily, so simply constructing an
        :class:`IndexStore` performs no IO.
        """
        if self._manifest is None:
            self._load_manifest()
            self._recover()
        assert self.last_recovery is not None
        return self.last_recovery

    def close(self) -> None:
        """Sync pending log records and release the segment handle.

        The in-memory state is dropped too, so a later :meth:`open` (or
        any lazy accessor) re-runs recovery from disk instead of
        operating on a store that looks open but has no writer.
        """
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._manifest = None
        self._overlay = {}
        self._deleted = set()
        self._wal_records = 0

    def _load_manifest(self) -> None:
        payload = _read_json(self.path / _MANIFEST, "index manifest")
        if payload.get("format") != FORMAT_NAME:
            raise FormatError(
                f"not an index store: format is "
                f"{payload.get('format')!r}, expected {FORMAT_NAME!r}"
            )
        if payload.get("version") != FORMAT_VERSION:
            raise FormatError(
                f"unsupported index store version "
                f"{payload.get('version')!r} (this build reads "
                f"version {FORMAT_VERSION})"
            )
        if not isinstance(payload.get("tables"), dict):
            raise FormatError("index manifest has no table map")
        if not isinstance(payload.get("generation"), int):
            raise FormatError("index manifest has no snapshot generation")
        if not isinstance(payload.get("wal"), str):
            raise FormatError("index manifest has no WAL segment pointer")
        self._manifest = payload

    def _recover(self) -> None:
        assert self._manifest is not None
        generation = self._manifest["generation"]
        segment_path = self.path / self._manifest["wal"]
        reader = LogReader(segment_path, expect_generation=generation)
        scan = reader.scan()
        torn = scan.torn
        dropped = 0
        if torn is not None:
            dropped = reader.repair(scan)
            counter_inc(
                "repro.index.store.torn_tail_truncated", dropped
            )
        self._overlay = {}
        self._deleted = set()
        for offset, payload in scan.records:
            record = LogReader.decode(
                payload, path=segment_path, offset=offset
            )
            self._apply(record, segment_path, offset)
        self._wal_records = len(scan.records)
        self._writer = SegmentWriter(
            segment_path, generation, sync_every=self.sync_every
        )
        self.last_recovery = RecoveryReport(
            generation=generation,
            snapshot_tables=len(self._manifest["tables"]),
            wal_records=len(scan.records),
            wal_bytes=scan.valid_length,
            torn_bytes_dropped=dropped,
            torn_offset=torn.offset if torn else None,
            torn_reason=torn.reason if torn else None,
        )

    def _apply(self, record: dict, segment_path: Path, offset: int) -> None:
        """Replay one log record onto the overlay (idempotent by design)."""
        op = record.get("op")
        name = record.get("name")
        if not isinstance(name, str):
            raise StoreCorruptionError(
                f"WAL record at byte offset {offset} of {segment_path} "
                f"has no table name",
                path=segment_path, offset=offset,
            )
        if op == "put":
            if (
                not isinstance(record.get("table"), dict)
                or "fingerprint" not in record
            ):
                raise StoreCorruptionError(
                    f"WAL put record for table {name!r} at byte offset "
                    f"{offset} of {segment_path} is missing its payload",
                    path=segment_path, offset=offset,
                )
            self._overlay[name] = record
            self._deleted.discard(name)
        elif op == "del":
            self._overlay.pop(name, None)
            if name in self._manifest["tables"]:
                self._deleted.add(name)
        else:
            raise StoreCorruptionError(
                f"WAL record at byte offset {offset} of {segment_path} "
                f"has unknown op {op!r}",
                path=segment_path, offset=offset,
            )

    def manifest(self) -> dict:
        """The validated snapshot manifest (opening the store if needed)."""
        self.open()
        assert self._manifest is not None
        return self._manifest

    def _flush_manifest(self) -> None:
        assert self._manifest is not None
        _write_json(self.path / _MANIFEST, self._manifest)

    # -- accessors ----------------------------------------------------------

    def params(self) -> IndexParams:
        return IndexParams.from_dict(self.manifest().get("params", {}))

    def options(self) -> MatchOptions:
        return _options_from_dict(self.manifest().get("options", {}))

    def table_names(self) -> list[str]:
        manifest = self.manifest()
        names = set(manifest["tables"]) - self._deleted
        names.update(self._overlay)
        return sorted(names)

    def wal_records(self) -> int:
        """Records currently in the log (replayed + appended)."""
        self.open()
        return self._wal_records

    def stats(self) -> dict:
        """Counters for diagnostics and the CLI verbs."""
        manifest = self.manifest()
        return {
            "generation": manifest["generation"],
            "tables": len(self.table_names()),
            "snapshot_tables": len(manifest["tables"]),
            "wal_records": self._wal_records,
            "wal_synced": self._writer.in_sync if self._writer else True,
            "recovery": (
                self.last_recovery.as_dict() if self.last_recovery else None
            ),
        }

    # -- mutation -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._writer is None:
            raise FormatError(
                f"index store at {self.path} is closed; "
                f"call open() before mutating it"
            )
        self._writer.append_record(record)
        self._wal_records += 1
        counter_inc("repro.index.store.wal_appends")

    def _maybe_auto_compact(self) -> None:
        """Fold the log once it crosses the auto-compaction threshold.

        Must run *after* the caller has mirrored its mutation into
        ``_overlay``/``_deleted``: compaction folds the in-memory overlay
        into the new snapshot and then discards the old segment, so a
        record appended but not yet mirrored would be silently dropped.
        """
        if (
            self.auto_compact_records
            and self._wal_records >= self.auto_compact_records
        ):
            self.compact()

    def write_table(
        self, name: str, instance: Instance, sketch: InstanceSketch
    ) -> None:
        """Log an upsert of one table (durable per the group-commit window)."""
        self.open()
        record = {
            "op": "put",
            "name": name,
            "table": {
                "name": name,
                "instance": instance_to_dict(instance),
                "sketch": sketch_to_dict(sketch),
            },
            "fingerprint": sketch.fingerprint,
        }
        self._append(record)
        self._overlay[name] = record
        self._deleted.discard(name)
        self._maybe_auto_compact()

    def remove_table(self, name: str) -> None:
        """Log the removal of one table (the file lives until compaction)."""
        if name not in self.table_names():
            raise KeyError(f"no table {name!r} in the index store")
        self._append({"op": "del", "name": name})
        self._overlay.pop(name, None)
        if name in self.manifest()["tables"]:
            self._deleted.add(name)
        self._maybe_auto_compact()

    def sync(self) -> None:
        """Make every logged mutation durable (group-commit fsync)."""
        self.open()
        if self._writer is not None:
            self._writer.sync()

    def bulk_write(
        self, tables: list[tuple[str, Instance, InstanceSketch]]
    ) -> None:
        """Write ``tables`` straight into the snapshot (bypassing the log).

        The bulk path for :meth:`SimilarityIndex.save`: table files first,
        then one manifest flush as the commit point.  Requires a freshly
        initialized store (an empty log); incremental mutations belong in
        the WAL.
        """
        manifest = self.manifest()
        if self._wal_records or self._overlay or self._deleted:
            raise FormatError(
                "bulk_write requires a freshly initialized store "
                "(the WAL must be empty)"
            )
        generation = manifest["generation"]
        for name, instance, sketch in tables:
            filename = _table_filename(name, generation)
            _write_json(
                self._tables_path / filename,
                {
                    "name": name,
                    "instance": instance_to_dict(instance),
                    "sketch": sketch_to_dict(sketch),
                },
            )
            manifest["tables"][name] = {
                "file": filename,
                "fingerprint": sketch.fingerprint,
            }
        self._flush_manifest()

    # -- compaction ---------------------------------------------------------

    def compact(self) -> CompactionReport:
        """Fold the log into a new snapshot generation.

        Safe at every crash point: new table files and the new segment
        use generation-qualified names (nothing the old manifest
        references is touched), and the atomic manifest replace is the
        single commit point.  Readers holding the old manifest keep a
        complete store; a crash before the commit leaves the old
        generation; after it, the new one.  Orphaned files from a crash
        mid-cleanup are swept by the next compaction and reported as
        warnings by :meth:`verify`.
        """
        manifest = self.manifest()
        fault_checkpoint("storage")
        old_generation = manifest["generation"]
        records_folded = self._wal_records
        if records_folded == 0:
            return CompactionReport(
                old_generation, old_generation, 0, 0, 0, 0
            )
        assert self._writer is not None
        self._writer.close()
        new_generation = old_generation + 1

        tables = {
            name: dict(entry)
            for name, entry in manifest["tables"].items()
            if name not in self._deleted and name not in self._overlay
        }
        rewritten = 0
        for name in sorted(self._overlay):
            record = self._overlay[name]
            filename = _table_filename(name, new_generation)
            _write_json(self._tables_path / filename, record["table"])
            tables[name] = {
                "file": filename,
                "fingerprint": record["fingerprint"],
            }
            rewritten += 1
        dropped = len(self._deleted)

        writer = SegmentWriter.create(
            self._wal_path / segment_name(new_generation),
            new_generation,
            sync_every=self.sync_every,
        )
        _fsync_dir(self._wal_path)

        new_manifest = dict(
            manifest,
            generation=new_generation,
            tables=tables,
            wal=f"{_WAL_DIR}/{segment_name(new_generation)}",
        )
        _write_json(self.path / _MANIFEST, new_manifest)  # commit point

        removed = self._sweep(tables, new_generation)

        self._manifest = new_manifest
        self._overlay = {}
        self._deleted = set()
        self._wal_records = 0
        self._writer = writer
        counter_inc("repro.index.store.compactions")
        return CompactionReport(
            old_generation=old_generation,
            new_generation=new_generation,
            records_folded=records_folded,
            tables_rewritten=rewritten,
            tables_dropped=dropped,
            files_removed=removed,
        )

    def _sweep(self, tables: dict, generation: int) -> int:
        """Remove files the committed manifest no longer references."""
        io = io_layer()
        referenced = {entry["file"] for entry in tables.values()}
        removed = 0
        for stale in sorted(self._tables_path.glob("*.json")):
            if stale.name not in referenced:
                io.unlink(stale)
                removed += 1
        current = segment_name(generation)
        for stale in sorted(self._wal_path.glob("segment-*.log")):
            if stale.name != current:
                io.unlink(stale)
                removed += 1
        _fsync_dir(self._tables_path)
        _fsync_dir(self._wal_path)
        return removed

    # -- reading ------------------------------------------------------------

    def load_table(self, name: str) -> tuple[Instance, InstanceSketch]:
        """Decode one table, verifying all three fingerprint records agree."""
        self.open()
        if name in self._overlay:
            return self._decode_overlay(name)
        manifest = self.manifest()
        if name in self._deleted or name not in manifest["tables"]:
            raise KeyError(f"no table {name!r} in the index store")
        entry = manifest["tables"][name]
        table_path = self._tables_path / entry["file"]
        payload = _read_json(table_path, f"table file for {name!r}")
        return self._decode_table(
            name, payload, entry.get("fingerprint"), table_path
        )

    def _decode_overlay(self, name: str) -> tuple[Instance, InstanceSketch]:
        record = self._overlay[name]
        segment_path = self.path / self.manifest()["wal"]
        return self._decode_table(
            name, record["table"], record.get("fingerprint"), segment_path
        )

    def _decode_table(
        self, name: str, payload: dict, recorded, where: Path
    ) -> tuple[Instance, InstanceSketch]:
        if payload.get("name") != name:
            raise StoreCorruptionError(
                f"table payload at {where} claims name "
                f"{payload.get('name')!r}, the store says {name!r}",
                path=where, expected=name, actual=payload.get("name"),
            )
        try:
            instance = instance_from_dict(payload["instance"])
            sketch = sketch_from_dict(payload["sketch"])
        except KeyError as error:
            raise StoreCorruptionError(
                f"table payload for {name!r} at {where} is missing {error}",
                path=where,
            ) from error
        recomputed = instance_fingerprint(instance)
        if not (recorded == sketch.fingerprint == recomputed):
            raise StoreCorruptionError(
                f"fingerprint mismatch for table {name!r} at {where}: "
                f"expected {recorded!r} (store entry), actual sketch "
                f"{sketch.fingerprint!r} / recomputed {recomputed!r}",
                path=where,
                expected=recorded,
                actual={
                    "sketch": sketch.fingerprint,
                    "recomputed": recomputed,
                },
            )
        return instance, sketch

    # -- verification -------------------------------------------------------

    def verify(self) -> list[StoreFinding]:
        """Audit the whole store; returns every finding, best-effort.

        Unlike :meth:`open`, verification is read-only (a torn WAL tail
        is reported, not truncated) and never stops at the first problem:
        each table is checked independently so the report names *every*
        corrupt table, and the WAL is scanned even when a table file is
        bad.  ``severity == "error"`` findings mean the store cannot be
        trusted; ``"warning"`` findings are harmless debris.
        """
        findings: list[StoreFinding] = []
        try:
            manifest = _read_json(self.path / _MANIFEST, "index manifest")
            probe = IndexStore(self.path)
            probe._load_manifest()
        except StoreCorruptionError as error:
            return [_finding_from_corruption(error, "manifest")]
        except FormatError as error:
            return [
                StoreFinding(
                    severity="error", kind="manifest", message=str(error),
                    path=str(self.path / _MANIFEST),
                )
            ]

        overlay: dict[str, dict] = {}
        deleted: set[str] = set()
        segment_path = self.path / manifest["wal"]
        try:
            scan = LogReader(
                segment_path, expect_generation=manifest["generation"]
            ).scan()
        except StoreCorruptionError as error:
            findings.append(_finding_from_corruption(error, "wal"))
            scan = None
        if scan is not None:
            if scan.torn is not None:
                findings.append(
                    StoreFinding(
                        severity="error",
                        kind="wal-torn-tail",
                        message=(
                            f"WAL segment {segment_path} has a torn tail: "
                            f"{scan.torn.describe()}; "
                            f"{scan.torn_bytes} byte(s) after the last "
                            f"valid record would be dropped by recovery"
                        ),
                        path=str(segment_path),
                        offset=scan.torn.offset,
                        expected=scan.torn.expected_crc,
                        actual=scan.torn.actual_crc,
                    )
                )
            prober = IndexStore(self.path)
            prober._manifest = manifest
            for offset, payload in scan.records:
                try:
                    record = LogReader.decode(
                        payload, path=segment_path, offset=offset
                    )
                    prober._overlay = overlay
                    prober._deleted = deleted
                    prober._apply(record, segment_path, offset)
                except StoreCorruptionError as error:
                    findings.append(_finding_from_corruption(error, "wal"))

        names = sorted(
            (set(manifest["tables"]) - deleted) | set(overlay)
        )
        checker = IndexStore(self.path)
        checker._manifest = manifest
        checker._overlay = overlay
        checker._deleted = deleted
        checker._wal_records = len(overlay)
        checker._writer = _ClosedWriter()
        checker.last_recovery = RecoveryReport(
            generation=manifest["generation"],
            snapshot_tables=len(manifest["tables"]),
            wal_records=len(overlay),
            wal_bytes=0,
        )
        for name in names:
            try:
                checker.load_table(name)
            except StoreCorruptionError as error:
                findings.append(
                    _finding_from_corruption(error, "table", table=name)
                )
            except FormatError as error:
                findings.append(
                    StoreFinding(
                        severity="error", kind="table", message=str(error),
                        table=name,
                    )
                )

        referenced = {
            entry["file"] for entry in manifest["tables"].values()
        }
        for stale in sorted(self._tables_path.glob("*.json")):
            if stale.name not in referenced:
                findings.append(
                    StoreFinding(
                        severity="warning", kind="orphan",
                        message=(
                            f"table file {stale.name} is not referenced "
                            f"by the manifest (debris from an interrupted "
                            f"compaction; the next compaction sweeps it)"
                        ),
                        path=str(stale),
                    )
                )
        current = Path(manifest["wal"]).name
        for stale in sorted(self._wal_path.glob("segment-*.log")):
            if stale.name != current:
                findings.append(
                    StoreFinding(
                        severity="warning", kind="orphan",
                        message=(
                            f"WAL segment {stale.name} belongs to a "
                            f"previous generation (debris from an "
                            f"interrupted compaction)"
                        ),
                        path=str(stale),
                    )
                )
        return findings


class _ClosedWriter:
    """Stand-in writer for read-only probes (verify must not append)."""

    in_sync = True

    def append_record(self, record: dict) -> int:  # pragma: no cover
        raise AssertionError("read-only store probe cannot append")

    def sync(self) -> None:  # pragma: no cover - nothing to sync
        pass

    def close(self) -> None:
        pass


def save_index(index, path) -> IndexStore:
    """Persist ``index`` at ``path`` and bind the store for incremental writes."""
    return index.save(path)


def load_index(path, cache: SignatureCache | None = None):
    """Rebuild a :class:`~repro.index.core.SimilarityIndex` from a store.

    Opening runs recovery (torn-tail truncation + WAL replay); tables are
    installed in sorted-name order with their *stored* sketches (no
    re-sketching), and the LSH tables are rebuilt from those sketches —
    both deterministic, so two loads of the same store are identical, and
    a load of a just-saved index equals the original.
    """
    from .core import SimilarityIndex

    store = IndexStore(path)
    store.open()
    index = SimilarityIndex(
        params=store.params(), options=store.options(), cache=cache
    )
    for name in store.table_names():
        instance, sketch = store.load_table(name)
        index._restore(name, instance, sketch)
    index.bind(store)
    return index


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "CompactionReport",
    "IndexStore",
    "RecoveryReport",
    "StoreFinding",
    "load_index",
    "save_index",
]
