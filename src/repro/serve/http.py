"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The server speaks just enough HTTP for its JSON API: request-line +
headers + ``Content-Length`` bodies in, status + JSON bodies out, with
keep-alive.  No chunked transfer, no TLS, no pipelining of partially-read
bodies — a shedding server must be able to answer 429 *cheaply*, and this
hand-rolled framing keeps the per-request parse cost to a few string
splits.  Malformed input maps to 400, oversized bodies to 413, both as
structured JSON; a connection is never left hanging without a response.
"""

from __future__ import annotations

import asyncio
import json

_MAX_HEADER_BYTES = 32 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A framing-level protocol violation (maps to 4xx then close)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class Request:
    """One parsed request: method, path, headers (lower-cased), raw body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise HttpError(
                400,
                f"request body must be a JSON object, "
                f"got {type(payload).__name__}",
            )
        return payload

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request | None:
    """Parse one request; ``None`` on a clean EOF between requests.

    Raises :class:`HttpError` for protocol violations — the caller answers
    with the error status and closes the connection (framing is no longer
    trustworthy after a malformed request).
    """
    try:
        header_blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request headers too large")
    if len(header_blob) > _MAX_HEADER_BYTES:
        raise HttpError(400, "request headers too large")

    lines = header_blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked transfer encoding is not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"invalid Content-Length: {length_text!r}")
    if length < 0:
        raise HttpError(400, f"invalid Content-Length: {length}")
    if length > max_body_bytes:
        raise HttpError(
            413,
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
    return Request(method, path, headers, body)


def render_response(
    status: int,
    body: dict,
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response, ready for ``writer.write``."""
    payload = json.dumps(body, sort_keys=True).encode()
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


__all__ = ["HttpError", "Request", "read_request", "render_response"]
