"""Admission control and load shedding for the similarity server.

The server's overload story is the paper's anytime ladder turned into an
operational policy.  Work arrives faster than the worker slots drain it,
so a bounded queue forms; the controller converts *queue pressure* —
waiting requests over queue capacity — into a degradation level:

===========================  ==============================================
pressure                     behaviour
===========================  ==============================================
below ``no_exact``           full anytime ladder (signature → refine →
                             exact), exact top-k search
``no_exact`` ≤ p <           the exact rung is dropped: refinement still
``signature_only``           runs, search restricts to the LSH shortlist
``signature_only`` ≤ p < 1   signature/bound-only answers — the floor the
                             ladder guarantees at any budget
queue full                   **shed**: 429 with a ``Retry-After`` hint;
                             never an unbounded queue, never a hung socket
===========================  ==============================================

Quality degrades before latency does: an admitted request always gets an
answer within its deadline, and the response says which level produced it
(``degradation.level``), so clients can distinguish "exact" from "floor".

The controller is deliberately synchronous, allocation-free bookkeeping —
the async orchestration lives in :mod:`repro.serve.app` — so the policy is
unit-testable without an event loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum


class DegradationLevel(IntEnum):
    """How far down the anytime ladder the server currently answers."""

    FULL = 0
    NO_EXACT = 1
    SIGNATURE_ONLY = 2

    @property
    def label(self) -> str:
        return _LEVEL_LABELS[self]


_LEVEL_LABELS = {
    DegradationLevel.FULL: "full",
    DegradationLevel.NO_EXACT: "no-exact",
    DegradationLevel.SIGNATURE_ONLY: "signature-only",
}


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one arriving request.

    ``admitted=False`` means shed: the caller must answer 429 with
    ``retry_after`` seconds and must *not* call ``release()``.  Admitted
    requests carry the degradation level frozen at admission time (the
    level a request was promised does not churn while it waits) and must
    ``release()`` exactly once when finished.
    """

    admitted: bool
    level: DegradationLevel
    inflight: int
    waiting: int
    retry_after: float | None = None


class AdmissionController:
    """Bounded-queue admission with pressure-driven degradation.

    ``slots`` requests run; up to ``max_queue`` more wait; the rest shed.
    ``inflight`` counts every admitted-and-unfinished request, so
    ``waiting = max(0, inflight - slots)`` is the queue depth without the
    controller having to know *which* requests hold worker slots.
    """

    def __init__(
        self,
        slots: int,
        max_queue: int,
        no_exact_pressure: float = 0.5,
        signature_only_pressure: float = 0.85,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.slots = slots
        self.max_queue = max_queue
        self.no_exact_pressure = no_exact_pressure
        self.signature_only_pressure = signature_only_pressure
        self.retry_after_seconds = retry_after_seconds
        self.inflight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.degraded_total = 0

    @property
    def waiting(self) -> int:
        """Admitted requests not yet holding a worker slot."""
        return max(0, self.inflight - self.slots)

    def pressure(self) -> float:
        """Queue occupancy in [0, 1] (1.0 when the queue is full)."""
        if self.max_queue == 0:
            return 0.0 if self.inflight < self.slots else 1.0
        return min(1.0, self.waiting / self.max_queue)

    def level(self) -> DegradationLevel:
        """The degradation level implied by the current pressure."""
        pressure = self.pressure()
        if pressure >= self.signature_only_pressure:
            return DegradationLevel.SIGNATURE_ONLY
        if pressure >= self.no_exact_pressure:
            return DegradationLevel.NO_EXACT
        return DegradationLevel.FULL

    def retry_after(self) -> float:
        """Back-pressure hint: deeper backlog ⇒ come back later.

        Scales the configured base with backlog depth in units of the
        drain rate (``slots``), so a client that honours the hint returns
        roughly when its place in line would have cleared.
        """
        backlog = self.inflight + 1  # the request being turned away
        scale = backlog / self.slots
        return max(self.retry_after_seconds, self.retry_after_seconds * scale)

    def admit(self) -> AdmissionDecision:
        """Decide one arrival; mutates the in-flight count when admitted."""
        if self.waiting >= self.max_queue and self.inflight >= self.slots:
            self.shed_total += 1
            return AdmissionDecision(
                admitted=False,
                level=self.level(),
                inflight=self.inflight,
                waiting=self.waiting,
                retry_after=math.ceil(self.retry_after() * 1000) / 1000,
            )
        level = self.level()
        self.inflight += 1
        self.admitted_total += 1
        if level is not DegradationLevel.FULL:
            self.degraded_total += 1
        return AdmissionDecision(
            admitted=True,
            level=level,
            inflight=self.inflight,
            waiting=self.waiting,
        )

    def release(self) -> None:
        """Mark one admitted request finished (success or failure alike)."""
        if self.inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self.inflight -= 1

    def snapshot(self) -> dict:
        """JSON-ready occupancy counters for ``/stats`` and diagnostics."""
        return {
            "slots": self.slots,
            "max_queue": self.max_queue,
            "inflight": self.inflight,
            "waiting": self.waiting,
            "pressure": self.pressure(),
            "level": self.level().label,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "degraded_total": self.degraded_total,
        }


__all__ = ["AdmissionController", "AdmissionDecision", "DegradationLevel"]
