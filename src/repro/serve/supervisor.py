"""Asyncio supervision of fork workers for the similarity server.

The server's event loop must never block on compute, and a dead worker
must never take the server down with it.  This module bridges the two
worlds with the same primitives the batch engine's
:class:`~repro.parallel.pool.WorkerPool` schedules over —
:func:`~repro.runtime.isolation.start_worker` /
:func:`~repro.runtime.isolation.reap_worker` — but multiplexed by the
event loop instead of ``multiprocessing.connection.wait``:

- a worker's report (or the pipe EOF left by its death) makes its
  receiver readable, which ``loop.add_reader`` turns into a future
  resolution — no polling, no helper threads (the parent stays
  thread-free, so forking stays safe);
- the wall-clock kill is a ``loop.call_later`` timer per worker, the
  backstop behind the cooperative in-worker deadline;
- every death comes back classified (``oom`` / ``killed`` / ``crashed``)
  exactly as in the batch engine, so the HTTP layer maps it onto the same
  :class:`~repro.runtime.budget.Outcome` vocabulary.

Slots, not processes, are the supervised resource: the supervisor owns
``slots`` permits, forks one worker per request attempt, and when a
worker dies it delays that *slot's* next fork by a capped exponential
backoff (decorrelated per slot).  A poisoned host therefore degrades to a
slow trickle of forks instead of a fork bomb, while healthy slots keep
serving at full speed.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

from ..runtime.isolation import WorkerHandle, WorkerLimits, reap_worker, start_worker
from ..runtime.retry import RetryPolicy

_READY = "ready"
_TIMED_OUT = "timed-out"
_CANCELLED = "cancelled"


class _Inflight:
    """Book-keeping for one running worker: handle, waker, wall timer."""

    __slots__ = ("handle", "future", "timer", "slot")

    def __init__(
        self,
        handle: WorkerHandle,
        future: "asyncio.Future[str]",
        timer: asyncio.TimerHandle | None,
        slot: int,
    ) -> None:
        self.handle = handle
        self.future = future
        self.timer = timer
        self.slot = slot

    def wake(self, loop: asyncio.AbstractEventLoop, reason: str) -> None:
        """Resolve the waiter exactly once and detach loop callbacks."""
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None
        try:
            loop.remove_reader(self.handle.receiver.fileno())
        except (OSError, ValueError):  # pragma: no cover - fd already gone
            pass
        if not self.future.done():
            self.future.set_result(reason)


class WorkerSupervisor:
    """Run request jobs in supervised fork workers from an event loop.

    Parameters
    ----------
    slots:
        Maximum concurrently forked workers.  ``submit`` waits for a free
        slot; the admission controller bounds how many waiters can pile up.
    restart_backoff:
        Capped exponential backoff (with deterministic per-slot jitter)
        applied to a slot after its worker dies; consecutive deaths grow
        the delay, a success resets it.
    out:
        Optional sink for human-readable supervision log lines.
    """

    def __init__(
        self,
        slots: int,
        restart_backoff: RetryPolicy | None = None,
        out: Callable[[str], None] | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self.restart_backoff = restart_backoff or RetryPolicy(
            retries=0, base_delay=0.05, multiplier=2.0, max_delay=2.0,
            jitter=0.1,
        )
        self.out = out or (lambda _line: None)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._free: asyncio.Queue[int] | None = None
        self._failures = [0] * slots
        self._inflight: set[_Inflight] = set()
        self._timers: set[asyncio.TimerHandle] = set()
        self._draining = False
        self.deaths_total = 0
        self.restarts_delayed_total = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and make every slot available."""
        self._loop = asyncio.get_running_loop()
        self._free = asyncio.Queue()
        for slot in range(self.slots):
            self._free.put_nowait(slot)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def cancel_inflight(self, reason: str = "server draining") -> int:
        """Hard-cancel every running worker; their submitters observe
        ``("cancelled", reason)``.  Returns how many were cancelled."""
        assert self._loop is not None
        cancelled = 0
        for entry in list(self._inflight):
            if not entry.future.done():
                entry.wake(self._loop, _CANCELLED)
                cancelled += 1
        return cancelled

    def close(self) -> None:
        """Cancel pending slot-restart timers (drain epilogue)."""
        self._draining = True
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        job: str | Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        limits: WorkerLimits | None = None,
    ) -> tuple[str, Any]:
        """Run ``job`` in a fork worker; returns a classified
        ``(status, payload)`` pair and never raises for worker deaths.

        Statuses are those of :func:`~repro.runtime.isolation.reap_worker`
        (``ok``/``oom``/``killed``/``crashed``/``fatal``/``interrupt``)
        plus ``cancelled`` when the server drained while the worker ran.
        """
        assert self._loop is not None and self._free is not None, (
            "WorkerSupervisor.start() must run inside the event loop first"
        )
        if self._draining:
            return ("cancelled", "server draining")
        slot = await self._free.get()
        if self._draining:
            # Woken by a slot freed during hard-cancel: do not fork a new
            # worker into a draining server.
            self._release_slot(slot)
            return ("cancelled", "server draining")
        try:
            handle = start_worker(job, args=args, kwargs=kwargs, limits=limits)
        except BaseException:
            self._release_slot(slot)
            raise
        loop = self._loop
        future: asyncio.Future[str] = loop.create_future()
        entry = _Inflight(handle, future, None, slot)
        remaining = handle.remaining()
        if remaining is not None:
            entry.timer = loop.call_later(
                max(0.0, remaining), entry.wake, loop, _TIMED_OUT
            )
        loop.add_reader(handle.receiver.fileno(), entry.wake, loop, _READY)
        self._inflight.add(entry)
        try:
            reason = await asyncio.shield(future)
        except asyncio.CancelledError:
            # The submitting task itself was cancelled (e.g. drain timeout
            # hit): make sure the worker does not outlive the request.
            entry.wake(loop, _CANCELLED)
            reason = _CANCELLED
        finally:
            self._inflight.discard(entry)

        if reason == _CANCELLED:
            self._destroy(handle)
            # A cancellation says nothing about the slot's health.
            self._release_slot(slot)
            return ("cancelled", "request cancelled while running")

        status, payload = reap_worker(handle, timed_out=reason == _TIMED_OUT)
        self._account(slot, status, payload)
        return (status, payload)

    # -- internals -----------------------------------------------------------

    def _account(self, slot: int, status: str, payload: Any) -> None:
        """Update slot health and schedule its return to the free pool."""
        if status in ("ok", "fatal", "interrupt"):
            # Clean worker exits (including a job raising a ReproError):
            # the slot is healthy.
            self._failures[slot] = 0
            self._release_slot(slot)
            return
        self.deaths_total += 1
        self._failures[slot] += 1
        delay = self.restart_backoff.delay_for(
            self._failures[slot], salt=("slot", slot)
        )
        self.out(
            f"[slot {slot}] worker died ({status}: {payload}); "
            f"restart backoff {delay:.3f}s "
            f"(consecutive failures: {self._failures[slot]})"
        )
        self.restarts_delayed_total += 1
        self._release_slot(slot, after=delay)

    def _release_slot(self, slot: int, after: float | None = None) -> None:
        assert self._loop is not None and self._free is not None
        if after is None or after <= 0 or self._draining:
            self._free.put_nowait(slot)
            return
        timer: asyncio.TimerHandle | None = None

        def restore() -> None:
            if timer is not None:
                self._timers.discard(timer)
            assert self._free is not None
            self._free.put_nowait(slot)

        timer = self._loop.call_later(after, restore)
        self._timers.add(timer)

    def _destroy(self, handle: WorkerHandle) -> None:
        """Kill a worker whose result nobody will read."""
        try:
            handle.receiver.close()
        except Exception:  # pragma: no cover - best effort
            pass
        handle.process.terminate()
        handle.process.join(1.0)
        if handle.process.is_alive():  # pragma: no cover - stuck in kernel
            handle.process.kill()
            handle.process.join(1.0)

    def snapshot(self) -> dict:
        """JSON-ready supervision counters for ``/stats``."""
        return {
            "slots": self.slots,
            "inflight": self.inflight_count,
            "deaths_total": self.deaths_total,
            "restarts_delayed_total": self.restarts_delayed_total,
            "slot_failures": list(self._failures),
        }


__all__ = ["WorkerSupervisor"]
