"""Server policy knobs: one frozen object, validated at construction.

Every robustness behaviour of :mod:`repro.serve` — deadline clamping,
admission-queue sizing, load-shed thresholds, worker supervision backoff,
drain deadlines — is driven by a :class:`ServerConfig`.  The defaults are
tuned for the small corpora the benchmarks and CI smoke jobs use; a real
deployment sizes ``jobs`` to cores and ``max_queue`` to the latency SLO
(queue depth × per-request service time is the tail latency you accept).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.retry import RetryPolicy

DEFAULT_PORT = 8645


@dataclass(frozen=True)
class ServerConfig:
    """Policy for one :class:`~repro.serve.app.Server`.

    Parameters
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (tests and the
        benchmark harness use this); the bound address is printed on
        startup either way.
    jobs:
        Worker slots — the maximum number of concurrently forked compute
        workers.  Requests beyond this wait in the admission queue.
    max_queue:
        Maximum *waiting* (admitted, not yet running) requests.  Arrivals
        beyond ``jobs + max_queue`` in flight are shed with 429.
    default_timeout_ms / max_timeout_ms:
        Per-request deadline policy: a request's ``timeout_ms`` defaults
        to the former and is clamped to the latter — a client cannot buy
        unbounded server time.
    kill_grace_ms:
        Extra wall clock granted past the cooperative deadline before the
        worker is hard-killed.  The cooperative
        :class:`~repro.runtime.budget.Budget` should trip first and return
        a partial (lower-bound) result; the kill is the backstop that
        keeps a wedged worker from holding a slot.
    no_exact_pressure / signature_only_pressure:
        Load-shedding thresholds on queue pressure (waiting / max_queue).
        At or above the first, requests drop the exact rung of the anytime
        ladder; at or above the second, they run signature/bound-only.
    retry_after_seconds:
        Base of the ``Retry-After`` hint on shed responses, scaled by how
        deep the backlog is.
    retries:
        Transient-failure retries per request (a crashed worker attempt is
        retried at most this many times if deadline remains).
    restart_backoff:
        Capped exponential backoff applied to a worker *slot* after its
        worker dies — consecutive deaths delay the slot's next fork, so a
        poisoned host does not fork-bomb itself.
    drain_deadline_seconds:
        On SIGTERM/SIGINT: how long in-flight requests get to finish
        before being cancelled with structured error bodies.
    max_body_bytes:
        Request-body cap (413 beyond it).
    max_memory_mb:
        Optional per-worker address-space cap (worker deaths classify as
        ``oom`` and degrade, exactly as in the batch engine).
    metrics_path:
        When set, the final metrics snapshot is flushed here on drain
        (the obs artifact contract: written even on an unclean stop).
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    jobs: int = 2
    max_queue: int = 16
    default_timeout_ms: int = 2_000
    max_timeout_ms: int = 30_000
    kill_grace_ms: int = 1_000
    no_exact_pressure: float = 0.5
    signature_only_pressure: float = 0.85
    retry_after_seconds: float = 1.0
    retries: int = 0
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            retries=0, base_delay=0.05, multiplier=2.0, max_delay=2.0,
            jitter=0.1,
        )
    )
    drain_deadline_seconds: float = 5.0
    max_body_bytes: int = 8 * 1024 * 1024
    max_memory_mb: float | None = None
    metrics_path: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.default_timeout_ms <= 0 or self.max_timeout_ms <= 0:
            raise ValueError("timeouts must be positive milliseconds")
        if self.default_timeout_ms > self.max_timeout_ms:
            raise ValueError(
                f"default_timeout_ms ({self.default_timeout_ms}) exceeds "
                f"max_timeout_ms ({self.max_timeout_ms})"
            )
        if self.kill_grace_ms < 0:
            raise ValueError("kill_grace_ms must be >= 0")
        if not 0 < self.no_exact_pressure <= 1:
            raise ValueError("no_exact_pressure must be in (0, 1]")
        if not 0 < self.signature_only_pressure <= 1:
            raise ValueError("signature_only_pressure must be in (0, 1]")
        if self.no_exact_pressure > self.signature_only_pressure:
            raise ValueError(
                "no_exact_pressure must not exceed signature_only_pressure "
                "(the ladder degrades monotonically with pressure)"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.drain_deadline_seconds < 0:
            raise ValueError("drain_deadline_seconds must be >= 0")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")

    def clamp_timeout_ms(self, requested: object) -> int:
        """The effective deadline for a request asking for ``requested``.

        ``None`` (absent) takes the default; anything else must be a
        positive number and is clamped to ``max_timeout_ms``.
        """
        if requested is None:
            return self.default_timeout_ms
        if isinstance(requested, bool) or not isinstance(
            requested, (int, float)
        ):
            raise ValueError(
                f"timeout_ms must be a number, got {requested!r}"
            )
        if requested <= 0:
            raise ValueError(f"timeout_ms must be positive, got {requested}")
        return int(min(requested, self.max_timeout_ms))


__all__ = ["DEFAULT_PORT", "ServerConfig"]
