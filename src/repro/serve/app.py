"""The asyncio server: sockets, routing, signals, and graceful drain.

One :class:`Server` owns one :class:`~repro.serve.service.SimilarityService`
and an ``asyncio.start_server`` listener.  The event loop only ever does
cheap work — parsing frames, admission decisions, writing responses —
while every comparison runs in a supervised fork worker.  The drain
sequence on SIGTERM/SIGINT is the robustness contract of the whole PR:

1. mark not-ready (``/readyz`` → 503) and stop accepting connections;
2. let in-flight requests finish, up to ``drain_deadline_seconds``;
3. hard-cancel whatever remains — those requests get structured 503
   ``cancelled`` bodies, never a silently dropped socket;
4. kill any still-running workers (no orphan processes), flush the
   metrics artifact if one was configured, and exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
import traceback

from ..index.core import SimilarityIndex
from ..obs.metrics import MetricsRegistry
from .config import ServerConfig
from .http import HttpError, Request, read_request, render_response
from .service import RequestError, ServiceResponse, SimilarityService


class Server:
    """The similarity service bound to a TCP listener."""

    def __init__(
        self,
        config: ServerConfig,
        index: SimilarityIndex | None = None,
        metrics: MetricsRegistry | None = None,
        out=None,
        index_loader=None,
    ) -> None:
        if (index is None) == (index_loader is None):
            raise ValueError(
                "provide exactly one of index= or index_loader="
            )
        self.config = config
        self.service = SimilarityService(config, index, metrics=metrics)
        self.out = out or (lambda line: print(line, flush=True))
        self._index_loader = index_loader
        self._recovery_task: asyncio.Task | None = None
        self._recovery_failed = False
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stop_requested = asyncio.Event()
        self._stop_signal: str | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — meaningful after :meth:`start`."""
        assert self._server is not None, "server not started"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "Server":
        """Bind the listener and the worker supervisor; returns self.

        With an ``index_loader``, the listener comes up *first* and the
        store's WAL replay runs in an executor thread behind it: probes
        answer immediately (``/readyz`` says ``recovering``, 503) and the
        work endpoints open up only once recovery attaches the index.
        Acked-durable writes replay from the log, so a server killed
        mid-ingest restarts into exactly the acknowledged state.
        """
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        host, port = self.address
        self.out(f"serving on http://{host}:{port}")
        if self._index_loader is not None:
            self._recovery_task = asyncio.ensure_future(self._recover())
        return self

    async def _recover(self) -> None:
        """Run the index loader off-loop, then open the work endpoints."""
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        try:
            index = await loop.run_in_executor(None, self._index_loader)
        except asyncio.CancelledError:  # pragma: no cover - drain race
            raise
        except BaseException as error:  # noqa: BLE001 - must not die silently
            self._recovery_failed = True
            self.out(
                f"index recovery FAILED: {type(error).__name__}: {error}"
            )
            self.request_stop("recovery-failed")
            return
        self.service.attach_index(index)
        elapsed = time.monotonic() - started
        store = index.store
        report = store.last_recovery if store is not None else None
        detail = ""
        if report is not None:
            detail = (
                f" (generation {report.generation}, "
                f"{report.wal_records} log record(s) replayed"
                + (
                    f", {report.torn_bytes_dropped} torn byte(s) dropped"
                    if report.was_torn
                    else ""
                )
                + ")"
            )
        self.out(
            f"recovered {len(index)} table(s) in {elapsed:.3f}s{detail}; ready"
        )

    def request_stop(self, signame: str = "stop") -> None:
        """Idempotent stop trigger (signal handlers land here)."""
        self._stop_signal = self._stop_signal or signame
        self._stop_requested.set()

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain.  Returns the exit code."""
        # Signal handlers go in BEFORE the address banner is printed:
        # anything that parses the banner (tests, CI, orchestration) may
        # send SIGTERM immediately, and the default disposition would kill
        # the process instead of draining it.
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.request_stop, signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loop: rely on KeyboardInterrupt
        await self.start()
        try:
            await self._stop_requested.wait()
        finally:
            await self.drain()
        self.out(f"drained after {self._stop_signal or 'stop'}; exiting")
        return 1 if self._recovery_failed else 0

    async def drain(self) -> None:
        """Graceful shutdown: finish, then cancel, then clean up."""
        service = self.service
        if service.draining:
            return
        service.draining = True
        if self._recovery_task is not None and not self._recovery_task.done():
            self._recovery_task.cancel()
            try:
                await self._recovery_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self.out(
            f"draining: {service.admission.inflight} in flight, "
            f"deadline {self.config.drain_deadline_seconds}s"
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

        deadline = time.monotonic() + self.config.drain_deadline_seconds
        while service.admission.inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

        if service.admission.inflight:
            # Past the deadline: fail the stragglers with structured
            # cancellations and reap their workers.
            service.supervisor.close()
            cancelled = service.supervisor.cancel_inflight()
            self.out(
                f"drain deadline passed; cancelled {cancelled} running "
                f"worker(s), {service.admission.inflight} request(s) in flight"
            )
            grace = time.monotonic() + 1.0
            while service.admission.inflight and time.monotonic() < grace:
                await asyncio.sleep(0.02)
        service.supervisor.close()

        for writer in list(self._connections):
            self._close_writer(writer)
        self._connections.clear()
        self._flush_metrics()

    def _flush_metrics(self) -> None:
        """Write the metrics artifact (atomically) if one was configured."""
        path = self.config.metrics_path
        if not path:
            return
        payload = self.service.metrics.snapshot().as_dict()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.out(f"metrics artifact -> {path}")

    # -- connection handling -------------------------------------------------

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # pragma: no cover - already closed
            pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpError as error:
                    writer.write(render_response(
                        error.status,
                        {
                            "ok": False,
                            "error": {
                                "outcome": "failed", "message": str(error)
                            },
                        },
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep = request.keep_alive and not self.service.draining
                writer.write(render_response(
                    response.status, response.body, response.headers,
                    keep_alive=keep,
                ))
                await writer.drain()
                if not keep:
                    break
        except (
            ConnectionResetError, BrokenPipeError, asyncio.CancelledError
        ):
            pass
        finally:
            self._connections.discard(writer)
            self._close_writer(writer)

    async def _dispatch(self, request: Request) -> ServiceResponse:
        path = request.path.partition("?")[0]
        service = self.service

        probes = {
            "/healthz": service.healthz,
            "/readyz": service.readyz,
            "/metrics": service.metrics_body,
            "/stats": service.stats,
        }
        if path in probes:
            if request.method != "GET":
                return ServiceResponse(
                    405,
                    {
                        "ok": False,
                        "error": {
                            "outcome": "failed",
                            "message": f"{path} only supports GET",
                        },
                    },
                )
            return probes[path]()

        endpoints = {
            "/compare": service.compare,
            "/search": service.search,
            "/dedup": service.dedup,
            "/ingest": service.ingest,
        }
        if path not in endpoints:
            return ServiceResponse(
                404,
                {
                    "ok": False,
                    "error": {
                        "outcome": "failed",
                        "message": f"no such endpoint: {path}",
                    },
                },
            )
        if request.method != "POST":
            return ServiceResponse(
                405,
                {
                    "ok": False,
                    "error": {
                        "outcome": "failed",
                        "message": f"{path} only supports POST",
                    },
                },
            )
        if service.draining:
            return ServiceResponse(
                503,
                {
                    "ok": False,
                    "error": {
                        "outcome": "cancelled",
                        "message": "server is draining",
                    },
                },
            )
        if service.recovering:
            return ServiceResponse(
                503,
                {
                    "ok": False,
                    "error": {
                        "outcome": "recovering",
                        "message": (
                            "index recovery in progress; "
                            "poll /readyz and retry"
                        ),
                    },
                },
            )
        try:
            body = request.json()
        except HttpError as error:
            return ServiceResponse(
                error.status,
                {
                    "ok": False,
                    "error": {"outcome": "failed", "message": str(error)},
                },
            )
        try:
            return await endpoints[path](body)
        except RequestError as error:
            self.service.metrics.counter(
                "serve.requests", 1,
                endpoint=path.lstrip("/"), outcome="bad-request",
            )
            return ServiceResponse(
                error.status,
                {
                    "ok": False,
                    "error": {"outcome": "failed", "message": str(error)},
                },
            )
        except Exception as error:  # noqa: BLE001 - the loop must survive
            traceback.print_exc(file=sys.stderr)
            self.service.metrics.counter(
                "serve.requests", 1,
                endpoint=path.lstrip("/"), outcome="error",
            )
            return ServiceResponse(
                500,
                {
                    "ok": False,
                    "error": {
                        "outcome": "crashed",
                        "message": f"internal error: "
                                   f"{type(error).__name__}: {error}",
                    },
                },
            )


async def serve(
    config: ServerConfig,
    index: SimilarityIndex | None = None,
    metrics: MetricsRegistry | None = None,
    out=None,
    index_loader=None,
) -> int:
    """Run a :class:`Server` to completion (the CLI entry point awaits this)."""
    return await Server(
        config, index, metrics=metrics, out=out, index_loader=index_loader
    ).run()


__all__ = ["Server", "serve"]
