"""Endpoint logic for the similarity server, independent of HTTP framing.

:class:`SimilarityService` owns the long-lived state — the
:class:`~repro.index.SimilarityIndex`, the
:class:`~repro.serve.admission.AdmissionController`, the
:class:`~repro.serve.supervisor.WorkerSupervisor`, and the metrics
registry — and turns one decoded JSON request into one
``(status, body, headers)`` triple.  Keeping it transport-free makes the
robustness semantics (deadline clamping, shedding, degradation levels,
worker-death mapping) unit-testable without sockets.

The outcome vocabulary is the runtime's
(:class:`~repro.runtime.budget.Outcome`), mapped onto HTTP:

==============  ======  ==================================================
worker status   HTTP    meaning
==============  ======  ==================================================
``ok``          200     payload returned (its own ``outcome`` field may
                        still say ``deadline-exceeded`` for a partial —
                        the anytime ladder's floor answer is a success)
``fatal``       400     the job raised a :class:`~repro.core.errors.
                        ReproError`: the *request* was bad
``killed``      504     hard wall kill after the cooperative deadline and
                        the grace period both passed
``oom``         500     worker exceeded the memory cap
``crashed``     500     worker died (segfault, pipe break, …) after any
                        retry budget was spent
``cancelled``   503     server drained while the request ran
shed            429     admission queue full; ``Retry-After`` is set
==============  ======  ==================================================
"""

from __future__ import annotations

import math
import time
from typing import Any

from ..core.errors import ReproError
from ..core.instance import Instance
from ..index.core import SimilarityIndex
from ..io_.csvio import NULL_PREFIX, _decode
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..runtime.isolation import WorkerLimits
from .admission import AdmissionController, DegradationLevel
from .config import ServerConfig
from .jobs import compare_job, dedup_job, search_job
from .supervisor import WorkerSupervisor

_TRANSIENT = frozenset({"crashed"})
_STATUS_HTTP = {
    "killed": 504,
    "oom": 500,
    "crashed": 500,
    "cancelled": 503,
    "interrupt": 503,
}
_STATUS_OUTCOME = {
    "killed": "killed",
    "oom": "oom",
    "crashed": "crashed",
    "cancelled": "cancelled",
    "interrupt": "cancelled",
}


class RequestError(Exception):
    """A malformed or unserviceable request (maps to a 4xx response)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def decode_table(payload: Any, where: str) -> Instance:
    """Build an :class:`Instance` from the wire table encoding.

    The wire form mirrors the CSV reader's conventions: ``{"relation":
    str, "columns": [str, ...], "rows": [[cell, ...], ...]}`` with cells
    as strings, labeled nulls spelled with the ``_N:`` prefix and the
    ``_C:`` escape available for literal constants.
    """
    if not isinstance(payload, dict):
        raise RequestError(f"{where} must be an object, got {type(payload).__name__}")
    relation = payload.get("relation")
    columns = payload.get("columns")
    rows = payload.get("rows")
    if not isinstance(relation, str) or not relation:
        raise RequestError(f"{where}.relation must be a non-empty string")
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) and c for c in columns)
    ):
        raise RequestError(f"{where}.columns must be a non-empty list of strings")
    if not isinstance(rows, list):
        raise RequestError(f"{where}.rows must be a list of rows")
    decoded = []
    for i, row in enumerate(rows):
        if not isinstance(row, list) or len(row) != len(columns):
            raise RequestError(
                f"{where}.rows[{i}] must be a list of {len(columns)} cells"
            )
        cells = []
        for j, cell in enumerate(row):
            if not isinstance(cell, str):
                raise RequestError(
                    f"{where}.rows[{i}][{j}] must be a string "
                    f"(encode nulls as {NULL_PREFIX!r}-prefixed labels)"
                )
            cells.append(
                _decode(cell, NULL_PREFIX, where=f"{where}.rows[{i}][{j}]")
            )
        decoded.append(cells)
    name = payload.get("name", where)
    if not isinstance(name, str) or not name:
        raise RequestError(f"{where}.name must be a non-empty string")
    try:
        return Instance.from_rows(
            relation, tuple(columns), decoded, name=name
        )
    except ReproError as error:
        raise RequestError(f"{where}: {error}") from error


class ServiceResponse:
    """One endpoint result: HTTP status, JSON body, extra headers."""

    __slots__ = ("status", "body", "headers")

    def __init__(
        self, status: int, body: dict, headers: dict[str, str] | None = None
    ) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}


class SimilarityService:
    """The long-lived server state plus one method per endpoint."""

    def __init__(
        self,
        config: ServerConfig,
        index: SimilarityIndex | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.index = index
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.admission = AdmissionController(
            slots=config.jobs,
            max_queue=config.max_queue,
            no_exact_pressure=config.no_exact_pressure,
            signature_only_pressure=config.signature_only_pressure,
            retry_after_seconds=config.retry_after_seconds,
        )
        self.supervisor = WorkerSupervisor(
            slots=config.jobs, restart_backoff=config.restart_backoff
        )
        self.started_at = time.monotonic()
        self.draining = False
        # ``index=None`` means the store is still replaying its write-ahead
        # log: the listener is up (probes answer) but work endpoints return
        # 503 until attach_index() flips this off.
        self.recovering = index is None
        if index is not None:
            self.warm(index.names())

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the supervisor to the running event loop."""
        self.supervisor.start()

    def attach_index(self, index: SimilarityIndex) -> None:
        """Install the recovered index and leave the recovering state."""
        self.index = index
        self.warm(index.names())
        self.recovering = False

    def warm(self, names: list[str]) -> None:
        """Pre-build cache entries in the parent so forked workers inherit
        them copy-on-write: a worker's first comparison against a warmed
        table is a cache hit, not a preparation."""
        for name in names:
            instance = self.index.get(name)
            self.index.cache.get(instance, "left")
            self.index.cache.get(instance, "right")

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    # -- plumbing ------------------------------------------------------------

    def _limits(self, deadline_s: float) -> WorkerLimits:
        return WorkerLimits(
            max_memory_mb=self.config.max_memory_mb,
            wall_timeout=deadline_s + self.config.kill_grace_ms / 1000.0,
        )

    def _degradation(self, level: DegradationLevel) -> dict:
        return {"level": int(level), "label": level.label}

    def _count(self, endpoint: str, outcome: str) -> None:
        self.metrics.counter("serve.requests", 1, endpoint=endpoint, outcome=outcome)

    def _shed_response(self, endpoint: str, decision) -> ServiceResponse:
        self.metrics.counter("serve.shed", 1, endpoint=endpoint)
        self._count(endpoint, "shed")
        retry_after = decision.retry_after or self.config.retry_after_seconds
        return ServiceResponse(
            429,
            {
                "ok": False,
                "error": {
                    "outcome": "shed",
                    "message": (
                        "admission queue full "
                        f"({decision.waiting} waiting, "
                        f"{decision.inflight} in flight); retry later"
                    ),
                },
                "retry_after_seconds": retry_after,
                "degradation": self._degradation(decision.level),
            },
            {"Retry-After": str(max(1, math.ceil(retry_after)))},
        )

    def _failure_response(
        self,
        endpoint: str,
        status: str,
        payload: Any,
        level: DegradationLevel,
        timeout_ms: int,
    ) -> ServiceResponse:
        outcome = _STATUS_OUTCOME.get(status, "crashed")
        self._count(endpoint, outcome)
        return ServiceResponse(
            _STATUS_HTTP.get(status, 500),
            {
                "ok": False,
                "error": {"outcome": outcome, "message": str(payload)},
                "degradation": self._degradation(level),
                "timeout_ms": timeout_ms,
            },
        )

    async def _run_job(
        self,
        endpoint: str,
        job,
        args: tuple,
        kwargs: dict,
        level: DegradationLevel,
        timeout_ms: int,
    ) -> ServiceResponse:
        """Submit a job with deadline, retry-on-crash, and outcome mapping."""
        deadline_s = timeout_ms / 1000.0
        started = time.monotonic()
        attempts = 1 + self.config.retries
        status, payload = "crashed", "not attempted"
        for attempt in range(1, attempts + 1):
            remaining = deadline_s - (time.monotonic() - started)
            if attempt > 1 and remaining < 0.05:
                break  # no budget left to retry into
            kwargs = dict(kwargs, deadline=max(remaining, 0.001))
            status, payload = await self.supervisor.submit(
                job, args=args, kwargs=kwargs,
                limits=self._limits(max(remaining, 0.001)),
            )
            if status not in _TRANSIENT:
                break
            self.metrics.counter(
                "serve.retries", 1, endpoint=endpoint, status=status
            )

        elapsed_ms = (time.monotonic() - started) * 1000.0
        self.metrics.observe("serve.latency_ms", elapsed_ms, endpoint=endpoint)

        if status == "fatal":
            self._count(endpoint, "bad-request")
            return ServiceResponse(
                400,
                {
                    "ok": False,
                    "error": {
                        "outcome": "failed",
                        "message": f"{type(payload).__name__}: {payload}",
                    },
                    "degradation": self._degradation(level),
                    "timeout_ms": timeout_ms,
                },
            )
        if status != "ok":
            return self._failure_response(
                endpoint, status, payload, level, timeout_ms
            )

        # Fold the worker's scoped metrics into the server registry so
        # /metrics aggregates compute-side counters exactly.
        result = payload
        if isinstance(payload, dict) and "payload" in payload:
            shipped = payload.get("metrics")
            if shipped:
                self.metrics.merge_snapshot(MetricsSnapshot.from_dict(shipped))
            result = payload["payload"]
        self._count(endpoint, "ok")
        return ServiceResponse(
            200,
            {
                "ok": True,
                "result": result,
                "degradation": self._degradation(level),
                "timeout_ms": timeout_ms,
                "elapsed_ms": elapsed_ms,
            },
        )

    def _admit(self, endpoint: str):
        """Admission decision plus the metrics it implies."""
        decision = self.admission.admit()
        self.metrics.gauge("serve.queue.depth", self.admission.waiting)
        self.metrics.gauge("serve.inflight", self.admission.inflight)
        if decision.admitted and decision.level is not DegradationLevel.FULL:
            self.metrics.counter(
                "serve.degraded", 1,
                endpoint=endpoint, level=decision.level.label,
            )
        return decision

    def _timeout_ms(self, body: dict) -> int:
        try:
            return self.config.clamp_timeout_ms(body.get("timeout_ms"))
        except ValueError as error:
            raise RequestError(str(error)) from error

    # -- endpoints -----------------------------------------------------------

    async def compare(self, body: dict) -> ServiceResponse:
        timeout_ms = self._timeout_ms(body)
        if "left" not in body or "right" not in body:
            raise RequestError("compare needs 'left' and 'right' tables")
        left = decode_table(body["left"], "left")
        right = decode_table(body["right"], "right")
        decision = self._admit("compare")
        if not decision.admitted:
            return self._shed_response("compare", decision)
        try:
            return await self._run_job(
                "compare",
                compare_job,
                args=(left, right),
                kwargs={"level": decision.level, "options": self.index.options},
                level=decision.level,
                timeout_ms=timeout_ms,
            )
        finally:
            self.admission.release()

    async def search(self, body: dict) -> ServiceResponse:
        timeout_ms = self._timeout_ms(body)
        if "query" not in body:
            raise RequestError("search needs a 'query' table")
        query = decode_table(body["query"], "query")
        top_k = body.get("top_k", 5)
        if (
            isinstance(top_k, bool)
            or not isinstance(top_k, int)
            or top_k < 1
        ):
            raise RequestError(f"top_k must be a positive integer, got {top_k!r}")
        decision = self._admit("search")
        if not decision.admitted:
            return self._shed_response("search", decision)
        try:
            return await self._run_job(
                "search",
                search_job,
                args=(self.index, query),
                kwargs={"top_k": top_k, "level": decision.level},
                level=decision.level,
                timeout_ms=timeout_ms,
            )
        finally:
            self.admission.release()

    async def dedup(self, body: dict) -> ServiceResponse:
        timeout_ms = self._timeout_ms(body)
        threshold = body.get("threshold", 0.8)
        if (
            isinstance(threshold, bool)
            or not isinstance(threshold, (int, float))
            or not 0 < threshold <= 1
        ):
            raise RequestError(
                f"threshold must be a number in (0, 1], got {threshold!r}"
            )
        decision = self._admit("dedup")
        if not decision.admitted:
            return self._shed_response("dedup", decision)
        try:
            return await self._run_job(
                "dedup",
                dedup_job,
                args=(self.index,),
                kwargs={"threshold": float(threshold), "level": decision.level},
                level=decision.level,
                timeout_ms=timeout_ms,
            )
        finally:
            self.admission.release()

    async def ingest(self, body: dict) -> ServiceResponse:
        """Register or replace a table.  Runs in the parent — ingest
        mutates the index (and its bound store, if any), and only
        parent-side mutations survive; forked workers see the new table
        on their next fork.

        Re-ingesting an existing name is a 409 unless the request sets
        ``"replace": true``; a replace routes through the index's delta
        maintenance, so the live sketch/LSH state is repaired in place
        (the response's ``update`` object says what was touched)."""
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise RequestError("ingest needs a non-empty 'name' string")
        if "table" not in body:
            raise RequestError("ingest needs a 'table' object")
        replace = bool(body.get("replace", False))
        table = decode_table(body["table"], "table")
        started = time.monotonic()
        if name in self.index and not replace:
            self._count("ingest", "conflict")
            return ServiceResponse(
                409,
                {
                    "ok": False,
                    "error": {
                        "outcome": "failed",
                        "message": f"table {name!r} already in the index"
                        " (set 'replace': true to update it in place)",
                    },
                },
            )
        try:
            if name in self.index:
                report = self.index.update(name, table)
            else:
                report = self.index.add(name, table)
        except ReproError as error:
            raise RequestError(f"ingest failed: {error}") from error
        # Durability gate: the add above wrote a WAL record, but the 200
        # is the promise that the table survives a crash — so fsync the
        # log (group-commit flush; a no-op when sync_every already synced)
        # before acknowledging.  A sync failure escapes as a 500 and the
        # client must not treat the ingest as durable.
        durable = self.index.store is not None
        if durable:
            self.index.store.sync()
        self.warm([name])
        elapsed_ms = (time.monotonic() - started) * 1000.0
        self.metrics.observe("serve.latency_ms", elapsed_ms, endpoint="ingest")
        self._count("ingest", "ok")
        return ServiceResponse(
            200,
            {
                "ok": True,
                "result": {
                    "name": name,
                    "tables": len(self.index),
                    "durable": durable,
                    "update": report.as_dict(),
                },
                "elapsed_ms": elapsed_ms,
            },
        )

    # -- probes and introspection -------------------------------------------

    def healthz(self) -> ServiceResponse:
        """Liveness: the loop is turning.  Always 200 while the process
        can answer at all — draining servers are alive, just not ready."""
        return ServiceResponse(
            200,
            {
                "status": "ok",
                "uptime_seconds": self.uptime_seconds(),
                "draining": self.draining,
                "recovering": self.recovering,
            },
        )

    def readyz(self) -> ServiceResponse:
        """Readiness: accepting new work.  503 while draining so load
        balancers stop routing here before the listener closes, and 503
        while the store's write-ahead log is still replaying at startup —
        the listener is up, but the index is not yet queryable."""
        if self.draining:
            return ServiceResponse(
                503, {"status": "draining", "ready": False}
            )
        if self.recovering:
            return ServiceResponse(
                503, {"status": "recovering", "ready": False}
            )
        return ServiceResponse(
            200,
            {
                "status": "ok",
                "ready": True,
                "tables": len(self.index),
                "pressure": self.admission.pressure(),
            },
        )

    def metrics_body(self) -> ServiceResponse:
        """The obs export schema, same shape as ``--metrics`` artifacts."""
        return ServiceResponse(200, self.metrics.snapshot().as_dict())

    def stats(self) -> ServiceResponse:
        return ServiceResponse(
            200,
            {
                "uptime_seconds": self.uptime_seconds(),
                "tables": len(self.index) if self.index is not None else 0,
                "draining": self.draining,
                "recovering": self.recovering,
                "admission": self.admission.snapshot(),
                "supervisor": self.supervisor.snapshot(),
                "cache": (
                    self.index.cache.stats()
                    if self.index is not None
                    else None
                ),
            },
        )


__all__ = [
    "RequestError",
    "ServiceResponse",
    "SimilarityService",
    "decode_table",
]
