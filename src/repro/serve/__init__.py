"""Similarity-as-a-service: a resilient asyncio front-end for the index.

``repro.serve`` turns the library into a long-running server without
adding a single dependency: stdlib ``asyncio`` sockets, hand-rolled
HTTP/1.1 JSON framing, and the fork-worker isolation machinery the batch
engine already trusts.  The robustness story (see ``docs/SERVE.md``):

- **deadlines** — every request gets a server-clamped budget; the
  cooperative in-worker deadline answers with the anytime ladder's best
  partial result, and a hard wall kill backstops wedged workers;
- **admission control** — a bounded queue; beyond it requests shed with
  429 + ``Retry-After`` instead of queueing without bound;
- **load shedding** — queue pressure walks responses down the anytime
  ladder (full → no-exact → signature-only), reported per response;
- **supervision** — dead workers are classified (oom/killed/crashed),
  reported as structured errors, and their slots restart under capped
  exponential backoff;
- **graceful drain** — SIGTERM/SIGINT stops accepting, finishes or
  cancels in-flight work within a deadline, flushes the metrics
  artifact, and exits 0 with no orphan processes.
"""

from .admission import AdmissionController, AdmissionDecision, DegradationLevel
from .app import Server, serve
from .config import DEFAULT_PORT, ServerConfig
from .http import HttpError, Request, read_request, render_response
from .service import RequestError, ServiceResponse, SimilarityService, decode_table
from .supervisor import WorkerSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DEFAULT_PORT",
    "DegradationLevel",
    "HttpError",
    "Request",
    "RequestError",
    "Server",
    "ServerConfig",
    "ServiceResponse",
    "SimilarityService",
    "WorkerSupervisor",
    "decode_table",
    "read_request",
    "render_response",
    "serve",
]
