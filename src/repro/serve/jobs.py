"""Worker-side job functions for the similarity server.

Each endpoint's CPU-bound work is one module-level function here, executed
in a fork worker by the :class:`~repro.serve.supervisor.WorkerSupervisor`.
Fork semantics are what make the warm-index story work: the child gets a
copy-on-write snapshot of the parent's :class:`~repro.index.SimilarityIndex`
and its :class:`~repro.parallel.SignatureCache`, so cache entries warmed in
the parent (at ingest time) are hits in every worker, while nothing the
worker computes can corrupt the parent's state — a crashed search dies
alone.

Every job takes an explicit :class:`~repro.serve.admission.DegradationLevel`
and walks only as much of the anytime ladder as that level allows; the
payload reports which rung actually answered.  Jobs return JSON-ready
dicts (never rich objects) so the result pickle crossing the worker pipe
stays small and version-stable, wrapped as ``{"payload": ..., "metrics":
...}`` — the same snapshot-shipping scheme as
:func:`~repro.parallel.engine.compare_pair_job`, so ``/metrics`` aggregates
worker-side counters exactly.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from ..core.instance import Instance, prepare_for_comparison
from ..index.refine import RefinePolicy, refine_dedup, refine_search
from ..index.sketch import InstanceSketch, comparable, similarity_upper_bound
from ..mappings.constraints import MatchOptions
from ..obs.metrics import MetricsRegistry, set_metrics
from ..runtime.anytime import DEFAULT_ANYTIME_NODE_BUDGET, compare_anytime
from ..runtime.budget import Budget
from ..runtime.isolation import register_job
from .admission import DegradationLevel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..index.core import SimilarityIndex


def _collected(fn: Callable[[], dict]) -> dict:
    """Run ``fn`` under a scoped metrics registry; ship the snapshot."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        payload = fn()
    finally:
        set_metrics(previous)
    return {"payload": payload, "metrics": registry.snapshot().as_dict()}


def _result_payload(result, rung: str, score_is_exact: bool) -> dict:
    return {
        "similarity": result.similarity,
        "algorithm": result.algorithm,
        "outcome": result.outcome.value,
        "rung": rung,
        "score_is_exact": score_is_exact,
        "matched_tuples": len(result.match.m),
        "elapsed_seconds": result.elapsed_seconds,
    }


def compare_job(
    left: Instance,
    right: Instance,
    level: DegradationLevel = DegradationLevel.FULL,
    deadline: float | None = None,
    options: MatchOptions | None = None,
    node_budget: int = DEFAULT_ANYTIME_NODE_BUDGET,
) -> dict:
    """One pairwise comparison, capped at ``level`` on the anytime ladder."""

    def run() -> dict:
        # Imported lazily for the same circularity reason as the anytime
        # ladder itself: algorithms/ imports the runtime primitives.
        from ..algorithms.assignment import assignment_compare
        from ..algorithms.refine import refine_match
        from ..algorithms.signature import signature_compare

        if level is DegradationLevel.FULL:
            result = compare_anytime(
                left,
                right,
                deadline=deadline,
                options=options,
                node_budget=node_budget,
            )
            return _result_payload(
                result,
                rung=result.stats.get("anytime_rung", "signature"),
                score_is_exact=bool(
                    result.stats.get("anytime_score_is_exact", False)
                ),
            )

        match_options = options if options is not None else MatchOptions.general()
        prepared_left, prepared_right = prepare_for_comparison(left, right)
        control = Budget(deadline=deadline).start()
        best = signature_compare(
            prepared_left, prepared_right, options=match_options
        )
        rung = "signature"
        if level is DegradationLevel.NO_EXACT and control.check():
            refined = refine_match(best, control=control)
            if refined.similarity > best.similarity:
                best, rung = refined, "refine"
        if level is DegradationLevel.NO_EXACT and control.check():
            # The polynomial rungs of the anytime ladder, minus the exact
            # search this level forbids: globally-optimal 1:1 completion,
            # seeded with the current best, degrading back to it under the
            # shared deadline.
            assigned = assignment_compare(
                prepared_left,
                prepared_right,
                options=match_options,
                control=control,
                seed_result=best,
            )
            if assigned.similarity > best.similarity:
                best, rung = assigned, "assignment"
        return _result_payload(best, rung=rung, score_is_exact=False)

    return _collected(run)


def _bound_only_hits(
    index: "SimilarityIndex", query: Instance, top_k: int
) -> tuple[list[dict], dict]:
    """Rank the LSH shortlist by the admissible bound — no refinement.

    The floor of the search ladder: sketch build + bucket lookups + one
    bound evaluation per candidate, never a full ``signature_compare``.
    Scores are *upper bounds*, flagged as such in the payload.
    """
    query_sketch = InstanceSketch.build(query, index.params)
    shortlist = sorted(index.lsh.candidates(query_sketch.minhash))
    bounds: dict[str, float] = {}
    incomparable = 0
    for name in shortlist:
        candidate = index.sketch(name)
        if not comparable(query_sketch, candidate):
            incomparable += 1
            continue
        bounds[name] = similarity_upper_bound(
            query_sketch, candidate, index.options
        )
    order = sorted(bounds, key=lambda name: (-bounds[name], name))[:top_k]
    hits = [
        {"name": name, "similarity": bounds[name], "matched_tuples": None}
        for name in order
    ]
    report = {
        "lsh_candidates": len(shortlist),
        "bound_evaluations": len(bounds),
        "incomparable": incomparable,
        "refined": 0,
    }
    return hits, report


def search_job(
    index: "SimilarityIndex",
    query: Instance,
    top_k: int = 5,
    level: DegradationLevel = DegradationLevel.FULL,
    deadline: float | None = None,
) -> dict:
    """Top-k search at the requested degradation level.

    ``FULL`` is brute-force-identical exact top-k; ``NO_EXACT`` refines
    only the LSH shortlist (sub-linear, may miss an out-of-bucket match);
    ``SIGNATURE_ONLY`` ranks the shortlist by the admissible bound alone.
    """

    def run() -> dict:
        started = time.perf_counter()
        if level is DegradationLevel.SIGNATURE_ONLY:
            hits, report = _bound_only_hits(index, query, top_k)
        else:
            policy = RefinePolicy(deadline=deadline)
            ranked, refine_report = refine_search(
                index,
                query,
                top_k,
                policy=policy,
                exact=level is DegradationLevel.FULL,
            )
            hits = [
                {
                    "name": hit.name,
                    "similarity": hit.similarity,
                    "matched_tuples": hit.matched_tuples,
                }
                for hit in ranked
            ]
            report = refine_report.as_dict()
        return {
            "hits": hits,
            "approximate": level is not DegradationLevel.FULL,
            "report": report,
            "elapsed_seconds": time.perf_counter() - started,
        }

    return _collected(run)


def dedup_job(
    index: "SimilarityIndex",
    threshold: float = 0.8,
    level: DegradationLevel = DegradationLevel.FULL,
    deadline: float | None = None,
) -> dict:
    """Near-duplicate pairs at the requested degradation level."""

    def run() -> dict:
        started = time.perf_counter()
        if level is DegradationLevel.SIGNATURE_ONLY:
            pairs = []
            evaluations = 0
            for first, second in index.lsh.candidate_pairs():
                first_sketch, second_sketch = (
                    index.sketch(first), index.sketch(second)
                )
                if not comparable(first_sketch, second_sketch):
                    continue
                evaluations += 1
                bound = similarity_upper_bound(
                    first_sketch, second_sketch, index.options
                )
                if bound >= threshold:
                    pairs.append(
                        {
                            "first": first,
                            "second": second,
                            "similarity": bound,
                        }
                    )
            report = {"bound_evaluations": evaluations, "refined": 0}
        else:
            policy = RefinePolicy(deadline=deadline)
            found, refine_report = refine_dedup(
                index,
                threshold,
                policy=policy,
                exact=level is DegradationLevel.FULL,
            )
            pairs = [
                {
                    "first": pair.first,
                    "second": pair.second,
                    "similarity": pair.similarity,
                }
                for pair in found
            ]
            report = refine_report.as_dict()
        return {
            "pairs": pairs,
            "approximate": level is not DegradationLevel.FULL,
            "report": report,
            "elapsed_seconds": time.perf_counter() - started,
        }

    return _collected(run)


# By-name registration keeps the serving jobs submittable across process
# boundaries, the same contract every exponential entry point honours.
register_job("serve_compare", "repro.serve.jobs:compare_job")
register_job("serve_search", "repro.serve.jobs:search_job")
register_job("serve_dedup", "repro.serve.jobs:dedup_job")

__all__ = ["compare_job", "dedup_job", "search_job"]
