"""Data versioning substrate: version operations, diff baseline, reports."""

from .delta import (
    CellChange,
    TupleUpdate,
    VersionDelta,
    delta_from_match,
    diff_versions,
)
from .difftool import DiffReport, diff_instances, serialize_rows
from .history import (
    VersionHistory,
    pairwise_similarities,
    reconstruct_history,
)
from .operations import (
    align_schemas,
    removed_and_shuffled_version,
    removed_columns_version,
    removed_rows_version,
    shuffled_version,
)
from .report import VersionComparison, compare_versions

__all__ = [
    "CellChange",
    "DiffReport",
    "TupleUpdate",
    "VersionDelta",
    "VersionComparison",
    "VersionHistory",
    "align_schemas",
    "compare_versions",
    "delta_from_match",
    "diff_instances",
    "diff_versions",
    "removed_and_shuffled_version",
    "removed_columns_version",
    "pairwise_similarities",
    "reconstruct_history",
    "removed_rows_version",
    "serialize_rows",
    "shuffled_version",
]
