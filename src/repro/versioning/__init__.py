"""``repro.versioning`` — dataset-version comparison on top of the measure.

The paper's motivating application: treat two snapshots of one dataset as
incomplete instances and derive both a similarity *score* and a
structured *difference report*.  The package collects:

* version transforms for experiments (:mod:`~repro.versioning.operations`:
  row/column removal, shuffling, schema alignment);
* the diff baseline and structured deltas (:mod:`~repro.versioning.delta`:
  :func:`diff_versions`, :class:`VersionDelta`, cell-level change
  classification, and :func:`batch_from_diff` — the bridge from a diff
  report to a replayable :class:`repro.delta.DeltaBatch` for warm
  ``compare_delta`` / live index maintenance);
* row-serialization diffing as a comparison point
  (:mod:`~repro.versioning.difftool`);
* version-history reconstruction from pairwise similarities
  (:mod:`~repro.versioning.history`);
* human-readable comparison reports (:mod:`~repro.versioning.report`).
"""

from .delta import (
    CellChange,
    TupleUpdate,
    VersionDelta,
    batch_from_diff,
    delta_from_match,
    diff_versions,
)
from .difftool import DiffReport, diff_instances, serialize_rows
from .history import (
    VersionHistory,
    pairwise_similarities,
    reconstruct_history,
)
from .operations import (
    align_schemas,
    removed_and_shuffled_version,
    removed_columns_version,
    removed_rows_version,
    shuffled_version,
)
from .report import VersionComparison, compare_versions

__all__ = [
    "CellChange",
    "DiffReport",
    "TupleUpdate",
    "VersionComparison",
    "VersionDelta",
    "VersionHistory",
    "align_schemas",
    "batch_from_diff",
    "compare_versions",
    "delta_from_match",
    "diff_instances",
    "diff_versions",
    "pairwise_similarities",
    "reconstruct_history",
    "removed_and_shuffled_version",
    "removed_columns_version",
    "removed_rows_version",
    "serialize_rows",
    "shuffled_version",
]
