"""Structured deltas between dataset versions.

The paper's introduction motivates not just a score but a *list of
differences*: "both updated versions of I contain new tuples (t9 and t16),
two Null values in I (t2) have been updated to 'VLDB End.' (t17), etc."
This module derives exactly that report from an instance match:

* **inserted** — tuples of the new version with no counterpart;
* **deleted** — tuples of the old version with no counterpart;
* **identical** — matched pairs equal cell-by-cell (up to null renaming);
* **updated** — matched pairs with at least one substantive cell change,
  each change classified as ``filled`` (null → constant), ``redacted``
  (constant → null), or ``renamed-null`` (null → null, bookkeeping only).

Complete matches cannot relate tuples with differing constants, so a
constant-to-different-constant edit surfaces as a delete + insert — the
honest reading absent keys.  Use the partial-matching algorithm upstream if
value-level updates should pair up instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.errors import DeltaError
from ..core.instance import Instance, prepare_for_comparison
from ..core.tuples import Tuple
from ..core.values import LabeledNull, Value, is_null
from ..delta.batch import DeltaBatch, TupleOp
from ..mappings.constraints import MatchOptions
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import signature_compare
from .operations import align_schemas

CHANGE_FILLED = "filled"
CHANGE_REDACTED = "redacted"
CHANGE_RENAMED_NULL = "renamed-null"


@dataclass(frozen=True)
class CellChange:
    """One cell-level difference within a matched tuple pair."""

    attribute: str
    old_value: Value
    new_value: Value
    kind: str

    def render(self) -> str:
        """Human-readable one-liner, e.g. ``Org: N2 -> 'VLDB End.' (filled)``."""
        def show(value: Value) -> str:
            return value.label if is_null(value) else repr(value)

        return (
            f"{self.attribute}: {show(self.old_value)} -> "
            f"{show(self.new_value)} ({self.kind})"
        )


@dataclass(frozen=True)
class TupleUpdate:
    """A matched pair with its cell changes."""

    old: Tuple
    new: Tuple
    changes: tuple[CellChange, ...]

    def substantive_changes(self) -> tuple[CellChange, ...]:
        """Changes other than pure null renamings."""
        return tuple(
            c for c in self.changes if c.kind != CHANGE_RENAMED_NULL
        )


@dataclass
class VersionDelta:
    """The full difference report between two versions.

    Attributes
    ----------
    similarity:
        The instance similarity underlying the report.
    inserted, deleted:
        Tuples present only in the new / old version.
    identical:
        Matched pairs with no cell change (up to null renaming).
    updated:
        Matched pairs with at least one substantive change.
    """

    similarity: float
    inserted: list[Tuple] = field(default_factory=list)
    deleted: list[Tuple] = field(default_factory=list)
    identical: list[tuple[Tuple, Tuple]] = field(default_factory=list)
    updated: list[TupleUpdate] = field(default_factory=list)
    result: ComparisonResult | None = field(default=None, repr=False)

    def summary(self) -> dict[str, int]:
        """Counts by category."""
        return {
            "identical": len(self.identical),
            "updated": len(self.updated),
            "inserted": len(self.inserted),
            "deleted": len(self.deleted),
        }

    def render(self, max_rows: int = 15) -> str:
        """Multi-line report in the style of the paper's intro example."""
        lines = [
            f"similarity {self.similarity:.4f} — "
            f"{len(self.identical)} unchanged, {len(self.updated)} updated, "
            f"{len(self.inserted)} inserted, {len(self.deleted)} deleted"
        ]
        for update in self.updated[:max_rows]:
            lines.append(f"updated {update.old.tuple_id} -> {update.new.tuple_id}:")
            for change in update.substantive_changes():
                lines.append(f"    {change.render()}")
        if len(self.updated) > max_rows:
            lines.append(f"    ... and {len(self.updated) - max_rows} more updates")
        for label, tuples in (("inserted", self.inserted),
                              ("deleted", self.deleted)):
            for t in tuples[:max_rows]:
                lines.append(f"{label} {t}")
            if len(tuples) > max_rows:
                lines.append(
                    f"    ... and {len(tuples) - max_rows} more {label}"
                )
        return "\n".join(lines)


def _classify(old_value: Value, new_value: Value) -> CellChange | None:
    """The change in one cell of a matched pair, or ``None`` if unchanged."""
    old_null, new_null = is_null(old_value), is_null(new_value)
    if not old_null and not new_null:
        # A complete match forces equal constants.
        return None
    if old_null and new_null:
        # Null renamings carry no information change.
        return None
    if old_null:
        return CellChange(
            attribute="", old_value=old_value, new_value=new_value,
            kind=CHANGE_FILLED,
        )
    return CellChange(
        attribute="", old_value=old_value, new_value=new_value,
        kind=CHANGE_REDACTED,
    )


def delta_from_match(result: ComparisonResult) -> VersionDelta:
    """Derive a :class:`VersionDelta` from an existing comparison result."""
    match = result.match
    delta = VersionDelta(similarity=result.similarity, result=result)
    for old, new in sorted(
        match.pairs(), key=lambda p: (p[0].tuple_id, p[1].tuple_id)
    ):
        changes = []
        for attribute, old_value in old.items():
            new_value = new[attribute]
            change = _classify(old_value, new_value)
            if change is not None:
                changes.append(
                    CellChange(
                        attribute=attribute,
                        old_value=old_value,
                        new_value=new_value,
                        kind=change.kind,
                    )
                )
            elif is_null(old_value) and is_null(new_value) and (
                old_value != new_value
            ):
                changes.append(
                    CellChange(
                        attribute=attribute,
                        old_value=old_value,
                        new_value=new_value,
                        kind=CHANGE_RENAMED_NULL,
                    )
                )
        update = TupleUpdate(old=old, new=new, changes=tuple(changes))
        if update.substantive_changes():
            delta.updated.append(update)
        else:
            delta.identical.append((old, new))
    delta.deleted = sorted(
        match.unmatched_left(), key=lambda t: t.tuple_id
    )
    delta.inserted = sorted(
        match.unmatched_right(), key=lambda t: t.tuple_id
    )
    return delta


def diff_versions(
    original: Instance,
    modified: Instance,
    options: MatchOptions | None = None,
) -> VersionDelta:
    """Compare two versions and return the structured difference report.

    Uses the versioning constraint preset (fully injective, partial) and
    bridges schema drift with null padding when needed.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> old = Instance.from_rows("R", ("A", "B"),
    ...     [("x", LabeledNull("N1")), ("gone", "g")], name="old")
    >>> new = Instance.from_rows("R", ("A", "B"),
    ...     [("x", "filled-in"), ("added", "a")], name="new")
    >>> delta = diff_versions(old, new)
    >>> delta.summary()
    {'identical': 0, 'updated': 1, 'inserted': 1, 'deleted': 1}
    """
    if options is None:
        options = MatchOptions.versioning()
    left, right = original, modified
    if not left.schema.is_compatible_with(right.schema):
        left, right = align_schemas(left, right)
    left, right = prepare_for_comparison(left, right)
    result = signature_compare(left, right, options)
    return delta_from_match(result)


def batch_from_diff(
    delta: VersionDelta,
    original: Instance,
    *,
    id_prefix: str = "d",
    null_prefix: str = "ND",
) -> DeltaBatch:
    """Express a :class:`VersionDelta` as a delta batch against ``original``.

    :func:`diff_versions` compares *prepared* copies of the two versions
    (tuple ids renumbered ``l1…``/``r1…``, nulls renamed), so its report
    cannot be applied to the caller's instances directly.  This maps it
    back: deleted tuples become ``delete`` ops on the matching original
    tuples, updates patch cells in place (null→null cells keep the
    original null — pure renamings carry no information), and inserted
    tuples get fresh ids and null labels that avoid collisions with
    ``original``.  Shared surrogate nulls of the new version stay shared.

    Applying the returned batch to ``original`` reproduces the new
    version up to null renaming — the similarity-relevant content is
    identical — which is exactly the shape
    :meth:`repro.Comparator.compare_delta` and
    :meth:`repro.index.SimilarityIndex.update_delta` consume.
    """
    result = delta.result
    if result is None:
        raise DeltaError(
            "this VersionDelta carries no ComparisonResult; only deltas "
            "produced by diff_versions/delta_from_match can be converted"
        )
    prepared = result.match.left
    if not original.schema.is_compatible_with(prepared.schema):
        raise DeltaError(
            "original's schema does not match the diffed old version "
            "(schema drift between versions is not expressible as a "
            "tuple-level DeltaBatch)"
        )
    # prepare_for_comparison renumbers ids in per-relation iteration
    # order, so zipping recovers the prepared-id -> original-tuple map.
    originals: dict[str, Tuple] = {}
    for name in original.schema.relation_names():
        original_relation = original.relation(name)
        prepared_relation = prepared.relation(name)
        if len(original_relation) != len(prepared_relation):
            raise DeltaError(
                f"relation {name!r}: original has {len(original_relation)} "
                f"tuples but the diffed old version has "
                f"{len(prepared_relation)} — wrong 'original' instance?"
            )
        for original_tuple, prepared_tuple in zip(
            original_relation, prepared_relation
        ):
            for o_value, p_value in zip(
                original_tuple.values, prepared_tuple.values
            ):
                if is_null(o_value) != is_null(p_value) or (
                    not is_null(o_value) and o_value != p_value
                ):
                    raise DeltaError(
                        f"tuple {original_tuple.tuple_id!r} does not match "
                        f"the diffed old version's {prepared_tuple.tuple_id!r}"
                        " — wrong 'original' instance?"
                    )
            originals[prepared_tuple.tuple_id] = original_tuple

    used_labels = {null.label for null in original.vars()}
    used_ids = set(original.ids())
    null_map: dict[LabeledNull, LabeledNull] = {}
    label_counter = itertools.count(1)
    id_counter = itertools.count(1)

    def fresh_null(prepared_null: LabeledNull) -> LabeledNull:
        mapped = null_map.get(prepared_null)
        if mapped is None:
            label = f"{null_prefix}{next(label_counter)}"
            while label in used_labels:
                label = f"{null_prefix}{next(label_counter)}"
            used_labels.add(label)
            mapped = LabeledNull(label)
            null_map[prepared_null] = mapped
        return mapped

    def fresh_id() -> str:
        tuple_id = f"{id_prefix}{next(id_counter)}"
        while tuple_id in used_ids:
            tuple_id = f"{id_prefix}{next(id_counter)}"
        used_ids.add(tuple_id)
        return tuple_id

    ops: list[TupleOp] = []
    for old_tuple in delta.deleted:
        original_tuple = originals[old_tuple.tuple_id]
        ops.append(
            TupleOp(
                "delete",
                original_tuple.relation.name,
                original_tuple.tuple_id,
                old_values=original_tuple.values,
            )
        )
    for update in delta.updated:
        original_tuple = originals[update.old.tuple_id]
        values = []
        for o_value, new_value in zip(
            original_tuple.values, update.new.values
        ):
            if is_null(new_value):
                if is_null(o_value):
                    values.append(o_value)  # pure renaming: keep ours
                else:
                    values.append(fresh_null(new_value))  # redacted
            else:
                values.append(new_value)  # filled or unchanged constant
        if tuple(values) == original_tuple.values:
            continue
        ops.append(
            TupleOp(
                "update",
                original_tuple.relation.name,
                original_tuple.tuple_id,
                values=tuple(values),
                old_values=original_tuple.values,
            )
        )
    for new_tuple in delta.inserted:
        ops.append(
            TupleOp(
                "insert",
                new_tuple.relation.name,
                fresh_id(),
                values=tuple(
                    fresh_null(value) if is_null(value) else value
                    for value in new_tuple.values
                ),
            )
        )
    return DeltaBatch(ops)
