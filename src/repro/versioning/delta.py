"""Structured deltas between dataset versions.

The paper's introduction motivates not just a score but a *list of
differences*: "both updated versions of I contain new tuples (t9 and t16),
two Null values in I (t2) have been updated to 'VLDB End.' (t17), etc."
This module derives exactly that report from an instance match:

* **inserted** — tuples of the new version with no counterpart;
* **deleted** — tuples of the old version with no counterpart;
* **identical** — matched pairs equal cell-by-cell (up to null renaming);
* **updated** — matched pairs with at least one substantive cell change,
  each change classified as ``filled`` (null → constant), ``redacted``
  (constant → null), or ``renamed-null`` (null → null, bookkeeping only).

Complete matches cannot relate tuples with differing constants, so a
constant-to-different-constant edit surfaces as a delete + insert — the
honest reading absent keys.  Use the partial-matching algorithm upstream if
value-level updates should pair up instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.instance import Instance, prepare_for_comparison
from ..core.tuples import Tuple
from ..core.values import Value, is_null
from ..mappings.constraints import MatchOptions
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import signature_compare
from .operations import align_schemas

CHANGE_FILLED = "filled"
CHANGE_REDACTED = "redacted"
CHANGE_RENAMED_NULL = "renamed-null"


@dataclass(frozen=True)
class CellChange:
    """One cell-level difference within a matched tuple pair."""

    attribute: str
    old_value: Value
    new_value: Value
    kind: str

    def render(self) -> str:
        """Human-readable one-liner, e.g. ``Org: N2 -> 'VLDB End.' (filled)``."""
        def show(value: Value) -> str:
            return value.label if is_null(value) else repr(value)

        return (
            f"{self.attribute}: {show(self.old_value)} -> "
            f"{show(self.new_value)} ({self.kind})"
        )


@dataclass(frozen=True)
class TupleUpdate:
    """A matched pair with its cell changes."""

    old: Tuple
    new: Tuple
    changes: tuple[CellChange, ...]

    def substantive_changes(self) -> tuple[CellChange, ...]:
        """Changes other than pure null renamings."""
        return tuple(
            c for c in self.changes if c.kind != CHANGE_RENAMED_NULL
        )


@dataclass
class VersionDelta:
    """The full difference report between two versions.

    Attributes
    ----------
    similarity:
        The instance similarity underlying the report.
    inserted, deleted:
        Tuples present only in the new / old version.
    identical:
        Matched pairs with no cell change (up to null renaming).
    updated:
        Matched pairs with at least one substantive change.
    """

    similarity: float
    inserted: list[Tuple] = field(default_factory=list)
    deleted: list[Tuple] = field(default_factory=list)
    identical: list[tuple[Tuple, Tuple]] = field(default_factory=list)
    updated: list[TupleUpdate] = field(default_factory=list)
    result: ComparisonResult | None = field(default=None, repr=False)

    def summary(self) -> dict[str, int]:
        """Counts by category."""
        return {
            "identical": len(self.identical),
            "updated": len(self.updated),
            "inserted": len(self.inserted),
            "deleted": len(self.deleted),
        }

    def render(self, max_rows: int = 15) -> str:
        """Multi-line report in the style of the paper's intro example."""
        lines = [
            f"similarity {self.similarity:.4f} — "
            f"{len(self.identical)} unchanged, {len(self.updated)} updated, "
            f"{len(self.inserted)} inserted, {len(self.deleted)} deleted"
        ]
        for update in self.updated[:max_rows]:
            lines.append(f"updated {update.old.tuple_id} -> {update.new.tuple_id}:")
            for change in update.substantive_changes():
                lines.append(f"    {change.render()}")
        if len(self.updated) > max_rows:
            lines.append(f"    ... and {len(self.updated) - max_rows} more updates")
        for label, tuples in (("inserted", self.inserted),
                              ("deleted", self.deleted)):
            for t in tuples[:max_rows]:
                lines.append(f"{label} {t}")
            if len(tuples) > max_rows:
                lines.append(
                    f"    ... and {len(tuples) - max_rows} more {label}"
                )
        return "\n".join(lines)


def _classify(old_value: Value, new_value: Value) -> CellChange | None:
    """The change in one cell of a matched pair, or ``None`` if unchanged."""
    old_null, new_null = is_null(old_value), is_null(new_value)
    if not old_null and not new_null:
        # A complete match forces equal constants.
        return None
    if old_null and new_null:
        # Null renamings carry no information change.
        return None
    if old_null:
        return CellChange(
            attribute="", old_value=old_value, new_value=new_value,
            kind=CHANGE_FILLED,
        )
    return CellChange(
        attribute="", old_value=old_value, new_value=new_value,
        kind=CHANGE_REDACTED,
    )


def delta_from_match(result: ComparisonResult) -> VersionDelta:
    """Derive a :class:`VersionDelta` from an existing comparison result."""
    match = result.match
    delta = VersionDelta(similarity=result.similarity, result=result)
    for old, new in sorted(
        match.pairs(), key=lambda p: (p[0].tuple_id, p[1].tuple_id)
    ):
        changes = []
        for attribute, old_value in old.items():
            new_value = new[attribute]
            change = _classify(old_value, new_value)
            if change is not None:
                changes.append(
                    CellChange(
                        attribute=attribute,
                        old_value=old_value,
                        new_value=new_value,
                        kind=change.kind,
                    )
                )
            elif is_null(old_value) and is_null(new_value) and (
                old_value != new_value
            ):
                changes.append(
                    CellChange(
                        attribute=attribute,
                        old_value=old_value,
                        new_value=new_value,
                        kind=CHANGE_RENAMED_NULL,
                    )
                )
        update = TupleUpdate(old=old, new=new, changes=tuple(changes))
        if update.substantive_changes():
            delta.updated.append(update)
        else:
            delta.identical.append((old, new))
    delta.deleted = sorted(
        match.unmatched_left(), key=lambda t: t.tuple_id
    )
    delta.inserted = sorted(
        match.unmatched_right(), key=lambda t: t.tuple_id
    )
    return delta


def diff_versions(
    original: Instance,
    modified: Instance,
    options: MatchOptions | None = None,
) -> VersionDelta:
    """Compare two versions and return the structured difference report.

    Uses the versioning constraint preset (fully injective, partial) and
    bridges schema drift with null padding when needed.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> old = Instance.from_rows("R", ("A", "B"),
    ...     [("x", LabeledNull("N1")), ("gone", "g")], name="old")
    >>> new = Instance.from_rows("R", ("A", "B"),
    ...     [("x", "filled-in"), ("added", "a")], name="new")
    >>> delta = diff_versions(old, new)
    >>> delta.summary()
    {'identical': 0, 'updated': 1, 'inserted': 1, 'deleted': 1}
    """
    if options is None:
        options = MatchOptions.versioning()
    left, right = original, modified
    if not left.schema.is_compatible_with(right.schema):
        left, right = align_schemas(left, right)
    left, right = prepare_for_comparison(left, right)
    result = signature_compare(left, right, options)
    return delta_from_match(result)
