"""A ``diff``-style line-based baseline (paper Sec. 7.2, Table 7).

The paper compares the signature algorithm against the command-line ``diff``
tool run over serialized datasets.  ``diff`` computes a longest common
subsequence of *lines*: it matches tuples only when their serialized rows are
identical **and** appear in a compatible order.  This module reimplements
that semantics with :class:`difflib.SequenceMatcher` over the rows'
serialized forms, reporting the same #M / #LNM / #RNM counts the experiment
tabulates — and thereby reproducing ``diff``'s failure modes on shuffled
rows, dropped columns, and labeled nulls.
"""

from __future__ import annotations

from dataclasses import dataclass
from difflib import SequenceMatcher

from ..core.instance import Instance
from ..core.values import is_null


@dataclass(frozen=True)
class DiffReport:
    """Line-diff counts between two serialized instances.

    Attributes
    ----------
    matched:
        Lines common to both files per the LCS (``#M``).
    left_non_matching:
        Lines only in the left file (``#LNM`` — deletions).
    right_non_matching:
        Lines only in the right file (``#RNM`` — insertions).
    """

    matched: int
    left_non_matching: int
    right_non_matching: int


def serialize_rows(instance: Instance) -> list[str]:
    """Render each tuple as the comma-joined line ``diff`` would see.

    Labeled nulls serialize as their labels — exactly why ``diff`` cannot
    recognize that two differently-labeled nulls may denote the same
    unknown value.
    """
    lines = []
    for relation in instance.relations():
        for t in relation:
            cells = [
                v.label if is_null(v) else str(v) for v in t.values
            ]
            lines.append(",".join(cells))
    return lines


def diff_instances(left: Instance, right: Instance) -> DiffReport:
    """Run the LCS line diff over two instances.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> a = Instance.from_rows("R", ("A",), [("x",), ("y",)], id_prefix="l")
    >>> b = Instance.from_rows("R", ("A",), [("y",), ("x",)], id_prefix="r")
    >>> diff_instances(a, b).matched   # order matters for diff
    1
    """
    left_lines = serialize_rows(left)
    right_lines = serialize_rows(right)
    matcher = SequenceMatcher(a=left_lines, b=right_lines, autojunk=False)
    matched = sum(block.size for block in matcher.get_matching_blocks())
    return DiffReport(
        matched=matched,
        left_non_matching=len(left_lines) - matched,
        right_non_matching=len(right_lines) - matched,
    )
