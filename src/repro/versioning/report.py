"""Version comparison reports (Table 7 rows).

For an (original, modified) dataset pair, compare with both the ``diff``
baseline and the signature algorithm and tabulate #M / #LNM / #RNM for each.
Schema differences (the C variant) are bridged with the Sec. 4.3 padding
before the signature comparison; ``diff`` sees the raw serializations, as the
command-line tool would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance, prepare_for_comparison
from ..mappings.constraints import MatchOptions
from ..mappings.explain import match_statistics
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import signature_compare
from .difftool import DiffReport, diff_instances
from .operations import align_schemas


@dataclass
class VersionComparison:
    """One Table 7 row: both tools' match counts plus the similarity score.

    Attributes
    ----------
    original_tuples, modified_tuples:
        ``#TO`` and ``#TM``.
    diff:
        The ``diff`` baseline counts.
    signature_matched, signature_left_non_matching,
    signature_right_non_matching:
        The signature algorithm's counts.
    similarity:
        The signature similarity score (extra information Table 7 does not
        print but the text discusses).
    """

    original_tuples: int
    modified_tuples: int
    diff: DiffReport
    signature_matched: int
    signature_left_non_matching: int
    signature_right_non_matching: int
    similarity: float
    result: ComparisonResult

    def as_row(self) -> dict[str, int | float]:
        """Flatten to the Table 7 column layout."""
        return {
            "TO": self.original_tuples,
            "TM": self.modified_tuples,
            "diff_M": self.diff.matched,
            "diff_LNM": self.diff.left_non_matching,
            "diff_RNM": self.diff.right_non_matching,
            "sig_M": self.signature_matched,
            "sig_LNM": self.signature_left_non_matching,
            "sig_RNM": self.signature_right_non_matching,
            "sig_score": self.similarity,
        }


def compare_versions(
    original: Instance,
    modified: Instance,
    options: MatchOptions | None = None,
) -> VersionComparison:
    """Compare dataset versions with ``diff`` and the signature algorithm.

    Data-versioning semantics: tuples are unique entities, so the tuple
    mapping is fully injective and need not be total
    (:meth:`MatchOptions.versioning`).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> a = Instance.from_rows("R", ("A",), [("x",), ("y",)], id_prefix="l")
    >>> b = Instance.from_rows("R", ("A",), [("y",), ("x",)], id_prefix="r")
    >>> comparison = compare_versions(a, b)
    >>> comparison.signature_matched, comparison.diff.matched
    (2, 1)
    """
    if options is None:
        options = MatchOptions.versioning()

    diff_report = diff_instances(original, modified)

    left, right = original, modified
    if not left.schema.is_compatible_with(right.schema):
        left, right = align_schemas(left, right)
    left, right = prepare_for_comparison(left, right)
    result = signature_compare(left, right, options=options)
    stats = match_statistics(result.match)

    return VersionComparison(
        original_tuples=len(original),
        modified_tuples=len(modified),
        diff=diff_report,
        signature_matched=stats.matched_pairs,
        signature_left_non_matching=stats.left_non_matching,
        signature_right_non_matching=stats.right_non_matching,
        similarity=result.similarity,
        result=result,
    )
