"""Version-history reconstruction from pairwise similarities.

The paper's introduction motivates using instance similarity to "show users
how instances evolve over time by determining the order in which versions
were created".  This module implements that application: given a set of
dataset versions (no timestamps, no keys, possibly incomplete), reconstruct
a plausible evolution structure.

Model: versions form a tree rooted at a designated (or inferred) origin;
each edit step changes relatively little, so an evolution edge should
connect highly similar versions.  A maximum-similarity spanning tree over
the pairwise similarity graph is therefore the maximum-likelihood history
under independent edits — the classic phylogeny heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.instance import Instance, prepare_for_comparison
from ..mappings.constraints import MatchOptions
from ..algorithms.signature import signature_compare


@dataclass
class VersionHistory:
    """A reconstructed evolution tree over named versions.

    Attributes
    ----------
    root:
        The origin version's name.
    parent:
        Parent pointers: ``parent[name]`` is the version ``name`` was most
        plausibly derived from (absent for the root).
    similarities:
        The pairwise similarity matrix used, keyed by frozenset pairs.
    """

    root: str
    parent: dict[str, str]
    similarities: dict[frozenset, float] = field(default_factory=dict)

    def children(self, name: str) -> list[str]:
        """Versions derived directly from ``name``."""
        return sorted(
            child for child, parent in self.parent.items() if parent == name
        )

    def edges(self) -> list[tuple[str, str, float]]:
        """``(parent, child, similarity)`` triples of the tree."""
        return sorted(
            (
                parent,
                child,
                self.similarities[frozenset((parent, child))],
            )
            for child, parent in self.parent.items()
        )

    def chain_from_root(self) -> list[str] | None:
        """The linear order when the tree is a path from the root, else None."""
        order = [self.root]
        current = self.root
        while True:
            children = self.children(current)
            if not children:
                return order
            if len(children) > 1:
                return None
            current = children[0]
            order.append(current)

    def render(self) -> str:
        """ASCII rendering of the evolution tree."""
        lines: list[str] = []

        def walk(name: str, depth: int) -> None:
            prefix = "  " * depth + ("└─ " if depth else "")
            if depth:
                similarity = self.similarities[
                    frozenset((self.parent[name], name))
                ]
                lines.append(f"{prefix}{name}  (sim {similarity:.3f})")
            else:
                lines.append(f"{prefix}{name}")
            for child in self.children(name):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def pairwise_similarities(
    versions: dict[str, Instance],
    options: MatchOptions | None = None,
) -> dict[frozenset, float]:
    """Similarity for every unordered pair of versions."""
    if options is None:
        options = MatchOptions.versioning()
    names = sorted(versions)
    similarities: dict[frozenset, float] = {}
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            left, right = prepare_for_comparison(
                versions[first], versions[second]
            )
            result = signature_compare(left, right, options)
            similarities[frozenset((first, second))] = result.similarity
    return similarities


def reconstruct_history(
    versions: dict[str, Instance],
    root: str | None = None,
    options: MatchOptions | None = None,
) -> VersionHistory:
    """Reconstruct an evolution tree over ``versions``.

    Builds the maximum-similarity spanning tree (Prim's algorithm) over the
    pairwise similarity graph, rooted at ``root``.  When ``root`` is not
    given, the version with the highest total similarity to all others is
    used (a centroid heuristic for the origin).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> v1 = Instance.from_rows("R", ("A",), [("x",), ("y",)], name="v1")
    >>> v2 = Instance.from_rows("R", ("A",), [("x",), ("y",), ("z",)], name="v2")
    >>> v3 = Instance.from_rows("R", ("A",), [("x",), ("y",), ("z",), ("w",)],
    ...                         name="v3")
    >>> history = reconstruct_history({"v1": v1, "v2": v2, "v3": v3},
    ...                               root="v1")
    >>> history.chain_from_root()
    ['v1', 'v2', 'v3']
    """
    if not versions:
        raise ValueError("reconstruct_history needs at least one version")
    if len(versions) == 1:
        (only,) = versions
        return VersionHistory(root=only, parent={})
    similarities = pairwise_similarities(versions, options=options)

    names = sorted(versions)
    if root is None:
        def total(name: str) -> float:
            return sum(
                similarities[frozenset((name, other))]
                for other in names
                if other != name
            )

        root = max(names, key=total)
    elif root not in versions:
        raise ValueError(f"unknown root version {root!r}")

    # Prim's algorithm for the maximum spanning tree.
    in_tree = {root}
    parent: dict[str, str] = {}
    while len(in_tree) < len(names):
        best: tuple[float, str, str] | None = None
        for inside in sorted(in_tree):
            for outside in names:
                if outside in in_tree:
                    continue
                weight = similarities[frozenset((inside, outside))]
                candidate = (weight, inside, outside)
                if best is None or candidate > best:
                    best = candidate
        assert best is not None
        _, inside, outside = best
        parent[outside] = inside
        in_tree.add(outside)

    return VersionHistory(root=root, parent=parent, similarities=similarities)
