"""Dataset-version generation operations (paper Sec. 7.2, Table 7).

Given an instance, Table 7 evaluates four derived versions:

* **S** — shuffle the rows;
* **R** — remove some rows;
* **RS** — remove some rows, then shuffle;
* **C** — remove some columns.

Each operation returns the new version; the schema-changing **C** operation
pairs with :func:`align_schemas` (the Sec. 4.3 padding trick) before
comparison.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.values import NullFactory
from ..utils.rand import make_rng


def shuffled_version(
    instance: Instance, seed: int = 0, name: str | None = None
) -> Instance:
    """The S variant: same tuples, shuffled order, fresh ids."""
    rng = make_rng(seed)
    shuffled = instance.shuffled(rng, name=name or f"{instance.name}-S")
    return shuffled.with_fresh_ids("v", name=shuffled.name)


def removed_rows_version(
    instance: Instance,
    remove_fraction: float = 0.175,
    seed: int = 0,
    name: str | None = None,
) -> Instance:
    """The R variant: remove ``remove_fraction`` of the rows (order kept).

    The default fraction matches the paper's Iris 120 → 99 reduction.
    """
    rng = make_rng(seed)
    doomed: set[str] = set()
    for relation in instance.relations():
        ids = sorted(relation.ids())
        k = round(len(ids) * remove_fraction)
        doomed.update(rng.sample(ids, min(k, len(ids))))
    kept = instance.filtered(
        lambda t: t.tuple_id not in doomed,
        name=name or f"{instance.name}-R",
    )
    return kept.with_fresh_ids("v", name=kept.name)


def removed_and_shuffled_version(
    instance: Instance,
    remove_fraction: float = 0.175,
    seed: int = 0,
    name: str | None = None,
) -> Instance:
    """The RS variant: remove rows, then shuffle."""
    removed = removed_rows_version(
        instance, remove_fraction=remove_fraction, seed=seed
    )
    rng = make_rng(seed + 1)
    shuffled = removed.shuffled(rng, name=name or f"{instance.name}-RS")
    return shuffled.with_fresh_ids("v", name=shuffled.name)


def removed_columns_version(
    instance: Instance,
    drop_count: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> Instance:
    """The C variant: drop ``drop_count`` columns of each relation.

    Requires a single-relation instance (all Table 7 datasets are).
    """
    rng = make_rng(seed)
    names = instance.schema.relation_names()
    if len(names) != 1:
        raise ValueError("removed_columns_version expects a single relation")
    relation_name = names[0]
    attributes = list(instance.schema.relation(relation_name).attributes)
    if drop_count >= len(attributes):
        raise ValueError("cannot drop all columns")
    dropped = set(rng.sample(attributes, drop_count))
    kept_attrs = [a for a in attributes if a not in dropped]
    projected = instance.projected(
        relation_name, kept_attrs, name=name or f"{instance.name}-C"
    )
    return projected.with_fresh_ids("v", name=projected.name)


def align_schemas(
    left: Instance, right: Instance
) -> tuple[Instance, Instance]:
    """Pad both instances to the union of their schemas (Sec. 4.3).

    An attribute missing on one side is added there with a distinct fresh
    null per row, so tuples can still be matched without constraints on the
    missing attribute.  Returns padded copies (inputs untouched).
    """
    fresh = NullFactory(prefix="Pad")
    from ..core.schema import RelationSchema, Schema

    left_names = set(left.schema.relation_names())
    right_names = set(right.schema.relation_names())
    if left_names != right_names:
        raise ValueError(
            "align_schemas requires the same relation names on both sides"
        )
    merged_relations = []
    for name in left.schema.relation_names():
        left_attrs = left.schema.relation(name).attributes
        right_attrs = right.schema.relation(name).attributes
        extra = [a for a in right_attrs if a not in left_attrs]
        merged_relations.append(RelationSchema(name, left_attrs + tuple(extra)))
    merged = Schema(merged_relations)
    return left.padded_to(merged, fresh=fresh), right.padded_to(
        merged, fresh=fresh
    )
