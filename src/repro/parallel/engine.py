"""Batch comparison: many pairs, one cache, optional worker parallelism.

:func:`compare_many` is the engine behind ``Comparator.compare_many``, the
``repro compare-many`` CLI command, and the experiment grids.  It

1. prepares each distinct instance **once** through the content-addressed
   :class:`~repro.parallel.cache.SignatureCache` (canonical per-side ids
   and null labels, plus the Alg. 4 signature index);
2. runs every pair through :func:`~repro.algorithms.dispatch.run_algorithm`
   — in-process when ``jobs=1``, or fanned over fork workers via
   :class:`~repro.parallel.pool.WorkerPool` when ``jobs>1``;
3. applies the fault-tolerance policy per pair: worker deaths retry with
   backoff, exhausted retries degrade to the in-parent signature floor with
   the failure :class:`~repro.runtime.Outcome` and attempt log attached —
   one poisoned pair never takes down the batch.

Serial and parallel runs execute the *same* job function on the *same*
prepared instances, so ``jobs=1`` and ``jobs=N`` produce identical scores,
matches, and outcomes (CI enforces this).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from ..algorithms.dispatch import run_algorithm
from ..algorithms.options import Algorithm, AlgorithmOptions, resolve_algorithm
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import SignatureIndex, signature_compare
from ..core.instance import Instance
from ..mappings.constraints import MatchOptions
from ..obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    active_metrics,
    set_metrics,
)
from ..obs.trace import span
from ..runtime.faults import FaultPlan
from ..runtime.isolation import STATUS_OUTCOMES, WorkerLimits
from ..runtime.outcome import Outcome
from ..runtime.retry import RetryPolicy
from .cache import SignatureCache
from .pool import PoolTask, TaskOutcome, WorkerPool


def compare_pair_job(
    left: Instance,
    right: Instance,
    spec: AlgorithmOptions,
    options: MatchOptions | None = None,
    deadline: float | None = None,
    refine: bool = False,
    left_index: SignatureIndex | None = None,
    right_index: SignatureIndex | None = None,
    collect: bool = False,
) -> ComparisonResult:
    """Compare one *prepared* pair; the unit of work shipped to workers.

    Registered in :data:`~repro.runtime.isolation.JOB_REGISTRY` as
    ``"compare_pair"``.  ``left``/``right`` must already be prepared (the
    cache's canonical per-side form, or ``prepare_for_comparison`` output);
    the indexes, when given, must have been built from exactly these
    instances.

    With ``collect=True`` the comparison runs under a fresh per-pair
    :class:`~repro.obs.MetricsRegistry` and its snapshot is attached to
    ``result.stats["metrics"]``.  This is how metrics cross the worker
    pipe: the snapshot rides the result through the existing connection
    protocol and the parent merges it.  ``compare_many`` uses the same
    path for serial (``jobs=1``) runs, so serial and parallel batches
    aggregate identically — the differential property CI gates on.
    """
    if not collect:
        return run_algorithm(
            left,
            right,
            spec,
            options=options,
            deadline=deadline,
            refine=refine,
            left_index=left_index,
            right_index=right_index,
        )
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        result = run_algorithm(
            left,
            right,
            spec,
            options=options,
            deadline=deadline,
            refine=refine,
            left_index=left_index,
            right_index=right_index,
        )
    finally:
        set_metrics(previous)
    result.stats["metrics"] = registry.snapshot().as_dict()
    return result


def _degraded_result(
    outcome: TaskOutcome,
    left: Instance,
    right: Instance,
    spec: AlgorithmOptions,
    options: MatchOptions | None,
    left_index: SignatureIndex | None,
    right_index: SignatureIndex | None,
) -> ComparisonResult:
    """In-parent signature floor for a pair whose workers kept dying."""
    floor = signature_compare(
        left,
        right,
        options=options,
        left_index=left_index,
        right_index=right_index,
    )
    failure = STATUS_OUTCOMES.get(outcome.status, Outcome.CRASHED)
    return ComparisonResult(
        similarity=floor.similarity,
        match=floor.match,
        options=floor.options,
        algorithm=f"{spec.algorithm.value}→signature(degraded)",
        outcome=failure,
        stats={
            **floor.stats,
            "degraded_from": spec.algorithm.value,
            "fault_log": [record.as_dict() for record in outcome.records],
            "outcome": failure.value,
        },
        elapsed_seconds=floor.elapsed_seconds,
    )


def compare_many(
    pairs: Iterable[tuple[Instance, Instance]],
    algorithm: Algorithm | AlgorithmOptions | str | None = None,
    options: MatchOptions | None = None,
    *,
    jobs: int = 1,
    cache: SignatureCache | None = None,
    deadline: float | None = None,
    refine: bool = False,
    limits: WorkerLimits | None = None,
    retry: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    fault_pairs: Sequence[int] | None = None,
    out: Callable[[str], None] | None = None,
) -> list[ComparisonResult]:
    """Compare every ``(left, right)`` pair; results in input order.

    Parameters
    ----------
    pairs:
        The comparisons to run.  Instances are fingerprinted by content, so
        repeating an instance across pairs (the common grid shape) prepares
        and indexes it only once.
    algorithm:
        Anything :func:`repro.compare` accepts: an :class:`Algorithm`
        member, a typed options instance, ``None`` (signature defaults), or
        a legacy string (deprecated).
    options:
        Match constraints and λ, shared by every pair.
    jobs:
        ``1`` runs every pair in-process (the serial baseline — no worker
        overhead); ``N > 1`` fans pairs over at most ``N`` fork workers.
    cache:
        A :class:`SignatureCache` to (re)use across calls; one is created
        per call when omitted.  Its running stats are attached to every
        result under ``stats["cache"]``.
    deadline:
        Per-pair cooperative deadline in seconds (signature/exact/anytime).
    limits:
        Hard per-worker caps (memory / wall clock / recursion) — applied
        only when ``jobs > 1`` or a ``fault_plan`` forces the worker path.
    retry / fault_plan / fault_pairs:
        Worker-path fault tolerance: ``retry`` is the backoff schedule
        (default :class:`RetryPolicy`), ``fault_plan`` a deterministic
        fault-injection plan, ``fault_pairs`` the pair indexes the plan
        applies to (all pairs when ``None``).  A pair whose retries
        exhaust degrades to the signature floor with the failure outcome
        and attempt log in its result — other pairs are unaffected.
    out:
        Optional sink for human-readable retry/progress lines.

    Examples
    --------
    >>> import repro
    >>> a = repro.Instance.from_rows("R", ("A",), [("x",)])
    >>> b = repro.Instance.from_rows("R", ("A",), [("x",)])
    >>> [result] = repro.compare_many([(a, b)], repro.Algorithm.EXACT)
    >>> result.similarity
    1.0
    """
    pair_list = list(pairs)
    spec = resolve_algorithm(algorithm)
    cache = cache if cache is not None else SignatureCache()
    use_workers = jobs > 1 or fault_plan is not None or limits is not None
    # When the parent has metrics enabled, per-pair counters are collected
    # in a scoped registry inside compare_pair_job and shipped back as a
    # snapshot on result.stats["metrics"] — the identical code path in
    # serial and worker mode, which is what makes jobs=1 and jobs=N
    # aggregate to byte-identical counter totals.
    parent_registry = active_metrics()
    collecting = parent_registry is not None

    with span(
        "parallel.compare_many",
        pairs=len(pair_list),
        jobs=jobs,
        algorithm=spec.algorithm.value,
    ) as batch_span:
        prepared: list[tuple] = []
        for left, right in pair_list:
            left_entry = cache.get(left, "left")
            right_entry = cache.get(right, "right")
            prepared.append((left_entry, right_entry))

        results: list[ComparisonResult] = []
        if not use_workers:
            for left_entry, right_entry in prepared:
                results.append(
                    compare_pair_job(
                        left_entry.instance,
                        right_entry.instance,
                        spec,
                        options,
                        deadline=deadline,
                        refine=refine,
                        left_index=left_entry.index,
                        right_index=right_entry.index,
                        collect=collecting,
                    )
                )
        else:
            fault_set = (
                None if fault_pairs is None else {int(i) for i in fault_pairs}
            )
            tasks = []
            for i, (left_entry, right_entry) in enumerate(prepared):
                plan = fault_plan
                if (
                    plan is not None
                    and fault_set is not None
                    and i not in fault_set
                ):
                    plan = None
                tasks.append(
                    PoolTask(
                        index=i,
                        args=(
                            left_entry.instance,
                            right_entry.instance,
                            spec,
                            options,
                        ),
                        kwargs={
                            "deadline": deadline,
                            "refine": refine,
                            "left_index": left_entry.index,
                            "right_index": right_entry.index,
                            "collect": collecting,
                        },
                        plan=plan,
                    )
                )
            pool = WorkerPool(
                jobs=jobs,
                limits=limits,
                retry=retry,
                validate=lambda value: isinstance(value, ComparisonResult),
                out=out,
            )
            started = time.perf_counter()
            outcomes = pool.run(compare_pair_job, tasks)
            elapsed = time.perf_counter() - started
            if out is not None:
                out(
                    f"compared {len(tasks)} pairs with jobs={jobs} "
                    f"in {elapsed:.2f}s"
                )
            for outcome, (left_entry, right_entry) in zip(outcomes, prepared):
                if outcome.status == "ok":
                    result = outcome.payload
                    if len(outcome.records) > 1:
                        result.stats["fault_log"] = [
                            record.as_dict() for record in outcome.records
                        ]
                else:
                    result = _degraded_result(
                        outcome,
                        left_entry.instance,
                        right_entry.instance,
                        spec,
                        options,
                        left_entry.index,
                        right_entry.index,
                    )
                results.append(result)

        if collecting:
            # Fold per-pair snapshots into the parent registry — shipped
            # over the worker pipe in parallel mode, attached in-process in
            # serial mode; either way the merge is exact integer addition.
            for result in results:
                shipped = result.stats.get("metrics")
                if shipped is not None:
                    parent_registry.merge_snapshot(
                        MetricsSnapshot.from_dict(shipped)
                    )
            parent_registry.counter("parallel.batch.runs")
            parent_registry.counter("parallel.batch.pairs", len(pair_list))

        cache_stats = cache.stats()
        for result in results:
            result.stats["cache"] = dict(cache_stats)
        batch_span.set(
            degraded=sum(
                1 for r in results if "degraded_from" in r.stats
            ),
        )
    return results


__all__ = ["compare_many", "compare_pair_job"]
