"""Parallel batch-comparison engine with content-addressed caching.

The experiment grids of the paper (Tables 2–3, 7) compare hundreds of
instance pairs drawn from a much smaller set of distinct instances.  This
package makes that shape cheap and robust:

* :mod:`~repro.parallel.cache` — fingerprint instances by content, prepare
  each one once per side, and reuse its Alg. 4 signature index across every
  pair it participates in (LRU, hit/miss stats in ``result.stats``);
* :mod:`~repro.parallel.pool` — a single-threaded scheduler fanning pairs
  over fork workers with the PR 2 guarantees intact: hard memory caps, wall
  kills, classified deaths, deterministic fault injection, and per-pair
  retry/degrade;
* :mod:`~repro.parallel.engine` — :func:`compare_many`, the batch front
  door used by :class:`repro.Comparator`, the ``repro compare-many`` CLI,
  and the experiment harness.

``jobs=1`` runs the identical job function in-process on the identical
prepared instances, so serial and parallel batches agree bit-for-bit on
scores, matches, and outcomes.

See ``docs/PARALLEL.md`` for the design.
"""

from .cache import PreparedSide, SignatureCache, instance_fingerprint
from .engine import compare_many, compare_pair_job
from .pool import PoolTask, TaskOutcome, WorkerPool

__all__ = [
    "PoolTask",
    "PreparedSide",
    "SignatureCache",
    "TaskOutcome",
    "WorkerPool",
    "compare_many",
    "compare_pair_job",
    "instance_fingerprint",
]
