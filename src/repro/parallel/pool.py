"""A fork-worker pool scheduler for the batch-comparison engine.

``multiprocessing.Pool`` and ``concurrent.futures`` bring their own worker
lifecycle, which would bypass everything PR 2 built: per-task memory caps,
wall kills, exit-code classification, deterministic fault injection, and
the retry decision table.  This pool instead schedules **one fork worker
per task attempt** through the primitives of
:mod:`repro.runtime.isolation` (:func:`start_worker` / :func:`reap_worker`)
so every attempt gets exactly the semantics of ``run_isolated`` — and
every death comes back as a classified ``(status, payload)`` pair, never
as a dead batch.

The scheduler is single-threaded: it multiplexes worker pipes with
``multiprocessing.connection.wait`` (a worker's report *and* its death
both make the pipe readable), enforces per-worker wall deadlines, and
implements retry backoff by re-enqueueing failed tasks with a
``not_before`` timestamp instead of sleeping.  Forking from a thread-free
parent also sidesteps the classic fork-with-threads hazards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable

from ..obs.metrics import counter_inc
from ..runtime.faults import GARBAGE_RESULT, FaultPlan
from ..runtime.isolation import WorkerHandle, WorkerLimits, reap_worker, start_worker
from ..runtime.retry import (
    DEFAULT_DECISIONS,
    AttemptRecord,
    Decision,
    FailureClass,
    RetryPolicy,
    _STATUS_CLASSES,
)


@dataclass
class PoolTask:
    """One unit of work: a job invocation plus its retry bookkeeping."""

    index: int
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    plan: FaultPlan | None = None
    attempt: int = 0  # attempts started so far
    not_before: float = 0.0  # monotonic time before which not to launch
    records: list[AttemptRecord] = field(default_factory=list)
    started_at: float = 0.0


@dataclass
class TaskOutcome:
    """Final status of one task after all attempts."""

    index: int
    status: str  # "ok" | "oom" | "killed" | "crashed" | "garbage"
    payload: Any
    records: list[AttemptRecord]


class WorkerPool:
    """Run many job invocations over at most ``jobs`` concurrent workers.

    Parameters
    ----------
    jobs:
        Maximum concurrent worker subprocesses (>= 1).
    limits:
        Per-attempt resource caps (memory cap, wall timeout, recursion
        guard) — the same :class:`WorkerLimits` semantics as
        :func:`~repro.runtime.isolation.run_isolated`.
    retry:
        Backoff schedule; a task's attempt ``n`` failure re-enqueues it no
        earlier than ``delay(n)`` from now, without blocking other tasks.
    decisions:
        Per-failure-class overrides of the default decision table.
    validate:
        Optional predicate on an ``ok`` payload; a falsy validation is
        treated as a transient ``garbage`` failure (this also catches the
        injected :data:`GARBAGE_RESULT`).
    out:
        Optional sink for human-readable retry log lines.
    """

    def __init__(
        self,
        jobs: int,
        limits: WorkerLimits | None = None,
        retry: RetryPolicy | None = None,
        decisions: dict[FailureClass, Decision] | None = None,
        validate: Callable[[Any], bool] | None = None,
        out: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.limits = limits or WorkerLimits()
        self.retry = retry or RetryPolicy()
        self.decisions = dict(DEFAULT_DECISIONS)
        if decisions:
            self.decisions.update(decisions)
        self.validate = validate
        self.out = out or (lambda _line: None)

    def run(self, job: str | Callable, tasks: list[PoolTask]) -> list[TaskOutcome]:
        """Run every task to a final status; returns outcomes in task order.

        ``fatal`` payloads (a :class:`~repro.core.errors.ReproError` raised
        by the job) and worker interrupts propagate as exceptions after all
        running workers have been terminated — a bad input fails the batch
        fast rather than burning the remaining grid.
        """
        pending: list[PoolTask] = sorted(tasks, key=lambda t: t.index)
        running: dict[Any, tuple[WorkerHandle, PoolTask]] = {}
        outcomes: dict[int, TaskOutcome] = {}
        total_attempts = 1 + self.retry.retries

        try:
            while pending or running:
                now = time.monotonic()
                # Launch ready tasks up to the concurrency cap.
                launchable = [
                    t for t in pending if t.not_before <= now
                ][: max(0, self.jobs - len(running))]
                for task in launchable:
                    pending.remove(task)
                    handle = self._launch(job, task)
                    running[handle.receiver] = (handle, task)
                if not running:
                    # Only delayed retries remain: sleep until the earliest.
                    wake = min(t.not_before for t in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                timeout = self._wait_timeout(pending, running)
                ready = connection_wait(list(running), timeout=timeout)

                finished: list[tuple[WorkerHandle, PoolTask, bool]] = []
                for receiver in ready:
                    handle, task = running.pop(receiver)
                    finished.append((handle, task, False))
                now = time.monotonic()
                for receiver in [
                    r
                    for r, (h, _) in running.items()
                    if h.deadline is not None and h.deadline <= now
                ]:
                    handle, task = running.pop(receiver)
                    finished.append((handle, task, True))

                for handle, task, timed_out in finished:
                    self._finish(
                        handle, task, timed_out, pending, outcomes,
                        total_attempts,
                    )
        except BaseException:
            self._terminate_all(running)
            raise
        return [outcomes[task.index] for task in sorted(tasks, key=lambda t: t.index)]

    # -- internals ----------------------------------------------------------

    def _launch(self, job: str | Callable, task: PoolTask) -> WorkerHandle:
        task.attempt += 1
        task.started_at = time.perf_counter()
        # Parent-side scheduling counter.  Everything under parallel.pool.*
        # exists only on the worker path, so the serial-vs-parallel
        # differential tests exclude this namespace.
        counter_inc("parallel.pool.attempts")
        if task.plan is not None:
            # Attempt pinning: the plan object is snapshotted into the
            # child at fork time, so setting the attribute here targets
            # exactly this attempt.
            task.plan.attempt = task.attempt
        return start_worker(
            job,
            args=task.args,
            kwargs=task.kwargs,
            limits=self.limits,
            plan=task.plan,
        )

    def _wait_timeout(
        self,
        pending: list[PoolTask],
        running: dict[Any, tuple[WorkerHandle, PoolTask]],
    ) -> float | None:
        """How long ``connection.wait`` may block without missing an event."""
        now = time.monotonic()
        bounds: list[float] = []
        for handle, _ in running.values():
            if handle.deadline is not None:
                bounds.append(max(0.0, handle.deadline - now))
        if pending and len(running) < self.jobs:
            wake = min(t.not_before for t in pending)
            bounds.append(max(0.0, wake - now))
        return min(bounds) if bounds else None

    def _finish(
        self,
        handle: WorkerHandle,
        task: PoolTask,
        timed_out: bool,
        pending: list[PoolTask],
        outcomes: dict[int, TaskOutcome],
        total_attempts: int,
    ) -> None:
        status, payload = reap_worker(handle, timed_out=timed_out)
        elapsed = time.perf_counter() - task.started_at

        if status == "interrupt":
            raise KeyboardInterrupt(
                f"task #{task.index} interrupted in worker ({payload})"
            )
        if status == "fatal":
            task.records.append(AttemptRecord(
                task.attempt, "fatal", FailureClass.FATAL.value,
                f"{type(payload).__name__}: {payload}",
                elapsed_seconds=elapsed,
            ))
            raise payload
        if status == "ok":
            garbage = payload is GARBAGE_RESULT or (
                self.validate is not None and not self.validate(payload)
            )
            if not garbage:
                task.records.append(AttemptRecord(
                    task.attempt, "ok", elapsed_seconds=elapsed
                ))
                outcomes[task.index] = TaskOutcome(
                    task.index, "ok", payload, task.records
                )
                counter_inc("parallel.pool.tasks", 1, status="ok")
                return
            status, payload = "garbage", "result failed validation"

        failure_class = _STATUS_CLASSES[status]
        decision = self.decisions[failure_class]
        record = AttemptRecord(
            task.attempt, status, failure_class.value, str(payload),
            elapsed_seconds=elapsed,
        )
        task.records.append(record)

        if decision.retry and task.attempt < total_attempts:
            # Salted by task index: every task gets its own deterministic
            # jitter schedule, decorrelated from its neighbours and immune
            # to completion-order nondeterminism (a shared RNG would hand
            # out delays in whatever order workers happened to die).
            record.backoff_seconds = self.retry.delay_for(
                task.attempt, salt=task.index
            )
            task.not_before = time.monotonic() + record.backoff_seconds
            self.out(
                f"[pair {task.index}] attempt {task.attempt}/{total_attempts} "
                f"{status} ({payload}); backing off "
                f"{record.backoff_seconds:.3f}s"
            )
            counter_inc("parallel.pool.retries", 1, status=status)
            pending.append(task)
            return
        outcomes[task.index] = TaskOutcome(
            task.index, status, payload, task.records
        )
        counter_inc("parallel.pool.tasks", 1, status=status)

    def _terminate_all(
        self, running: dict[Any, tuple[WorkerHandle, PoolTask]]
    ) -> None:
        for handle, _ in running.values():
            try:
                handle.receiver.close()
            except Exception:  # pragma: no cover
                pass
            handle.process.terminate()
        for handle, _ in running.values():
            handle.process.join(1.0)
            if handle.process.is_alive():  # pragma: no cover
                handle.process.kill()
                handle.process.join(1.0)
        running.clear()


__all__ = ["PoolTask", "TaskOutcome", "WorkerPool"]
