"""Content-addressed signature cache for the batch-comparison engine.

Comparing *many* pairs drawn from a smaller set of instances — the Tables
2–3 grids compare every perturbed version against one base instance —
recomputes the same per-instance work for every pair: re-identification,
null disjoining, and the Alg. 4 signature index.  This module caches that
work **per instance and side**:

* :func:`instance_fingerprint` — a SHA-256 over the instance's schema and
  tuple contents with canonical null numbering, so two content-identical
  instances (regardless of tuple ids or null label spelling) share a cache
  entry;
* :class:`PreparedSide` — the canonical prepared copy
  (:func:`~repro.core.instance.prepare_side`) together with its
  :class:`~repro.algorithms.signature.SignatureIndex`;
* :class:`SignatureCache` — an LRU over ``(fingerprint, side)`` with
  hit/miss/eviction counters, surfaced by the engine in
  ``ComparisonResult.stats``.

Why caching survives pairing: a prepared ``"left"`` side uses tuple ids
``l1, l2, ...`` and null labels ``NL1, NL2, ...``; a prepared ``"right"``
side uses ``r*`` / ``NR*``.  Any left entry is therefore disjoint from any
right entry *by construction* — no per-pair renaming is needed, the cached
tuple objects are the ones the algorithms see, and the signature index
(which references those exact tuples) stays valid for every pair the
instance participates in.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from ..algorithms.signature import SignatureIndex
from ..core.columnar import ColumnarInstance
from ..core.instance import Instance, prepare_side
from ..core.values import is_null
from ..obs.metrics import counter_inc


def instance_fingerprint(instance: Instance) -> str:
    """Content hash of an instance, stable across runs and processes.

    Covers the instance name, schema (relation names and attribute order),
    and every tuple's values in insertion order.  Labeled nulls are encoded
    by first-occurrence index rather than label, so isomorphic renamings of
    nulls — which represent the same incomplete database — fingerprint
    identically.  Tuple ids are deliberately excluded: the prepared form
    re-identifies tuples positionally, so ids cannot affect any result
    computed from a cache entry.

    Examples
    --------
    >>> from repro.core.values import LabeledNull
    >>> a = Instance.from_rows("R", ("A",), [(LabeledNull("N1"),)])
    >>> b = Instance.from_rows("R", ("A",), [(LabeledNull("X9"),)])
    >>> instance_fingerprint(a) == instance_fingerprint(b)
    True
    """
    view = instance._columnar
    if view is not None and not view.overrides:
        return _fingerprint_columnar(view)
    digest = hashlib.sha256()
    digest.update(repr(instance.name).encode())
    null_numbers: dict[str, int] = {}
    for relation in instance.relations():
        digest.update(b"\x00R")
        digest.update(repr(relation.schema.name).encode())
        digest.update(repr(relation.schema.attributes).encode())
        for t in relation:
            digest.update(b"\x00T")
            for value in t.values:
                if is_null(value):
                    number = null_numbers.setdefault(
                        value.label, len(null_numbers)
                    )
                    encoded = f"\x00N{number}"
                else:
                    encoded = f"\x00C{type(value).__name__}:{value!r}"
                digest.update(encoded.encode())
    return digest.hexdigest()


def _fingerprint_columnar(view: ColumnarInstance) -> str:
    """Fast lane of :func:`instance_fingerprint` over a cached columnar view.

    Byte-identical to the object path: the per-cell ``repr`` is computed
    once per distinct constant code, and the columnar null codes are
    assigned in the exact first-occurrence scan order the object path
    numbers nulls in, so ``-code - 1`` *is* the canonical null number.
    Only exact views qualify (``overrides`` would change a cell's repr).
    """
    digest = hashlib.sha256()
    digest.update(repr(view.name).encode())
    decode = view.decode
    const_bytes: dict[int, bytes] = {}
    for crel in view.relations.values():
        digest.update(b"\x00R")
        digest.update(repr(crel.schema.name).encode())
        digest.update(repr(crel.schema.attributes).encode())
        columns = crel.columns
        arity = crel.schema.arity
        for row in range(crel.n_rows):
            digest.update(b"\x00T")
            for position in range(arity):
                code = columns[position][row]
                if code < 0:
                    digest.update(f"\x00N{-code - 1}".encode())
                else:
                    encoded = const_bytes.get(code)
                    if encoded is None:
                        value = decode[code]
                        encoded = (
                            f"\x00C{type(value).__name__}:{value!r}".encode()
                        )
                        const_bytes[code] = encoded
                    digest.update(encoded)
    return digest.hexdigest()


@dataclass(frozen=True)
class PreparedSide:
    """One instance prepared for one side of comparisons, plus its index.

    ``columnar`` is the prepared instance's cached columnar view (built at
    cache-fill time), so every consumer of a cache entry — sketching,
    fingerprinting, compatibility — gets the array form for free.
    """

    fingerprint: str
    side: str  # "left" | "right"
    instance: Instance
    index: SignatureIndex
    columnar: ColumnarInstance


class SignatureCache:
    """LRU cache of :class:`PreparedSide` entries keyed by content.

    Parameters
    ----------
    max_entries:
        Entry cap; least-recently-used entries are evicted beyond it.
        Each entry holds a full prepared copy of an instance plus its
        signature index, so size the cap to the working set of distinct
        instances, not the number of pairs.

    Examples
    --------
    >>> cache = SignatureCache(max_entries=8)
    >>> I = Instance.from_rows("R", ("A",), [("x",)])
    >>> first = cache.get(I, "left")
    >>> again = cache.get(I, "left")
    >>> first is again, cache.hits, cache.misses
    (True, 1, 1)
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str], PreparedSide] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, instance: Instance, side: str) -> PreparedSide:
        """The prepared form of ``instance`` for ``side`` (built on miss)."""
        fingerprint = instance_fingerprint(instance)
        key = (fingerprint, side)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            counter_inc("parallel.cache.hits")
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        counter_inc("parallel.cache.misses")
        prepared = prepare_side(instance, side)
        entry = PreparedSide(
            fingerprint=fingerprint,
            side=side,
            instance=prepared,
            index=SignatureIndex.build(prepared),
            columnar=prepared.columns(),
        )
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            counter_inc("parallel.cache.evictions")
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters as a JSON-ready dictionary."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


__all__ = ["PreparedSide", "SignatureCache", "instance_fingerprint"]
