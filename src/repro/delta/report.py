"""The :class:`UpdateReport` returned by index mutations.

:meth:`SimilarityIndex.update <repro.index.SimilarityIndex.update>` (and
``add``) used to answer "what changed?" with silence — callers saw a new
sketch and nothing else.  The report makes the maintenance work
observable: which tables and sketch columns were touched, whether the
min-hash was patched slot-by-slot or rebuilt, and how many LSH buckets
the instance entered or left.  ``repro index add --json`` surfaces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..index.sketch import InstanceSketch

MODE_ADDED = "added"
MODE_INCREMENTAL = "incremental"
MODE_REBUILT = "rebuilt"


@dataclass(frozen=True)
class UpdateReport:
    """What one index ``add``/``update`` actually did.

    Attributes
    ----------
    table:
        The table name that was added or updated.
    mode:
        ``"added"`` (first insertion), ``"incremental"`` (delta-maintained
        repair), or ``"rebuilt"`` (full re-sketch fallback — e.g. a schema
        change or a maintainer that was never seeded).
    tuples_inserted, tuples_deleted, tuples_updated:
        Delta batch shape that drove the maintenance (all zero for
        ``"added"``/``"rebuilt"``).
    relations_touched:
        Relation names whose sketch state changed.
    sketch_columns_repaired, sketch_columns_rebuilt:
        Columns patched in place vs. columns recomputed from scratch.
    minhash_slots_patched, minhash_slots_rebuilt:
        Signature slots updated by min-merge vs. recomputed because their
        minimum token was retired.
    lsh_buckets_entered, lsh_buckets_left:
        Band buckets the table joined / abandoned when rebucketed.
    sketch:
        The table's new sketch (what ``update`` historically returned).
    """

    table: str
    mode: str
    tuples_inserted: int = 0
    tuples_deleted: int = 0
    tuples_updated: int = 0
    relations_touched: tuple[str, ...] = ()
    sketch_columns_repaired: int = 0
    sketch_columns_rebuilt: int = 0
    minhash_slots_patched: int = 0
    minhash_slots_rebuilt: int = 0
    lsh_buckets_entered: int = 0
    lsh_buckets_left: int = 0
    sketch: InstanceSketch | None = field(
        default=None, repr=False, compare=False
    )

    def as_dict(self) -> dict:
        """JSON-ready encoding (sketch omitted; it has its own codec)."""
        return {
            "table": self.table,
            "mode": self.mode,
            "tuples": {
                "inserted": self.tuples_inserted,
                "deleted": self.tuples_deleted,
                "updated": self.tuples_updated,
            },
            "relations_touched": list(self.relations_touched),
            "sketch_columns": {
                "repaired": self.sketch_columns_repaired,
                "rebuilt": self.sketch_columns_rebuilt,
            },
            "minhash_slots": {
                "patched": self.minhash_slots_patched,
                "rebuilt": self.minhash_slots_rebuilt,
            },
            "lsh_buckets": {
                "entered": self.lsh_buckets_entered,
                "left": self.lsh_buckets_left,
            },
        }


__all__ = ["UpdateReport", "MODE_ADDED", "MODE_INCREMENTAL", "MODE_REBUILT"]
