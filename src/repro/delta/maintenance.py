"""Incremental sketch and min-hash maintenance under a delta batch.

:class:`SketchMaintainer` keeps the live state behind an
:class:`~repro.index.sketch.InstanceSketch` — per-column constant
multisets, null counts, and the count-tracked token multiset feeding the
min-hash signature — and repairs it in ``O(|batch|)`` instead of
re-sketching the whole instance:

* **inserts** admit their cell tokens and min-merge the new token hashes
  into the signature slot-by-slot;
* **deletes** retire tokens from the per-base occurrence counters.  A
  retired hash only *dirties* a signature slot when its permuted value
  equals the slot's current minimum; only dirty slots are recomputed,
  over the surviving distinct hash set kept in ``_hash_counts`` — never
  by rescanning the instance;
* **updates** retire the old cells and admit the new ones (cells whose
  value is unchanged are skipped).

The maintained sketch is byte-identical to a cold
:meth:`InstanceSketch.build <repro.index.sketch.InstanceSketch.build>`
of the post-batch instance (property-tested in
``tests/delta/test_maintenance.py``): column state is exact arithmetic
on counts, and the min-hash repair recomputes exactly the slots whose
minimum could have moved.

``track_minhash=False`` runs a *light* maintainer that keeps only the
column statistics — enough for
:func:`~repro.index.sketch.similarity_upper_bound` — skipping all
per-cell token hashing.  The warm comparison engine
(:mod:`repro.delta.engine`) uses this mode for its staleness bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DeltaError
from ..core.instance import Instance
from ..core.values import is_null
from ..index.sketch import (
    EMPTY_SLOT,
    _MERSENNE_PRIME,
    ColumnSketch,
    IndexParams,
    InstanceSketch,
    RelationSketch,
    _constant_token,
    _minhash,
    stable_hash64,
)
from ..parallel.cache import instance_fingerprint
from .batch import OP_DELETE, OP_INSERT, OP_UPDATE, DeltaBatch

_FULL_RECOMPUTE_DIRTY_FRACTION = 0.5
"""Recompute every slot at once when at least this fraction is dirty."""


@dataclass(frozen=True)
class SketchRepair:
    """What one :meth:`SketchMaintainer.apply` call actually did.

    ``minhash_slots_patched`` counts slots updated by pure min-merges of
    admitted hashes (or left untouched); ``minhash_slots_rebuilt`` counts
    slots whose minimum was retired and had to be recomputed over the
    surviving token set.  ``full_minhash_rebuild`` is set when the dirty
    fraction made a whole-signature recompute cheaper than per-slot
    repair — still over the count-tracked hash set, never the instance.
    """

    tokens_added: int = 0
    tokens_removed: int = 0
    relations_touched: tuple[str, ...] = ()
    columns_touched: tuple[tuple[str, str], ...] = ()
    minhash_slots_patched: int = 0
    minhash_slots_rebuilt: int = 0
    full_minhash_rebuild: bool = False

    @property
    def columns_repaired(self) -> int:
        return len(self.columns_touched)


class _ColumnState:
    """Mutable counterpart of :class:`ColumnSketch`."""

    __slots__ = ("constants", "nulls")

    def __init__(self) -> None:
        self.constants: dict[int, int] = {}
        self.nulls = 0


class _RelationState:
    """Mutable counterpart of :class:`RelationSketch`."""

    __slots__ = ("attributes", "tuple_count", "columns")

    def __init__(self, attributes: tuple[str, ...]) -> None:
        self.attributes = attributes
        self.tuple_count = 0
        self.columns: dict[str, _ColumnState] = {
            a: _ColumnState() for a in attributes
        }


class SketchMaintainer:
    """Live, incrementally-maintained sketch state for one instance.

    Parameters
    ----------
    instance:
        The base instance; one pass over its cells seeds the state.
    params:
        Sketch parameters (fixed for the maintainer's lifetime).
    track_minhash:
        When ``False``, skip the token multiset and min-hash entirely
        (column statistics only — the light mode used for admissible
        bounds).
    """

    def __init__(
        self,
        instance: Instance,
        params: IndexParams,
        *,
        track_minhash: bool = True,
    ) -> None:
        self._params = params
        self._track_minhash = track_minhash
        self._touched: dict[int, int] | None = None
        self._coefficients = params.coefficients() if track_minhash else ()
        self._relations: dict[str, _RelationState] = {}
        self._base_counts: dict[str, int] = {}
        self._hash_counts: dict[int, int] = {}
        self._token_count = 0
        self._minhash: list[int] = []
        # Cache of (type, value) -> (encoded token, stable hash): constant
        # columns repeat values, and blake2b per cell is the dominant cost.
        self._token_cache: dict[tuple, tuple[str, int]] = {}
        for relation in instance.relations():
            rel_name = relation.schema.name
            state = _RelationState(relation.schema.attributes)
            self._relations[rel_name] = state
            for t in relation:
                state.tuple_count += 1
                for attribute, value in zip(state.attributes, t.values):
                    self._admit(rel_name, state.columns[attribute], attribute, value)
        if track_minhash:
            self._minhash = list(
                _minhash(list(self._hash_counts), params)
            )

    @property
    def params(self) -> IndexParams:
        return self._params

    @property
    def track_minhash(self) -> bool:
        return self._track_minhash

    @property
    def token_count(self) -> int:
        return self._token_count

    # -- cell admission / retirement ---------------------------------------

    def _token_key(self, value) -> tuple[str, int]:
        try:
            cache_key = (type(value), value)
            cached = self._token_cache.get(cache_key)
        except TypeError:  # unhashable constant: encode without caching
            encoded = _constant_token(value)
            return encoded, stable_hash64(encoded)
        if cached is None:
            encoded = _constant_token(value)
            cached = (encoded, stable_hash64(encoded))
            self._token_cache[cache_key] = cached
        return cached

    def _admit(self, rel_name: str, column: _ColumnState, attribute: str, value) -> None:
        if is_null(value):
            column.nulls += 1
            base = f"{rel_name}\x1f{attribute}\x1fN"
        else:
            encoded, key = self._token_key(value)
            column.constants[key] = column.constants.get(key, 0) + 1
            base = f"{rel_name}\x1f{attribute}\x1fC\x1f{encoded}"
        self._token_count += 1
        if not self._track_minhash:
            return
        occurrence = self._base_counts.get(base, 0)
        self._base_counts[base] = occurrence + 1
        h = stable_hash64(f"{base}\x1f{occurrence}")
        before = self._hash_counts.get(h, 0)
        self._hash_counts[h] = before + 1
        touched = self._touched
        if touched is not None and h not in touched:
            touched[h] = before

    def _retire(self, rel_name: str, column: _ColumnState, attribute: str, value) -> None:
        if is_null(value):
            if column.nulls <= 0:
                raise DeltaError(
                    f"retiring a null from empty column "
                    f"{rel_name}.{attribute}"
                )
            column.nulls -= 1
            base = f"{rel_name}\x1f{attribute}\x1fN"
        else:
            encoded, key = self._token_key(value)
            count = column.constants.get(key, 0)
            if count <= 0:
                raise DeltaError(
                    f"retiring constant {value!r} absent from column "
                    f"{rel_name}.{attribute}"
                )
            if count == 1:
                del column.constants[key]
            else:
                column.constants[key] = count - 1
            base = f"{rel_name}\x1f{attribute}\x1fC\x1f{encoded}"
        self._token_count -= 1
        if not self._track_minhash:
            return
        occurrence = self._base_counts.get(base, 0) - 1
        if occurrence < 0:
            raise DeltaError(f"retiring token with no occurrences: {base!r}")
        if occurrence == 0:
            del self._base_counts[base]
        else:
            self._base_counts[base] = occurrence
        # Multiset tokens are indexed by occurrence, so removing one
        # occurrence of a base always retires the *last* index.
        h = stable_hash64(f"{base}\x1f{occurrence}")
        before = self._hash_counts.get(h, 0)
        if before <= 0:
            raise DeltaError(f"retiring unknown token hash for base {base!r}")
        if before == 1:
            del self._hash_counts[h]
        else:
            self._hash_counts[h] = before - 1
        touched = self._touched
        if touched is not None and h not in touched:
            touched[h] = before

    # -- batch application --------------------------------------------------

    def apply(
        self,
        batch: DeltaBatch,
        new_instance: Instance | None = None,
        *,
        fingerprint: bool = True,
    ) -> tuple[InstanceSketch, SketchRepair]:
        """Repair the state under ``batch``; return the new sketch + report.

        ``new_instance`` (the post-batch instance) is only needed when
        ``fingerprint`` is true — content fingerprints cannot be patched
        incrementally, so they are recomputed from the instance (the same
        cost the cold path pays).  With ``fingerprint=False`` the
        returned sketch carries an empty fingerprint, which is fine for
        bounds and LSH but must not be persisted.
        """
        if fingerprint and new_instance is None:
            raise DeltaError(
                "apply(fingerprint=True) needs the post-batch instance"
            )
        prev_minhash = tuple(self._minhash)
        self._touched = touched = {} if self._track_minhash else None
        columns_touched: set[tuple[str, str]] = set()
        try:
            for op in batch:
                state = self._relations.get(op.relation)
                if state is None:
                    raise DeltaError(
                        f"batch touches relation {op.relation!r} unknown to "
                        "the maintained sketch"
                    )
                attributes = state.attributes
                if op.kind == OP_INSERT:
                    self._check_arity(op, len(op.values), len(attributes))
                    state.tuple_count += 1
                    for attribute, value in zip(attributes, op.values):
                        self._admit(op.relation, state.columns[attribute], attribute, value)
                        columns_touched.add((op.relation, attribute))
                elif op.kind == OP_DELETE:
                    self._check_arity(op, len(op.old_values), len(attributes))
                    state.tuple_count -= 1
                    if state.tuple_count < 0:
                        raise DeltaError(
                            f"delete from empty relation {op.relation!r}"
                        )
                    for attribute, value in zip(attributes, op.old_values):
                        self._retire(op.relation, state.columns[attribute], attribute, value)
                        columns_touched.add((op.relation, attribute))
                else:
                    self._check_arity(op, len(op.values), len(attributes))
                    self._check_arity(op, len(op.old_values), len(attributes))
                    for attribute, old_value, new_value in zip(
                        attributes, op.old_values, op.values
                    ):
                        if type(old_value) is type(new_value) and (
                            old_value is new_value or old_value == new_value
                        ):
                            continue
                        column = state.columns[attribute]
                        self._retire(op.relation, column, attribute, old_value)
                        self._admit(op.relation, column, attribute, new_value)
                        columns_touched.add((op.relation, attribute))
        finally:
            self._touched = None
        added: list[int] = []
        removed: list[int] = []
        if touched is not None:
            for h, before in touched.items():
                after = self._hash_counts.get(h, 0)
                if before == 0 and after > 0:
                    added.append(h)
                elif before > 0 and after == 0:
                    removed.append(h)
        patched, rebuilt, full_rebuild = self._repair_minhash(
            prev_minhash, added, removed
        )
        sketch = self.materialize(
            fingerprint=instance_fingerprint(new_instance) if fingerprint else ""
        )
        report = SketchRepair(
            tokens_added=len(added),
            tokens_removed=len(removed),
            relations_touched=batch.relations_touched(),
            columns_touched=tuple(sorted(columns_touched)),
            minhash_slots_patched=patched,
            minhash_slots_rebuilt=rebuilt,
            full_minhash_rebuild=full_rebuild,
        )
        return sketch, report

    @staticmethod
    def _check_arity(op, got: int, expected: int) -> None:
        if got != expected:
            raise DeltaError(
                f"{op.kind} op for tuple {op.tuple_id!r} carries {got} "
                f"values but relation {op.relation!r} has arity {expected}"
            )

    # -- min-hash repair -----------------------------------------------------

    def _repair_minhash(
        self,
        prev: tuple[int, ...],
        added: list[int],
        removed: list[int],
    ) -> tuple[int, int, bool]:
        """Patch ``self._minhash`` in place; returns (patched, rebuilt, full)."""
        if not self._track_minhash:
            return 0, 0, False
        params = self._params
        num_perms = params.num_perms
        if not self._hash_counts:
            self._minhash = [EMPTY_SLOT] * num_perms
            return num_perms, 0, False
        coefficients = self._coefficients
        # A retired hash can only move a slot's minimum when its permuted
        # value *was* that minimum; every other slot keeps its witness.
        dirty: list[int] = []
        if removed:
            for i, (a, b) in enumerate(coefficients):
                slot = prev[i]
                if any((a * h + b) % _MERSENNE_PRIME == slot for h in removed):
                    dirty.append(i)
        if dirty and len(dirty) >= max(
            1, int(num_perms * _FULL_RECOMPUTE_DIRTY_FRACTION)
        ):
            self._minhash = list(_minhash(list(self._hash_counts), params))
            return num_perms - len(dirty), len(dirty), True
        signature = list(prev)
        if added:
            added_min = _minhash(added, params)
            signature = [min(s, v) for s, v in zip(signature, added_min)]
        if dirty:
            survivors = list(self._hash_counts)
            for i in dirty:
                a, b = coefficients[i]
                signature[i] = min(
                    (a * h + b) % _MERSENNE_PRIME for h in survivors
                )
        self._minhash = signature
        return num_perms - len(dirty), len(dirty), False

    # -- materialization -----------------------------------------------------

    def materialize(self, *, fingerprint: str = "") -> InstanceSketch:
        """Freeze the current state into an :class:`InstanceSketch`.

        Dictionaries are copied so later maintenance never mutates a
        sketch already handed out (sketches are shared with the LSH index
        and the store).
        """
        relations: dict[str, RelationSketch] = {}
        for rel_name, state in self._relations.items():
            relations[rel_name] = RelationSketch(
                name=rel_name,
                attributes=state.attributes,
                tuple_count=state.tuple_count,
                columns={
                    attribute: ColumnSketch(
                        constants=dict(column.constants),
                        null_count=column.nulls,
                    )
                    for attribute, column in state.columns.items()
                },
            )
        return InstanceSketch(
            fingerprint=fingerprint,
            relations=relations,
            minhash=tuple(self._minhash) if self._track_minhash else (),
            token_count=self._token_count,
        )

    def sketch_for(self, instance: Instance) -> InstanceSketch:
        """Materialize with the fingerprint of ``instance``."""
        return self.materialize(fingerprint=instance_fingerprint(instance))


__all__ = ["SketchMaintainer", "SketchRepair"]
