"""Warm-started delta-aware comparison (the ``compare_delta`` engine).

A :class:`DeltaSession` keeps the full greedy matching state of one
left/right comparison alive — the growing :class:`~repro.algorithms.unifier.Unifier`,
the committed tuple mapping, per-pair scores, and a mutable signature
index over the evolving right side — so that after a
:class:`~repro.delta.batch.DeltaBatch` mutates the right instance, only
the disturbed part of the match is recomputed:

* pairs whose right tuple was deleted or updated are dropped;
* the freed left tuples and the new/updated right tuples are re-probed
  through the signature phases and a *restricted* completion step;
* pair scores are repaired incrementally: a committed pair's score only
  depends on the value-mapping classes of its null cells, so the session
  mirrors the unifier's class structure in a lightweight union-find and
  re-scores exactly the pairs whose classes merged or whose class lost or
  gained a right-side null occurrence.

The warm result is always a *valid* instance match of the current
instances — ``score_match`` of the returned match reproduces the reported
similarity bit-for-bit — but the greedy search is restricted to the
disturbed region, so it may trail the cold greedy optimum.  Every result
therefore carries a certified ``staleness_bound``: the admissible sketch
bound (:func:`~repro.index.sketch.similarity_upper_bound`) minus the warm
similarity, an upper bound on how far *any* rematch (cold greedy or even
the exact algorithm) can pull ahead.  A bound of zero certifies the warm
answer as exact.

Pair-score algebra
------------------
For a committed pair every cell falls into one of three shapes, scored
straight from the class structure (``L``/``R`` = number of *distinct*
left/right nulls of the cell's unifier class that occur in the current
instances — precisely the fiber sizes of
:class:`~repro.scoring.noninjectivity.NonInjectivityMeasure`):

* constant/constant: ``1.0`` (committed pairs never conflict);
* null/null (one shared class): ``2 / (L + R)``;
* null/constant: ``2λ / (L + 1)`` or ``2λ / (1 + R)``.

Deletions shrink ``R`` for surviving classes, merges grow ``L``/``R`` —
both are tracked as *dirty classes* and their incident pairs re-scored.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from ..algorithms.result import ComparisonResult
from ..algorithms.signature import (
    MutableSignatureIndex,
    SignatureIndex,
    _find_signature_matches,
    _MatchState,
    _relation_order,
)
from ..algorithms.compatibility import compatible_tuples
from ..core.errors import DeltaError
from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, is_null
from ..index.sketch import IndexParams, InstanceSketch, similarity_upper_bound
from ..mappings.constraints import MatchOptions
from ..scoring.sizes import normalization_denominator
from .batch import OP_DELETE, OP_INSERT, DeltaBatch
from .maintenance import SketchMaintainer

_EXACTNESS_EPS = 1e-12
"""Staleness bounds at or below this are reported as certified exact."""

DEFAULT_FALLBACK_FRACTION = 0.5
"""Batches touching more than this fraction of right tuples re-run cold."""

MODE_NOOP = "noop"
MODE_COLD = "cold"
MODE_WARM_START = "warm-start"
MODE_INCREMENTAL = "incremental"
MODE_COLD_FALLBACK = "cold-fallback"


class _ClassTracker:
    """Union-find mirror of the unifier's committed value-mapping classes.

    The unifier itself cannot answer "which pairs touch this class" or
    "how many right-side nulls of this class are still present", so the
    session maintains this shadow structure: for every class root, the
    left nulls, the right nulls, and the committed pairs incident to the
    class.  Unions merge small-into-large, keeping total set movement
    ``O(n log n)``.
    """

    __slots__ = ("_parent", "_size", "_left", "_right", "_pairs")

    def __init__(self) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        self._left: dict = {}
        self._right: dict = {}
        self._pairs: dict = {}

    def __contains__(self, value) -> bool:
        return value in self._parent

    def add(self, value, side: str | None):
        """Ensure ``value`` is tracked; ``side`` is its null side or None."""
        if value in self._parent:
            return self.find(value)
        self._parent[value] = value
        self._size[value] = 1
        self._left[value] = {value} if side == "left" else set()
        self._right[value] = {value} if side == "right" else set()
        self._pairs[value] = set()
        return value

    def find(self, value):
        # Identity comparisons throughout: values can be NaN (equality-
        # hostile) and dict lookups already canonicalize equal values to
        # the stored key object, so ``is`` against the stored parent is
        # both safe and exact.
        parent = self._parent
        root = value
        while True:
            above = parent[root]
            if above is root:
                break
            root = above
        while True:
            above = parent[value]
            if above is root:
                break
            parent[value] = root
            value = above
        return root

    def union(self, a, b):
        """Merge the classes of ``a`` and ``b``.

        Returns the surviving root when a real merge happened, ``None``
        when the two values were already in one class.
        """
        ra, rb = self.find(a), self.find(b)
        if ra is rb:
            return None
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size.pop(rb)
        self._left[ra] |= self._left.pop(rb)
        self._right[ra] |= self._right.pop(rb)
        self._pairs[ra] |= self._pairs.pop(rb)
        return ra

    def attach_pair(self, root, pair: tuple[str, str]) -> None:
        self._pairs[root].add(pair)

    def pairs_of(self, root) -> set:
        return self._pairs[root]

    def left_count(self, root) -> int:
        return len(self._left[root])

    def right_nulls(self, root) -> set:
        return self._right[root]


class _ObservedState(_MatchState):
    """A :class:`_MatchState` that mirrors committed pairs into a session.

    ``try_add`` replicates the parent's guard sequence (blocked →
    duplicate → admissible → unify) so the session only ever observes
    pairs that actually committed; failed attempts roll the unifier back
    and must leave the class tracker untouched.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.session: "DeltaSession | None" = None

    def try_add(self, t: Tuple, t_prime: Tuple, policy: str = "any") -> bool:
        session = self.session
        if session is None:
            return super().try_add(t, t_prime, policy)
        if self.blocked(t.tuple_id, t_prime.tuple_id):
            return False
        if (t.tuple_id, t_prime.tuple_id) in self.mapping:
            return False
        if not self.admissible(t, t_prime, policy):
            return False
        if not self.unifier.try_unify_tuples(t, t_prime):
            return False
        self.mapping.add(t.tuple_id, t_prime.tuple_id)
        self.matched_left.add(t.tuple_id)
        self.matched_right.add(t_prime.tuple_id)
        session._observe_pair(t, t_prime)
        return True


class DeltaSession:
    """Live matching state for one evolving comparison.

    The left instance is fixed; the right instance evolves through
    :meth:`advance` calls, each applying one :class:`DeltaBatch` and
    returning a fresh :class:`ComparisonResult` with ``algorithm
    == "signature-delta"`` and delta-specific stats (``delta_mode``,
    ``staleness_bound``, ``certified_exact``, pair churn counters).

    Construct with :meth:`DeltaSession.cold` to run the full greedy
    matching once, or :meth:`DeltaSession.from_result` to warm-start from
    an existing result's match without re-running the greedy search.
    """

    def __init__(
        self,
        left: Instance,
        right: Instance,
        options: MatchOptions | None = None,
        *,
        align_preference: bool = True,
        params: IndexParams | None = None,
        fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
        left_index: SignatureIndex | None = None,
        _defer_matching: bool = False,
    ) -> None:
        self._init_core(
            left,
            right,
            options,
            align_preference=align_preference,
            params=params,
            fallback_fraction=fallback_fraction,
            left_index=left_index,
        )
        if not _defer_matching:
            started = time.perf_counter()
            self._run_cold_matching()
            self._rescore_all()
            self.last_result = self._build_result(
                started, mode=MODE_COLD, batch=None
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def cold(
        cls,
        left: Instance,
        right: Instance,
        options: MatchOptions | None = None,
        **kwargs,
    ) -> "DeltaSession":
        """Run the full signature algorithm once and keep the state warm."""
        return cls(left, right, options, **kwargs)

    @classmethod
    def from_result(
        cls,
        result: ComparisonResult,
        *,
        align_preference: bool = True,
        params: IndexParams | None = None,
        fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
        left_index: SignatureIndex | None = None,
    ) -> "DeltaSession":
        """Warm-start from an existing result's match.

        The committed pairs are replayed through a fresh unifier — the
        class partition is determined by the pair set alone, so the
        replay reconstructs the exact value-mapping state without
        re-running the greedy search.  The result's match must be a
        valid match of its own instances (any :class:`ComparisonResult`
        produced by this package qualifies).
        """
        match = result.match
        session = cls(
            match.left,
            match.right,
            result.options,
            align_preference=align_preference,
            params=params,
            fallback_fraction=fallback_fraction,
            left_index=left_index,
            _defer_matching=True,
        )
        state = session._state
        for left_id, right_id in sorted(match.m):
            t = match.left.get_tuple(left_id)
            t_prime = match.right.get_tuple(right_id)
            if not state.try_add(t, t_prime, policy="any"):
                raise DeltaError(
                    f"cannot replay pair ({left_id}, {right_id}): the "
                    "previous match is not internally consistent"
                )
        session._rescore_all()
        session.last_result = session._build_result(
            time.perf_counter(), mode=MODE_WARM_START, batch=None
        )
        return session

    def _init_core(
        self,
        left: Instance,
        right: Instance,
        options: MatchOptions | None,
        *,
        align_preference: bool,
        params: IndexParams | None,
        fallback_fraction: float,
        left_index: SignatureIndex | None,
    ) -> None:
        if options is None:
            options = MatchOptions.general()
        left.assert_comparable_with(right)
        self.left = left
        self.right = right
        self.options = options
        self.align_preference = align_preference
        self.params = params if params is not None else IndexParams()
        self.fallback_fraction = fallback_fraction
        if left_index is None:
            left_index = SignatureIndex.build(left)
        elif not left_index.matches(left):
            raise DeltaError(
                "left_index was not built from the left instance"
            )
        self._left_index = left_index
        self._left_ids = left.ids()
        self._left_nulls = left.vars()
        self._left_sketch = SketchMaintainer(
            left, self.params, track_minhash=False
        ).materialize()
        self.last_result: ComparisonResult | None = None
        self._reset_right_state(right)
        # Relation priority fixed at session start: warm advances only
        # reorder *within* this cold ordering, keeping runs deterministic.
        self._relation_priority = {
            name: position
            for position, name in enumerate(
                _relation_order(self._state, self._left_index, self._right_index)
            )
        }

    def _reset_right_state(self, right: Instance) -> None:
        """(Re)build all state that depends on the right instance."""
        self.right = right
        self._right_index = MutableSignatureIndex.build(right)
        self._right_maintainer = SketchMaintainer(
            right, self.params, track_minhash=False
        )
        self._right_sketch = self._right_maintainer.materialize()
        self._state = _ObservedState(
            self.left, right, self.options,
            align_preference=self.align_preference,
        )
        self._state.session = self
        self._tracker = _ClassTracker()
        self._pairs: dict[tuple[str, str], tuple[Tuple, Tuple]] = {}
        self._pair_scores: dict[tuple[str, str], float] = {}
        self._left_scores: dict[str, float] = {}
        self._right_scores: dict[str, float] = {}
        self._dirty_roots: set = set()
        self._new_pairs: set[tuple[str, str]] = set()
        self._rc_cache: dict = {}
        self._right_refs: dict[LabeledNull, int] = {}
        for t in right.tuples():
            for value in t.values:
                if is_null(value):
                    self._right_refs[value] = (
                        self._right_refs.get(value, 0) + 1
                    )
        self.similarity = 0.0

    # -- observation hooks ------------------------------------------------

    def _observe_pair(self, t: Tuple, t_prime: Tuple) -> None:
        """Mirror one committed pair into the class tracker."""
        tracker = self._tracker
        pair = (t.tuple_id, t_prime.tuple_id)
        self._pairs[pair] = (t, t_prime)
        self._new_pairs.add(pair)
        for left_value, right_value in zip(t.values, t_prime.values):
            left_null = is_null(left_value)
            right_null = is_null(right_value)
            if not left_null and not right_null:
                continue
            tracker.add(left_value, "left" if left_null else None)
            tracker.add(right_value, "right" if right_null else None)
            survivor = tracker.union(left_value, right_value)
            if survivor is not None:
                self._dirty_roots.add(survivor)
            tracker.attach_pair(tracker.find(left_value), pair)

    def _change_ref(self, null: LabeledNull, delta: int) -> None:
        """Adjust a right null's occurrence count; dirty its class on flips."""
        refs = self._right_refs
        before = refs.get(null, 0)
        after = before + delta
        if after < 0:
            raise DeltaError(
                f"right null {null!r} retired more times than it occurs"
            )
        if after:
            refs[null] = after
        else:
            refs.pop(null, None)
        if (before == 0) != (after == 0) and null in self._tracker:
            self._dirty_roots.add(self._tracker.find(null))

    # -- scoring ----------------------------------------------------------

    def _right_count(self, root) -> int:
        cached = self._rc_cache.get(root)
        if cached is None:
            refs = self._right_refs
            cached = sum(
                1
                for null in self._tracker.right_nulls(root)
                if refs.get(null, 0) > 0
            )
            self._rc_cache[root] = cached
        return cached

    def _pair_score(self, t: Tuple, t_prime: Tuple) -> float:
        """Exact paper pair score from the class structure (module docs)."""
        lam = self.options.lam
        tracker = self._tracker
        total = 0.0
        for left_value, right_value in zip(t.values, t_prime.values):
            left_null = is_null(left_value)
            right_null = is_null(right_value)
            if not left_null and not right_null:
                if left_value == right_value:
                    total += 1.0
            elif left_null and right_null:
                root = tracker.find(left_value)
                total += 2.0 / (
                    tracker.left_count(root) + self._right_count(root)
                )
            elif left_null:
                root = tracker.find(left_value)
                total += 2.0 * lam / (tracker.left_count(root) + 1.0)
            else:
                root = tracker.find(right_value)
                total += 2.0 * lam / (1.0 + self._right_count(root))
        return total

    def _refresh_tuple_scores(
        self, left_ids: Iterable[str], right_ids: Iterable[str]
    ) -> None:
        mapping = self._state.mapping
        pair_scores = self._pair_scores
        for left_id in left_ids:
            image = mapping.image(left_id)
            if image:
                self._left_scores[left_id] = sum(
                    pair_scores[(left_id, right_id)] for right_id in image
                ) / len(image)
            else:
                self._left_scores.pop(left_id, None)
        for right_id in right_ids:
            preimage = mapping.preimage(right_id)
            if preimage:
                self._right_scores[right_id] = sum(
                    pair_scores[(left_id, right_id)] for left_id in preimage
                ) / len(preimage)
            else:
                self._right_scores.pop(right_id, None)

    def _recompute_similarity(self) -> float:
        denominator = normalization_denominator(self.left, self.right)
        if denominator == 0:
            self.similarity = 1.0
            return 1.0
        numerator = sum(self._left_scores.values()) + sum(
            self._right_scores.values()
        )
        self.similarity = numerator / denominator
        return self.similarity

    def _rescore_dirty(
        self, removed_pairs: Sequence[tuple[str, str]]
    ) -> tuple[int, int]:
        """Re-score disturbed pairs and refresh affected tuple scores.

        Returns ``(pairs_added, pairs_rescored)``.
        """
        self._rc_cache.clear()
        tracker = self._tracker
        dirty_pairs = set(self._new_pairs)
        pairs_added = len(self._new_pairs)
        for root in self._dirty_roots:
            dirty_pairs |= tracker.pairs_of(tracker.find(root))
        self._dirty_roots.clear()
        self._new_pairs.clear()
        rescored = 0
        for pair in dirty_pairs:
            members = self._pairs.get(pair)
            if members is None:
                continue  # the pair was removed this advance
            self._pair_scores[pair] = self._pair_score(*members)
            rescored += 1
        affected_left = {pair[0] for pair in dirty_pairs}
        affected_right = {pair[1] for pair in dirty_pairs}
        affected_left.update(pair[0] for pair in removed_pairs)
        affected_right.update(pair[1] for pair in removed_pairs)
        self._refresh_tuple_scores(affected_left, affected_right)
        self._recompute_similarity()
        return pairs_added, rescored

    def _rescore_all(self) -> None:
        """Score every committed pair from scratch (cold setup / replay)."""
        self._rc_cache.clear()
        self._dirty_roots.clear()
        self._new_pairs.clear()
        self._pair_scores = {
            pair: self._pair_score(*members)
            for pair, members in self._pairs.items()
        }
        self._left_scores = {}
        self._right_scores = {}
        mapping = self._state.mapping
        self._refresh_tuple_scores(
            mapping.matched_left_ids(), mapping.matched_right_ids()
        )
        self._recompute_similarity()

    # -- matching ---------------------------------------------------------

    def _phases(self) -> tuple[str, ...]:
        return ("zero", "coverage") if self.align_preference else ("any",)

    def _run_cold_matching(self) -> None:
        """The full signature algorithm, mirroring ``signature_compare``."""
        state = self._state
        ordered = _relation_order(state, self._left_index, self._right_index)
        for policy in self._phases():
            for name in ordered:
                left_signatures = self._left_index.relation(name)
                right_signatures = self._right_index.relation(name)
                _find_signature_matches(
                    state, left_signatures.probe_order,
                    right_signatures.probe_order,
                    indexed_is_left=True, policy=policy,
                    indexed_signatures=left_signatures,
                    probe_signatures=right_signatures,
                )
                _find_signature_matches(
                    state, right_signatures.probe_order,
                    left_signatures.probe_order,
                    indexed_is_left=False, policy=policy,
                    indexed_signatures=right_signatures,
                    probe_signatures=left_signatures,
                )
        for name in ordered:
            left_pool = self._eligible_left(self.left.relation(name))
            right_pool = self._eligible_right(self.right.relation(name))
            self._complete_pairs(left_pool, right_pool)

    def _eligible_left(self, tuples: Iterable[Tuple]) -> list[Tuple]:
        matched = self._state.matched_left
        if self.options.left_injective:
            return [t for t in tuples if t.tuple_id not in matched]
        return list(tuples)

    def _eligible_right(self, tuples: Iterable[Tuple]) -> list[Tuple]:
        matched = self._state.matched_right
        if self.options.right_injective:
            return [t for t in tuples if t.tuple_id not in matched]
        return list(tuples)

    def _complete_pairs(
        self, left_pool: Sequence[Tuple], right_pool: Sequence[Tuple]
    ) -> int:
        """One completion sweep, mirroring the cold ``_completion_step``."""
        state = self._state
        options = self.options
        if not left_pool or not right_pool:
            return 0
        right_lookup = {t.tuple_id: t for t in right_pool}
        compatible = compatible_tuples(left_pool, right_pool, right_lookup)
        policy = "coverage" if self.align_preference else "any"
        added = 0
        for t in sorted(
            left_pool, key=lambda x: (-x.constant_count(), x.tuple_id)
        ):
            if options.left_injective and t.tuple_id in state.matched_left:
                continue
            candidates = [
                right_lookup[right_id]
                for right_id in compatible.get(t.tuple_id, [])
            ]
            for t_prime in state.order_candidates(
                candidates, t, probe_is_right=False
            ):
                if state.try_add(t, t_prime, policy):
                    added += 1
                    if options.left_injective:
                        break
        return added

    # -- delta application ------------------------------------------------

    def _validate_batch(self, batch: DeltaBatch) -> None:
        """New right values must stay disjoint from the fixed left side."""
        for op in batch:
            if op.kind == OP_DELETE:
                continue
            if op.kind == OP_INSERT and op.tuple_id in self._left_ids:
                raise DeltaError(
                    f"inserted tuple id {op.tuple_id!r} collides with a "
                    "left-instance id"
                )
            for value in op.values:
                if is_null(value) and value in self._left_nulls:
                    raise DeltaError(
                        f"right-side null {value!r} collides with a "
                        "left-instance null"
                    )

    def advance(self, batch: DeltaBatch) -> ComparisonResult:
        """Apply ``batch`` to the right instance and re-score warm.

        Returns a :class:`ComparisonResult` whose match is a valid match
        of ``(left, new right)`` and whose ``stats["staleness_bound"]``
        bounds the gap to any rematch honoring the same options.
        """
        started = time.perf_counter()
        if not isinstance(batch, DeltaBatch):
            raise DeltaError("advance() expects a DeltaBatch")
        if batch.is_empty:
            result = self._build_result(started, mode=MODE_NOOP, batch=batch)
            self.last_result = result
            return result
        self._validate_batch(batch)
        new_right = batch.apply(self.right)
        right_tuples = len(self.right)
        if len(batch) > self.fallback_fraction * max(1, right_tuples):
            return self._cold_fallback(new_right, batch, started)

        # 1. Sketch + signature-index maintenance under the batch.
        self._right_sketch, _ = self._right_maintainer.apply(
            batch, fingerprint=False
        )
        self._right_index.apply_batch(batch, new_right)

        # 2. Retire pairs of deleted/updated right tuples; track null
        #    occurrence flips (they change fiber sizes of live classes).
        state = self._state
        mapping = state.mapping
        removed_pairs: list[tuple[str, str]] = []
        freed_left: set[str] = set()
        changed_right: dict[str, list[Tuple]] = {}
        for op in batch:
            if op.kind != OP_INSERT:
                right_id = op.tuple_id
                for left_id in list(mapping.preimage(right_id)):
                    mapping.remove(left_id, right_id)
                    pair = (left_id, right_id)
                    removed_pairs.append(pair)
                    self._pairs.pop(pair, None)
                    self._pair_scores.pop(pair, None)
                    if not mapping.image(left_id):
                        state.matched_left.discard(left_id)
                        freed_left.add(left_id)
                state.matched_right.discard(right_id)
                for value in op.old_values:
                    if is_null(value):
                        self._change_ref(value, -1)
            if op.kind != OP_DELETE:
                for value in op.values:
                    if is_null(value):
                        self._change_ref(value, +1)
                changed_right.setdefault(op.relation, []).append(
                    new_right.get_tuple(op.tuple_id)
                )
        self.right = new_right
        state.right = new_right

        # 3. Re-probe the disturbed region through the signature phases.
        freed_left_by_rel: dict[str, list[Tuple]] = {}
        for left_id in freed_left:
            t = self.left.get_tuple(left_id)
            freed_left_by_rel.setdefault(t.relation.name, []).append(t)
        touched = sorted(
            set(changed_right) | set(freed_left_by_rel),
            key=lambda name: self._relation_priority.get(name, len(self._relation_priority)),
        )
        for policy in self._phases():
            for name in touched:
                left_signatures = self._left_index.relation(name)
                right_signatures = self._right_index.relation(name)
                probes = changed_right.get(name)
                if probes:
                    _find_signature_matches(
                        state, left_signatures.probe_order, probes,
                        indexed_is_left=True, policy=policy,
                        indexed_signatures=left_signatures,
                    )
                probes = freed_left_by_rel.get(name)
                if probes:
                    _find_signature_matches(
                        state, right_signatures.probe_order, probes,
                        indexed_is_left=False, policy=policy,
                        indexed_signatures=right_signatures,
                    )

        # 4. Restricted completion: only currently-unmatched tuples are
        #    pooled (full-pool alignment sweeps are deferred to the
        #    staleness bound).
        matched_left = state.matched_left
        matched_right = state.matched_right
        for name in touched:
            changed = [
                t
                for t in changed_right.get(name, ())
                if t.tuple_id not in matched_right
            ]
            if changed:
                left_pool = [
                    t
                    for t in self.left.relation(name)
                    if t.tuple_id not in matched_left
                ]
                self._complete_pairs(left_pool, changed)
            freed = [
                t
                for t in freed_left_by_rel.get(name, ())
                if t.tuple_id not in matched_left
            ]
            if freed:
                right_pool = [
                    t
                    for t in self.right.relation(name)
                    if t.tuple_id not in matched_right
                ]
                self._complete_pairs(freed, right_pool)

        # 5. Repair scores and build the warm result.
        pairs_added, rescored = self._rescore_dirty(removed_pairs)
        result = self._build_result(
            started,
            mode=MODE_INCREMENTAL,
            batch=batch,
            pairs_added=pairs_added,
            pairs_removed=len(removed_pairs),
            rescored_pairs=rescored,
        )
        self.last_result = result
        return result

    def _cold_fallback(
        self, new_right: Instance, batch: DeltaBatch, started: float
    ) -> ComparisonResult:
        """Rebuild the right-side state and re-run the greedy matching."""
        self._reset_right_state(new_right)
        self._run_cold_matching()
        pairs_added = len(self._new_pairs)
        self._rescore_all()
        result = self._build_result(
            started,
            mode=MODE_COLD_FALLBACK,
            batch=batch,
            pairs_added=pairs_added,
        )
        self.last_result = result
        return result

    # -- results ----------------------------------------------------------

    def staleness_bound(self) -> float:
        """``min(1, sketch upper bound) - warm similarity``, floored at 0."""
        upper = min(
            1.0,
            similarity_upper_bound(
                self._left_sketch, self._right_sketch, self.options
            ),
        )
        return max(0.0, upper - self.similarity)

    def _build_result(
        self,
        started: float,
        *,
        mode: str,
        batch: DeltaBatch | None,
        pairs_added: int = 0,
        pairs_removed: int = 0,
        rescored_pairs: int = 0,
    ) -> ComparisonResult:
        match = self._state.build_match()
        bound = self.staleness_bound()
        summary = batch.summary() if batch is not None else {
            "inserted": 0, "deleted": 0, "updated": 0
        }
        stats = {
            "delta_mode": mode,
            "staleness_bound": bound,
            "certified_exact": bound <= _EXACTNESS_EPS,
            "pairs_added": pairs_added,
            "pairs_removed": pairs_removed,
            "rescored_pairs": rescored_pairs,
            "reused_pairs": len(self._state.mapping) - pairs_added,
            "ops": summary,
            "relations_touched": sorted(
                batch.relations_touched()
            ) if batch is not None else [],
        }
        return ComparisonResult(
            similarity=self.similarity,
            match=match,
            options=self.options,
            algorithm="signature-delta",
            stats=stats,
            elapsed_seconds=time.perf_counter() - started,
        )


__all__ = [
    "DeltaSession",
    "DEFAULT_FALLBACK_FRACTION",
    "MODE_NOOP",
    "MODE_COLD",
    "MODE_WARM_START",
    "MODE_INCREMENTAL",
    "MODE_COLD_FALLBACK",
]
