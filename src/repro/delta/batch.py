"""The :class:`DeltaBatch` model: tuple-level edits between instance versions.

A delta batch is a set of per-relation tuple operations — ``insert``,
``delete``, ``update`` — describing how one instance evolves into the next.
Batches are the common currency of the incremental pipeline
(:mod:`repro.delta`): sketch maintenance, LSH rebucketing, signature-index
patching, and warm-started comparison all consume the same batch.

Batches can be expressed from several sources:

* two instance versions (:meth:`DeltaBatch.from_instances`),
* a :mod:`repro.versioning` diff
  (:func:`repro.versioning.batch_from_diff`),
* column-shaped bulk data with null masks, mirroring
  :meth:`Instance.from_columns` (:meth:`DeltaBatch.inserts_from_columns`),
* replayed write-ahead-log records of an index store
  (:func:`batch_from_wal_record`).

Labeled-null identity is respected throughout: nulls inside a batch carry
their labels, so a batch that re-asserts a null of the base instance keeps
referring to the *same* unknown value, while fresh labels introduce new
unknowns.  ``apply``/``compose``/``invert`` obey the usual delta algebra:

    batch.invert().apply(batch.apply(I)) == I        (up to object identity)
    a.compose(b).apply(I) == b.apply(a.apply(I))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..core.errors import DeltaError
from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import Value

OP_INSERT = "insert"
OP_DELETE = "delete"
OP_UPDATE = "update"
_KINDS = (OP_INSERT, OP_DELETE, OP_UPDATE)


@dataclass(frozen=True)
class TupleOp:
    """One tuple-level operation of a delta batch.

    Attributes
    ----------
    kind:
        ``"insert"``, ``"delete"``, or ``"update"``.
    relation, tuple_id:
        The target tuple.  An ``update`` keeps its tuple id and replaces
        the values, so identity-tracking consumers (warm matching, the
        versioning report) can follow a tuple across versions.
    values:
        The new cell values (``insert``/``update``).
    old_values:
        The previous cell values (``delete``/``update``); required so
        batches are invertible and so sketch maintenance can retire the
        old tokens without consulting the base instance.
    """

    kind: str
    relation: str
    tuple_id: str
    values: tuple[Value, ...] | None = None
    old_values: tuple[Value, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise DeltaError(f"unknown delta op kind {self.kind!r}")
        if self.kind in (OP_INSERT, OP_UPDATE) and self.values is None:
            raise DeltaError(f"{self.kind} op {self.tuple_id!r} needs values")
        if self.kind in (OP_DELETE, OP_UPDATE) and self.old_values is None:
            raise DeltaError(
                f"{self.kind} op {self.tuple_id!r} needs old_values"
            )
        if self.values is not None and not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if self.old_values is not None and not isinstance(
            self.old_values, tuple
        ):
            object.__setattr__(self, "old_values", tuple(self.old_values))


class DeltaBatch:
    """An ordered set of tuple operations, at most one per tuple id.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> old = Instance.from_rows("R", ("A",), [("x",), ("y",)])
    >>> new = Instance.from_rows("R", ("A",), [("x",), ("z",)])
    >>> batch = DeltaBatch.from_instances(old, new)
    >>> batch.summary()
    {'inserted': 0, 'deleted': 0, 'updated': 1}
    >>> [t.values for t in batch.apply(old).relation("R")]
    [('x',), ('z',)]
    """

    __slots__ = ("ops", "_by_key")

    def __init__(self, ops: Iterable[TupleOp] = ()) -> None:
        self.ops: tuple[TupleOp, ...] = tuple(ops)
        by_key: dict[tuple[str, str], TupleOp] = {}
        for op in self.ops:
            key = (op.relation, op.tuple_id)
            if key in by_key:
                raise DeltaError(
                    f"batch holds two ops for tuple {op.tuple_id!r} of "
                    f"relation {op.relation!r}; compose batches instead"
                )
            by_key[key] = op
        self._by_key = by_key

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TupleOp]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def is_empty(self) -> bool:
        return not self.ops

    def relations_touched(self) -> tuple[str, ...]:
        """Relation names touched by this batch, sorted."""
        return tuple(sorted({op.relation for op in self.ops}))

    def ops_of_kind(self, kind: str) -> tuple[TupleOp, ...]:
        return tuple(op for op in self.ops if op.kind == kind)

    def summary(self) -> dict[str, int]:
        """Op counts by kind."""
        counts = {"inserted": 0, "deleted": 0, "updated": 0}
        for op in self.ops:
            if op.kind == OP_INSERT:
                counts["inserted"] += 1
            elif op.kind == OP_DELETE:
                counts["deleted"] += 1
            else:
                counts["updated"] += 1
        return counts

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"<DeltaBatch +{s['inserted']} -{s['deleted']} "
            f"~{s['updated']}>"
        )

    # -- delta algebra ------------------------------------------------------

    def apply(self, instance: Instance, name: str | None = None) -> Instance:
        """The instance after this batch, sharing untouched tuple objects.

        Ordering is preserved exactly as an in-place edit would: surviving
        tuples keep their positions, updated tuples are replaced in place,
        inserted tuples are appended in op order.  Preconditions are
        checked (:class:`~repro.core.errors.DeltaError` on violation):
        inserts must be fresh ids, deletes/updates must name existing
        tuples whose current values equal the recorded ``old_values``.
        """
        by_key = self._by_key
        for op in self.ops:
            if op.relation not in instance.schema:
                raise DeltaError(
                    f"batch touches unknown relation {op.relation!r}"
                )
        result = Instance(instance.schema, name=instance.name if name is None else name)
        seen: set[tuple[str, str]] = set()
        for relation in instance.relations():
            rel_name = relation.schema.name
            schema = relation.schema
            for t in relation:
                op = by_key.get((rel_name, t.tuple_id))
                if op is None:
                    result.add(t)
                    continue
                seen.add((rel_name, t.tuple_id))
                if op.kind == OP_INSERT:
                    raise DeltaError(
                        f"insert of existing tuple {t.tuple_id!r} in "
                        f"relation {rel_name!r}"
                    )
                if op.old_values != t.values:
                    raise DeltaError(
                        f"{op.kind} of tuple {t.tuple_id!r} records stale "
                        f"old values {op.old_values!r} (instance holds "
                        f"{t.values!r})"
                    )
                if op.kind == OP_UPDATE:
                    result.add(Tuple(t.tuple_id, schema, op.values))
                # deletes simply drop the tuple
        for op in self.ops:
            key = (op.relation, op.tuple_id)
            if key in seen:
                continue
            if op.kind != OP_INSERT:
                raise DeltaError(
                    f"{op.kind} of unknown tuple {op.tuple_id!r} in "
                    f"relation {op.relation!r}"
                )
            result.add(
                Tuple(op.tuple_id, instance.schema.relation(op.relation), op.values)
            )
        return result

    def invert(self) -> "DeltaBatch":
        """The batch undoing this one: ``b.invert().apply(b.apply(I)) ≅ I``."""
        inverted = []
        for op in self.ops:
            if op.kind == OP_INSERT:
                inverted.append(
                    TupleOp(OP_DELETE, op.relation, op.tuple_id, old_values=op.values)
                )
            elif op.kind == OP_DELETE:
                inverted.append(
                    TupleOp(OP_INSERT, op.relation, op.tuple_id, values=op.old_values)
                )
            else:
                inverted.append(
                    TupleOp(
                        OP_UPDATE,
                        op.relation,
                        op.tuple_id,
                        values=op.old_values,
                        old_values=op.values,
                    )
                )
        return DeltaBatch(inverted)

    def compose(self, later: "DeltaBatch") -> "DeltaBatch":
        """The single batch equivalent to this batch followed by ``later``.

        Per tuple id the usual fold rules apply (``insert∘delete``
        annihilates, ``insert∘update`` stays an insert with the later
        values, ``update∘update`` keeps the first old values, ...);
        incoherent sequences (e.g. ``delete∘delete``) raise
        :class:`~repro.core.errors.DeltaError`.
        """
        merged: dict[tuple[str, str], TupleOp | None] = {
            (op.relation, op.tuple_id): op for op in self.ops
        }
        order: list[tuple[str, str]] = [
            (op.relation, op.tuple_id) for op in self.ops
        ]
        for op in later.ops:
            key = (op.relation, op.tuple_id)
            first = merged.get(key)
            if first is None:
                if key not in merged:
                    order.append(key)
                merged[key] = op
                continue
            pair = (first.kind, op.kind)
            if pair == (OP_INSERT, OP_UPDATE):
                folded: TupleOp | None = TupleOp(
                    OP_INSERT, op.relation, op.tuple_id, values=op.values
                )
            elif pair == (OP_INSERT, OP_DELETE):
                folded = None  # inserted then deleted: nothing happened
            elif pair == (OP_UPDATE, OP_UPDATE):
                folded = TupleOp(
                    OP_UPDATE,
                    op.relation,
                    op.tuple_id,
                    values=op.values,
                    old_values=first.old_values,
                )
            elif pair == (OP_UPDATE, OP_DELETE):
                folded = TupleOp(
                    OP_DELETE, op.relation, op.tuple_id, old_values=first.old_values
                )
            elif pair == (OP_DELETE, OP_INSERT):
                folded = TupleOp(
                    OP_UPDATE,
                    op.relation,
                    op.tuple_id,
                    values=op.values,
                    old_values=first.old_values,
                )
            else:
                raise DeltaError(
                    f"cannot compose {first.kind} with {op.kind} for tuple "
                    f"{op.tuple_id!r} of relation {op.relation!r}"
                )
            merged[key] = folded
        return DeltaBatch(
            op
            for key in order
            if (op := merged[key]) is not None
            and not (op.kind == OP_UPDATE and op.values == op.old_values)
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_instances(cls, old: Instance, new: Instance) -> "DeltaBatch":
        """The batch turning ``old`` into ``new``, keyed by tuple id.

        Tuples present only in ``new`` become inserts (in insertion
        order), tuples present only in ``old`` become deletes, and shared
        ids with differing values become updates.  Both instances must
        share a compatible schema.
        """
        if not old.schema.is_compatible_with(new.schema):
            raise DeltaError(
                "cannot diff instances with incompatible schemas"
            )
        ops: list[TupleOp] = []
        for relation in old.relations():
            rel_name = relation.schema.name
            new_relation = new.relation(rel_name)
            for t in relation:
                if t.tuple_id not in new_relation:
                    ops.append(
                        TupleOp(
                            OP_DELETE, rel_name, t.tuple_id, old_values=t.values
                        )
                    )
                    continue
                t_new = new_relation.get(t.tuple_id)
                if t_new.values != t.values:
                    ops.append(
                        TupleOp(
                            OP_UPDATE,
                            rel_name,
                            t.tuple_id,
                            values=t_new.values,
                            old_values=t.values,
                        )
                    )
            for t_new in new_relation:
                if t_new.tuple_id not in relation:
                    ops.append(
                        TupleOp(
                            OP_INSERT, rel_name, t_new.tuple_id, values=t_new.values
                        )
                    )
        return cls(ops)

    @classmethod
    def inserts_from_columns(
        cls,
        schema,
        columns,
        *,
        nulls=None,
        id_prefix: str = "d",
        id_start: int = 1,
        null_prefix: str = "ND",
    ) -> "DeltaBatch":
        """Bulk-insert batch from column-shaped data with null masks.

        Mirrors :meth:`Instance.from_columns` (same schema/columns/nulls
        conventions); every produced row becomes one insert op.  Pick
        ``id_prefix``/``null_prefix`` disjoint from the target instance's
        id and label spaces.
        """
        staged = Instance.from_columns(
            schema,
            columns,
            nulls=nulls,
            id_prefix=id_prefix,
            id_start=id_start,
            null_prefix=null_prefix,
        )
        return cls(
            TupleOp(OP_INSERT, t.relation.name, t.tuple_id, values=t.values)
            for t in staged.tuples()
        )


def batch_from_wal_record(
    record: Mapping, previous: Instance | None = None
) -> tuple[str, DeltaBatch, Instance | None]:
    """Express one decoded index-store WAL record as a delta batch.

    ``record`` is a decoded log payload (``{"op": "put"|"del", "name":
    ..., ...}``, see :mod:`repro.index.store`); ``previous`` is the
    table's instance before the record (``None`` for a first ``put``).
    Returns ``(table_name, batch, new_instance)`` where ``new_instance``
    is ``None`` after a ``del``.  Replaying a store's durable log through
    :class:`~repro.delta.SketchMaintainer` with these batches reproduces
    recovery-on-open byte-for-byte (property-tested).
    """
    from ..io_.serialization import instance_from_dict

    op = record.get("op")
    name = record.get("name")
    if not isinstance(name, str):
        raise DeltaError(f"WAL record has no table name: {record!r}")
    if op == "put":
        try:
            new_instance = instance_from_dict(record["table"]["instance"])
        except (KeyError, TypeError) as error:
            raise DeltaError(f"malformed WAL put record: {error}") from error
        base = (
            previous
            if previous is not None
            else Instance(new_instance.schema, name=new_instance.name)
        )
        return name, DeltaBatch.from_instances(base, new_instance), new_instance
    if op == "del":
        if previous is None:
            raise DeltaError(
                f"WAL del record for {name!r} without a previous instance"
            )
        batch = DeltaBatch(
            TupleOp(OP_DELETE, t.relation.name, t.tuple_id, old_values=t.values)
            for t in previous.tuples()
        )
        return name, batch, None
    raise DeltaError(f"unknown WAL record op {op!r}")


__all__ = [
    "DeltaBatch",
    "TupleOp",
    "OP_DELETE",
    "OP_INSERT",
    "OP_UPDATE",
    "batch_from_wal_record",
]
