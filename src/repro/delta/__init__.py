"""``repro.delta`` — incremental, delta-aware comparison and maintenance.

The package answers "the instance changed a little; what now?" without
re-running anything from scratch:

* :class:`DeltaBatch` / :class:`TupleOp` — a validated, composable,
  invertible batch of tuple inserts/deletes/updates against one
  instance (:mod:`repro.delta.batch`);
* :class:`SketchMaintainer` — keeps an instance's
  :class:`~repro.index.sketch.InstanceSketch` (column statistics and
  min-hash) exact under a batch, repairing min-hash slots in place and
  falling back to targeted rebuilds only when a retired token was a
  slot's minimum (:mod:`repro.delta.maintenance`);
* :class:`DeltaSession` — warm-started ``compare_delta``: live greedy
  matching state that re-scores only the disturbed region and certifies
  a staleness bound on every answer (:mod:`repro.delta.engine`);
* :class:`UpdateReport` — the observable outcome of one index
  ``add``/``update`` (:mod:`repro.delta.report`).

Entry points elsewhere: :meth:`repro.Comparator.compare_delta`,
:meth:`repro.index.SimilarityIndex.update_delta`, and
:func:`repro.versioning.batch_from_diff`.
"""

from .batch import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    DeltaBatch,
    TupleOp,
    batch_from_wal_record,
)
from .engine import DEFAULT_FALLBACK_FRACTION, DeltaSession
from .maintenance import SketchMaintainer, SketchRepair
from .report import (
    MODE_ADDED,
    MODE_INCREMENTAL,
    MODE_REBUILT,
    UpdateReport,
)

__all__ = [
    "DeltaBatch",
    "TupleOp",
    "OP_INSERT",
    "OP_DELETE",
    "OP_UPDATE",
    "batch_from_wal_record",
    "DeltaSession",
    "DEFAULT_FALLBACK_FRACTION",
    "SketchMaintainer",
    "SketchRepair",
    "UpdateReport",
    "MODE_ADDED",
    "MODE_INCREMENTAL",
    "MODE_REBUILT",
]
