"""Data-lake discovery: dataset search and near-duplicate detection.

Two of the paper's motivating applications (Sec. 1):

* **dataset search** — "finding datasets that are similar to an already
  discovered dataset or user-provided data example ... even if they do not
  share the same key values";
* **data-lake deduplication** — "find duplicate or near duplicate tables
  from real data lakes containing incomplete tables ... instance comparison
  would be valuable in understanding how to resolve the (near) duplication".

:class:`DataLake` is a registry of named instances with similarity-based
``search`` and ``near_duplicates``.  Tables with incompatible schemas can
still be compared via the Sec. 4.3 null-padding when their relation names
agree; otherwise they score 0 (different entities).

Since PR 4 the lake is backed by the :mod:`repro.index` retrieval layer: a
:class:`~repro.index.SimilarityIndex` maintains a sketch per table and
serves ``search``/``near_duplicates``/``duplicate_clusters`` by admissible
upper-bound pruning — *exactly* the same hits as a brute-force scan, with
strictly fewer full comparisons on any corpus where the bounds separate
candidates.  Construct with ``use_index=False`` to force the historical
brute-force scan (both paths share one :class:`~repro.parallel.SignatureCache`
and one comparison code path, so results are identical by construction —
``benchmarks/bench_index.py`` gates on it).
"""

from __future__ import annotations

from typing import Iterator

from ..algorithms.result import ComparisonResult
from ..core.instance import Instance
from ..index.core import SimilarityIndex
from ..index.refine import (
    DuplicatePair,
    QueryComparer,
    RefinePolicy,
    SearchHit,
)
from ..index.sketch import IndexParams
from ..mappings.constraints import MatchOptions
from ..parallel.cache import SignatureCache

__all__ = ["DataLake", "DuplicatePair", "SearchHit"]


class DataLake:
    """A collection of named instances supporting similarity discovery.

    Parameters
    ----------
    options:
        Match constraints for every comparison (default: the Sec. 4.3
        versioning preset, fully injective).
    params:
        Sketch/LSH tuning for the backing index (default
        :class:`~repro.index.IndexParams`).
    cache:
        A :class:`~repro.parallel.SignatureCache` to share with other
        components; a private one is created if omitted.
    use_index:
        ``True`` (default) serves discovery through the sketch index with
        admissible-bound pruning; ``False`` scans every table brute-force.
        Both paths return identical results.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> lake = DataLake()
    >>> lake.add("a", Instance.from_rows("R", ("X",), [("1",), ("2",)]))
    >>> lake.add("b", Instance.from_rows("R", ("X",), [("1",), ("2",)]))
    >>> lake.add("c", Instance.from_rows("R", ("X",), [("9",)]))
    >>> [hit.name for hit in lake.search(
    ...     Instance.from_rows("R", ("X",), [("1",)]), top_k=2)]
    ['a', 'b']
    """

    def __init__(
        self,
        options: MatchOptions | None = None,
        params: IndexParams | None = None,
        cache: SignatureCache | None = None,
        use_index: bool = True,
    ) -> None:
        self.options = (
            options if options is not None else MatchOptions.versioning()
        )
        self._index = SimilarityIndex(
            params=params, options=self.options, cache=cache
        )
        self.use_index = use_index

    @classmethod
    def from_index(cls, index: SimilarityIndex) -> "DataLake":
        """Wrap an existing (e.g. just-loaded) index as a lake."""
        lake = cls.__new__(cls)
        lake.options = index.options
        lake._index = index
        lake.use_index = True
        return lake

    @property
    def index(self) -> SimilarityIndex:
        """The backing similarity index (sketches, LSH, cache, store)."""
        return self._index

    @property
    def cache(self) -> SignatureCache:
        """The signature cache shared by every comparison this lake runs."""
        return self._index.cache

    # -- registry -------------------------------------------------------------

    def add(self, name: str, instance: Instance) -> None:
        """Register ``instance`` under ``name`` (unique); sketches it once."""
        if name in self._index:
            raise ValueError(f"table {name!r} already in the lake")
        self._index.add(name, instance)

    def remove(self, name: str) -> None:
        """Remove a table from the lake (KeyError names the known tables)."""
        self._index.remove(name)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> list[str]:
        """Registered table names, sorted."""
        return self._index.names()

    def get(self, name: str) -> Instance:
        """The registered instance called ``name``.

        Raises a ``KeyError`` whose message lists the known table names —
        a typo'd lookup should not require a second call to debug.
        """
        return self._index.get(name)

    def tables(self) -> Iterator[tuple[str, Instance]]:
        """Iterate over (name, instance) pairs in name order."""
        for name in self.names():
            yield name, self._index.get(name)

    # -- comparison -----------------------------------------------------------

    def compare(self, query: Instance, name: str) -> ComparisonResult | None:
        """Compare ``query`` against one lake table.

        Returns ``None`` when the tables are structurally incomparable
        (different relation names).  Attribute differences are bridged with
        null padding (Sec. 4.3).  Both sides are prepared through the
        shared signature cache, so repeated comparisons of the same query
        or table never re-prepare it.
        """
        candidate = self.get(name)
        comparer = QueryComparer(self.cache, self.options, query)
        return comparer.compare(candidate)

    # -- discovery ------------------------------------------------------------

    def search(
        self,
        query: Instance,
        top_k: int = 5,
        policy: RefinePolicy | None = None,
    ) -> list[SearchHit]:
        """Rank lake tables by similarity to a query example.

        Incomparable tables are skipped.  Ties break alphabetically for
        reproducibility.  ``top_k <= 0`` and an empty lake return ``[]``
        without touching any comparison machinery.

        ``policy`` (index path only) fans refinement over worker processes
        and applies the PR-2/PR-3 runtime policies.
        """
        if top_k <= 0 or len(self) == 0:
            return []
        if self.use_index:
            return self._index.search(query, top_k=top_k, policy=policy)
        # Brute force: full comparison against every table, query side
        # prepared once (hoisted) and reused via the shared cache.
        comparer = QueryComparer(self.cache, self.options, query)
        hits = []
        for name, candidate in self.tables():
            result = comparer.compare(candidate)
            if result is None:
                continue
            hits.append(
                SearchHit(
                    name=name,
                    similarity=result.similarity,
                    matched_tuples=len(result.match.m),
                )
            )
        hits.sort(key=lambda h: (-h.similarity, h.name))
        return hits[:top_k]

    def near_duplicates(
        self,
        threshold: float = 0.8,
        policy: RefinePolicy | None = None,
    ) -> list[DuplicatePair]:
        """All table pairs with similarity ≥ ``threshold``.

        The similarity explains *how* the duplication arose (via the
        instance match); this method reports the pairs, most similar first.
        """
        if len(self) < 2:
            return []
        if self.use_index:
            return self._index.near_duplicates(
                threshold=threshold, policy=policy
            )
        names = self.names()
        pairs = []
        for position, first in enumerate(names):
            comparer = QueryComparer(self.cache, self.options, self.get(first))
            for second in names[position + 1:]:
                result = comparer.compare(self.get(second))
                if result is not None and result.similarity >= threshold:
                    pairs.append(
                        DuplicatePair(first, second, result.similarity)
                    )
        pairs.sort(key=lambda p: (-p.similarity, p.first, p.second))
        return pairs

    def duplicate_clusters(
        self,
        threshold: float = 0.8,
        policy: RefinePolicy | None = None,
    ) -> list[set[str]]:
        """Connected components of the near-duplicate graph (size ≥ 2).

        Clusters are the groups a deduplication pass would resolve together
        (merge, drop, or version-link), sorted largest first.
        """
        from ..utils.unionfind import UnionFind

        components: UnionFind = UnionFind(self.names())
        for pair in self.near_duplicates(threshold=threshold, policy=policy):
            components.union(pair.first, pair.second)
        clusters = [
            set(group) for group in components.classes() if len(group) >= 2
        ]
        clusters.sort(key=lambda c: (-len(c), sorted(c)))
        return clusters

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Persist the backing index at ``path`` (see :mod:`repro.index.store`)."""
        self._index.save(path)

    @classmethod
    def load(cls, path, cache: SignatureCache | None = None) -> "DataLake":
        """Reload a lake from a persisted index store."""
        return cls.from_index(SimilarityIndex.load(path, cache=cache))
