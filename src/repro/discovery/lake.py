"""Data-lake discovery: dataset search and near-duplicate detection.

Two of the paper's motivating applications (Sec. 1):

* **dataset search** — "finding datasets that are similar to an already
  discovered dataset or user-provided data example ... even if they do not
  share the same key values";
* **data-lake deduplication** — "find duplicate or near duplicate tables
  from real data lakes containing incomplete tables ... instance comparison
  would be valuable in understanding how to resolve the (near) duplication".

:class:`DataLake` is a registry of named instances with similarity-based
``search`` and ``near_duplicates``.  Tables with incompatible schemas can
still be compared via the Sec. 4.3 null-padding when their relation names
agree; otherwise they score 0 (different entities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.instance import Instance, prepare_for_comparison
from ..mappings.constraints import MatchOptions
from ..versioning.operations import align_schemas
from ..algorithms.result import ComparisonResult
from ..algorithms.signature import signature_compare


@dataclass(frozen=True)
class SearchHit:
    """One ranked search result."""

    name: str
    similarity: float
    matched_tuples: int

    def __repr__(self) -> str:
        return (
            f"SearchHit({self.name!r}, sim={self.similarity:.3f}, "
            f"matched={self.matched_tuples})"
        )


@dataclass(frozen=True)
class DuplicatePair:
    """A near-duplicate table pair found in the lake."""

    first: str
    second: str
    similarity: float


class DataLake:
    """A collection of named instances supporting similarity discovery.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> lake = DataLake()
    >>> lake.add("a", Instance.from_rows("R", ("X",), [("1",), ("2",)]))
    >>> lake.add("b", Instance.from_rows("R", ("X",), [("1",), ("2",)]))
    >>> lake.add("c", Instance.from_rows("R", ("X",), [("9",)]))
    >>> [hit.name for hit in lake.search(
    ...     Instance.from_rows("R", ("X",), [("1",)]), top_k=2)]
    ['a', 'b']
    """

    def __init__(self, options: MatchOptions | None = None) -> None:
        self._tables: dict[str, Instance] = {}
        self.options = options if options is not None else MatchOptions.versioning()

    # -- registry -------------------------------------------------------------

    def add(self, name: str, instance: Instance) -> None:
        """Register ``instance`` under ``name`` (unique)."""
        if name in self._tables:
            raise ValueError(f"table {name!r} already in the lake")
        self._tables[name] = instance

    def remove(self, name: str) -> None:
        """Remove a table from the lake."""
        del self._tables[name]

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)

    def get(self, name: str) -> Instance:
        """The registered instance called ``name``."""
        return self._tables[name]

    def tables(self) -> Iterator[tuple[str, Instance]]:
        """Iterate over (name, instance) pairs in name order."""
        for name in self.names():
            yield name, self._tables[name]

    # -- comparison -----------------------------------------------------------

    def _comparable(self, query: Instance, candidate: Instance) -> bool:
        return set(query.schema.relation_names()) == set(
            candidate.schema.relation_names()
        )

    def compare(
        self, query: Instance, name: str
    ) -> ComparisonResult | None:
        """Compare ``query`` against one lake table.

        Returns ``None`` when the tables are structurally incomparable
        (different relation names).  Attribute differences are bridged with
        null padding (Sec. 4.3).
        """
        candidate = self._tables[name]
        if not self._comparable(query, candidate):
            return None
        left, right = query, candidate
        if not left.schema.is_compatible_with(right.schema):
            left, right = align_schemas(left, right)
        left, right = prepare_for_comparison(left, right)
        return signature_compare(left, right, self.options)

    # -- discovery ------------------------------------------------------------

    def search(self, query: Instance, top_k: int = 5) -> list[SearchHit]:
        """Rank lake tables by similarity to a query example.

        Incomparable tables are skipped.  Ties break alphabetically for
        reproducibility.
        """
        hits = []
        for name, _ in self.tables():
            result = self.compare(query, name)
            if result is None:
                continue
            hits.append(
                SearchHit(
                    name=name,
                    similarity=result.similarity,
                    matched_tuples=len(result.match.m),
                )
            )
        hits.sort(key=lambda h: (-h.similarity, h.name))
        return hits[:top_k]

    def near_duplicates(
        self, threshold: float = 0.8
    ) -> list[DuplicatePair]:
        """All table pairs with similarity ≥ ``threshold``.

        The similarity explains *how* the duplication arose (via the
        instance match); this method reports the pairs, most similar first.
        """
        names = self.names()
        pairs = []
        for index, first in enumerate(names):
            for second in names[index + 1:]:
                result = self.compare(self._tables[first], second)
                if result is not None and result.similarity >= threshold:
                    pairs.append(
                        DuplicatePair(first, second, result.similarity)
                    )
        pairs.sort(key=lambda p: (-p.similarity, p.first, p.second))
        return pairs

    def duplicate_clusters(self, threshold: float = 0.8) -> list[set[str]]:
        """Connected components of the near-duplicate graph (size ≥ 2).

        Clusters are the groups a deduplication pass would resolve together
        (merge, drop, or version-link), sorted largest first.
        """
        from ..utils.unionfind import UnionFind

        components: UnionFind = UnionFind(self.names())
        for pair in self.near_duplicates(threshold=threshold):
            components.union(pair.first, pair.second)
        clusters = [
            set(group) for group in components.classes() if len(group) >= 2
        ]
        clusters.sort(key=lambda c: (-len(c), sorted(c)))
        return clusters
