"""Data-lake discovery: similarity search and near-duplicate detection."""

from .lake import DataLake, DuplicatePair, SearchHit

__all__ = ["DataLake", "DuplicatePair", "SearchHit"]
