"""Gold-mapping-tracked perturbations (paper Sec. 7.1, "Ground Truth").

The paper builds evaluation scenarios by cloning a table into a source
instance ``I_s`` and a target instance ``I_t`` whose tuple correspondence is
known *by construction*, then perturbing both sides:

* **modCell** — modify C% of the cells with a labeled null or a fresh random
  constant (equal probability); the same injected null may be reused across
  cells ("the same null might have multiple occurrences");
* **addRandomAndRedundant** — run modCell, then add Rnd% brand-new random
  tuples and duplicate Red% existing tuples on both sides, producing
  non-functional / non-injective gold mappings;
* finally both instances are shuffled.

The known mapping yields the similarity *score by construction* used for the
starred entries of Tables 2–3 where the exact algorithm would time out: the
gold tuple pairs are unified into a most-general value mapping and scored
with the standard scoring cascade.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, NullFactory, Value, is_null
from ..mappings.constraints import DEFAULT_LAMBDA
from ..mappings.instance_match import InstanceMatch
from ..mappings.tuple_mapping import TupleMapping
from ..scoring.match_score import score_match
from ..algorithms.unifier import Unifier
from ..utils.rand import make_rng


@dataclass(frozen=True)
class PerturbationConfig:
    """Parameters of a perturbation scenario.

    Attributes
    ----------
    cell_change_fraction:
        C%: fraction of cells modified on each side (paper default 0.05).
    null_probability:
        Probability a modified cell becomes a null rather than a fresh
        random constant (paper: "equal probability" = 0.5).
    null_reuse_probability:
        Probability a null-modification reuses a previously injected null of
        the same side instead of a fresh one (gives nulls with multiple
        occurrences).
    random_tuple_fraction:
        Rnd%: fraction of brand-new random tuples appended to each side.
    redundant_tuple_fraction:
        Red%: fraction of tuples duplicated on each side.
    seed:
        RNG seed.
    """

    cell_change_fraction: float = 0.05
    null_probability: float = 0.5
    null_reuse_probability: float = 0.15
    random_tuple_fraction: float = 0.0
    redundant_tuple_fraction: float = 0.0
    seed: int = 0

    @classmethod
    def mod_cell(cls, percent: float = 5.0, seed: int = 0) -> "PerturbationConfig":
        """The paper's *modCell* scenario with C% = ``percent``."""
        return cls(cell_change_fraction=percent / 100.0, seed=seed)

    @classmethod
    def add_random_and_redundant(
        cls,
        percent: float = 5.0,
        random_percent: float = 10.0,
        redundant_percent: float = 10.0,
        seed: int = 0,
    ) -> "PerturbationConfig":
        """The paper's *addRandomAndRedundant* scenario."""
        return cls(
            cell_change_fraction=percent / 100.0,
            random_tuple_fraction=random_percent / 100.0,
            redundant_tuple_fraction=redundant_percent / 100.0,
            seed=seed,
        )


@dataclass
class PerturbationScenario:
    """A perturbed (source, target) pair with its gold mapping.

    Attributes
    ----------
    source, target:
        The perturbed instances (already shuffled).
    gold_pairs:
        The known tuple correspondence ``(source id, target id)``; for
        *addRandomAndRedundant* scenarios the mapping is n:m.
    dropped_pairs:
        Gold pairs whose tuples became incompatible through independent
        modifications of both sides (they cannot be part of any complete
        match and are excluded from the gold score).
    """

    source: Instance
    target: Instance
    gold_pairs: list[tuple[str, str]]
    dropped_pairs: int = 0
    _cached_match: InstanceMatch | None = field(default=None, repr=False)

    def gold_match(self) -> InstanceMatch:
        """The gold instance match: gold pairs + their most-general unifier."""
        if self._cached_match is None:
            unifier = Unifier.for_instances(self.source, self.target)
            kept: list[tuple[str, str]] = []
            for source_id, target_id in self.gold_pairs:
                if unifier.try_unify_tuples(
                    self.source.get_tuple(source_id),
                    self.target.get_tuple(target_id),
                ):
                    kept.append((source_id, target_id))
            h_l, h_r = unifier.to_value_mappings()
            self._cached_match = InstanceMatch(
                left=self.source,
                right=self.target,
                h_l=h_l,
                h_r=h_r,
                m=TupleMapping(kept),
            )
        return self._cached_match

    def gold_score(self, lam: float = DEFAULT_LAMBDA) -> float:
        """The similarity *score by construction* (starred Tables 2–3 rows)."""
        return score_match(self.gold_match(), lam=lam)

    def statistics(self) -> dict[str, int]:
        """The #T / #C / #V columns of Tables 2–3 for both sides."""
        return {
            "source_tuples": len(self.source),
            "source_constants": self.source.constant_occurrence_count(),
            "source_nulls": self.source.null_occurrence_count(),
            "target_tuples": len(self.target),
            "target_constants": self.target.constant_occurrence_count(),
            "target_nulls": self.target.null_occurrence_count(),
            "gold_pairs": len(self.gold_pairs),
            "dropped_pairs": self.dropped_pairs,
        }


class _SidePerturber:
    """Applies cell modifications and tuple additions to one side."""

    def __init__(
        self,
        side: str,
        rng,
        config: PerturbationConfig,
        taken_labels: set[str] | None = None,
    ) -> None:
        self.side = side
        self.rng = rng
        self.config = config
        self.fresh_nulls = NullFactory(prefix=f"{side}V")
        self.taken_labels = taken_labels if taken_labels is not None else set()
        self.injected_nulls: list[LabeledNull] = []
        self._constant_counter = itertools.count()

    def new_null(self) -> LabeledNull:
        """A null for a modified cell, sometimes reusing an injected one."""
        if self.injected_nulls and (
            self.rng.random() < self.config.null_reuse_probability
        ):
            return self.rng.choice(self.injected_nulls)
        null = self.fresh_nulls()
        while null.label in self.taken_labels:
            null = self.fresh_nulls()
        self.injected_nulls.append(null)
        return null

    def new_constant(self) -> str:
        """A brand-new constant guaranteed absent from both instances."""
        return f"rnd_{self.side}_{next(self._constant_counter)}"

    def modify_cells(self, rows: list[list[Value]]) -> int:
        """Apply modCell to C% of all cells in ``rows`` (in place)."""
        if not rows:
            return 0
        arity = len(rows[0])
        total_cells = len(rows) * arity
        k = round(total_cells * self.config.cell_change_fraction)
        chosen = self.rng.sample(range(total_cells), min(k, total_cells))
        for flat in chosen:
            row_index, col_index = divmod(flat, arity)
            if self.rng.random() < self.config.null_probability:
                rows[row_index][col_index] = self.new_null()
            else:
                rows[row_index][col_index] = self.new_constant()
        return len(chosen)

    def random_row(self, arity: int) -> list[Value]:
        """A brand-new tuple with never-seen constants."""
        return [self.new_constant() for _ in range(arity)]


def perturb(
    base: Instance,
    config: PerturbationConfig,
    source_name: str = "I_s",
    target_name: str = "I_t",
) -> PerturbationScenario:
    """Clone ``base`` into a (source, target) scenario per the paper's recipe.

    Supports single- and multi-relation instances; all experiment datasets
    are single-relation.

    Examples
    --------
    >>> from repro.datagen.synthetic import generate_dataset
    >>> scenario = perturb(generate_dataset("iris", rows=30),
    ...                    PerturbationConfig.mod_cell(5.0, seed=1))
    >>> 0.0 < scenario.gold_score() <= 1.0
    True
    """
    rng = make_rng(config.seed)
    base_labels = {null.label for null in base.vars()}
    # The two clones must not share labeled nulls (comparison precondition);
    # the target copy's pre-existing nulls are renamed injectively, which is
    # semantics-preserving and keeps the positional gold mapping valid (the
    # gold unifier re-aligns renamed nulls with their source originals).
    target_renaming: dict[LabeledNull, LabeledNull] = {}
    renaming_counter = itertools.count()
    for null in sorted(base.vars(), key=lambda n: n.label):
        while True:
            candidate = f"tB{next(renaming_counter)}"
            if candidate not in base_labels:
                break
        target_renaming[null] = LabeledNull(candidate)
    taken = base_labels | {n.label for n in target_renaming.values()}
    source_side = _SidePerturber("s", rng, config, taken_labels=taken)
    target_side = _SidePerturber("t", rng, config, taken_labels=taken)

    source = Instance(base.schema, name=source_name)
    target = Instance(base.schema, name=target_name)
    gold_pairs: list[tuple[str, str]] = []

    id_counter = itertools.count(1)
    for relation in base.relations():
        schema = relation.schema
        base_rows = [list(t.values) for t in relation]

        source_rows = [list(row) for row in base_rows]
        target_rows = [
            [target_renaming.get(value, value) for value in row]
            for row in base_rows
        ]
        source_side.modify_cells(source_rows)
        target_side.modify_cells(target_rows)

        source_ids = []
        target_ids = []
        for row in source_rows:
            tuple_id = f"s{next(id_counter)}"
            source.add(Tuple(tuple_id, schema, row))
            source_ids.append(tuple_id)
        for row in target_rows:
            tuple_id = f"g{next(id_counter)}"
            target.add(Tuple(tuple_id, schema, row))
            target_ids.append(tuple_id)
        gold_pairs.extend(zip(source_ids, target_ids))

        # Redundant duplicates (Red%): duplicated tuples inherit the gold
        # counterpart(s) of their original, making the mapping n:m.
        dup_count = round(len(base_rows) * config.redundant_tuple_fraction)
        for _ in range(dup_count):
            origin = rng.randrange(len(base_rows))
            dup_id = f"s{next(id_counter)}"
            source.add(Tuple(dup_id, schema, source_rows[origin]))
            gold_pairs.append((dup_id, target_ids[origin]))
        for _ in range(dup_count):
            origin = rng.randrange(len(base_rows))
            dup_id = f"g{next(id_counter)}"
            target.add(Tuple(dup_id, schema, target_rows[origin]))
            gold_pairs.append((source_ids[origin], dup_id))

        # Random tuples (Rnd%): new rows with fresh constants, unmatched.
        rnd_count = round(len(base_rows) * config.random_tuple_fraction)
        for _ in range(rnd_count):
            source.add(
                Tuple(
                    f"s{next(id_counter)}", schema,
                    source_side.random_row(schema.arity),
                )
            )
        for _ in range(rnd_count):
            target.add(
                Tuple(
                    f"g{next(id_counter)}", schema,
                    target_side.random_row(schema.arity),
                )
            )

    source = source.shuffled(rng, name=source_name)
    target = target.shuffled(rng, name=target_name)

    # Drop gold pairs whose two sides were modified into incompatibility;
    # they cannot appear in any complete instance match.
    probe = Unifier.for_instances(source, target)
    kept_pairs: list[tuple[str, str]] = []
    dropped = 0
    for source_id, target_id in gold_pairs:
        if probe.compatible_tuples(
            source.get_tuple(source_id), target.get_tuple(target_id)
        ):
            kept_pairs.append((source_id, target_id))
        else:
            dropped += 1

    return PerturbationScenario(
        source=source,
        target=target,
        gold_pairs=kept_pairs,
        dropped_pairs=dropped,
    )
