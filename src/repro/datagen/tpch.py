"""Deterministic dbgen-free TPC-H synthesis at paper-bench scale (Sec. 7.1).

The columnar engine needs a workload whose hot paths dominate — hundreds of
thousands of tuples across many relations — and the TPC-H schema is the
standard shape for that.  This module synthesises all eight tables at a
chosen scale factor without the C ``dbgen`` tool: every table is generated
column-wise from its own :class:`random.Random` stream seeded as
``tpch:{seed}:{table}``, so

* the same ``(sf, seed)`` always produces the byte-identical instance
  (fingerprint-stable across runs and processes),
* generating a subset of tables yields exactly the rows the full run
  would (no cross-table RNG coupling), and
* foreign keys are consistent by construction — child keys are drawn from
  the parent's key range, which depends only on the scale factor.

Cardinalities follow the TPC-H specification (region 5, nation 25,
supplier 10 000·SF, part 200 000·SF, partsupp 4/part, customer
150 000·SF, orders 1 500 000·SF, lineitem 1–7 per order).  Values are
plausible rather than spec-exact: the similarity measures only care about
value equality, null placement, and key structure.

Incompleteness and dirtiness are injected on top, seeded separately:
``null_rate`` replaces non-key cells with fresh labeled nulls (via the
``nulls=`` masks of :meth:`Instance.from_columns`, so the instance arrives
columnar), and ``violation_rate`` plants primary-key duplicates and
dangling foreign keys — the constraint-violating instances the paper's
similarity measures are designed to compare.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Mapping

from ..core.errors import FormatError, SchemaError
from ..core.instance import Instance
from ..core.schema import RelationSchema, Schema
from ..core.values import Value, is_null

TPCH_TABLES = (
    "region",
    "nation",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)
"""All eight TPC-H tables, in dependency (and generation) order."""

TPCH_SCHEMAS: dict[str, RelationSchema] = {
    "region": RelationSchema(
        "region", ("r_regionkey", "r_name", "r_comment")
    ),
    "nation": RelationSchema(
        "nation", ("n_nationkey", "n_name", "n_regionkey", "n_comment")
    ),
    "supplier": RelationSchema(
        "supplier",
        (
            "s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
            "s_acctbal", "s_comment",
        ),
    ),
    "part": RelationSchema(
        "part",
        (
            "p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
            "p_container", "p_retailprice", "p_comment",
        ),
    ),
    "partsupp": RelationSchema(
        "partsupp",
        (
            "ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
            "ps_comment",
        ),
    ),
    "customer": RelationSchema(
        "customer",
        (
            "c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
            "c_acctbal", "c_mktsegment", "c_comment",
        ),
    ),
    "orders": RelationSchema(
        "orders",
        (
            "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
            "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
            "o_comment",
        ),
    ),
    "lineitem": RelationSchema(
        "lineitem",
        (
            "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
            "l_quantity", "l_extendedprice", "l_discount", "l_tax",
            "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
            "l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment",
        ),
    ),
}
"""Relation schema of each table (standard TPC-H column lists)."""

TPCH_KEYS: dict[str, tuple[str, ...]] = {
    "region": ("r_regionkey",),
    "nation": ("n_nationkey",),
    "supplier": ("s_suppkey",),
    "part": ("p_partkey",),
    "partsupp": ("ps_partkey", "ps_suppkey"),
    "customer": ("c_custkey",),
    "orders": ("o_orderkey",),
    "lineitem": ("l_orderkey", "l_linenumber"),
}
"""Primary key attributes per table."""

TPCH_FKS: dict[str, tuple[tuple[str, str, str], ...]] = {
    "nation": (("n_regionkey", "region", "r_regionkey"),),
    "supplier": (("s_nationkey", "nation", "n_nationkey"),),
    "partsupp": (
        ("ps_partkey", "part", "p_partkey"),
        ("ps_suppkey", "supplier", "s_suppkey"),
    ),
    "customer": (("c_nationkey", "nation", "n_nationkey"),),
    "orders": (("o_custkey", "customer", "c_custkey"),),
    "lineitem": (
        ("l_orderkey", "orders", "o_orderkey"),
        ("l_partkey", "part", "p_partkey"),
        ("l_suppkey", "supplier", "s_suppkey"),
    ),
}
"""Foreign keys: ``(attribute, parent_table, parent_attribute)`` per table."""

_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_CONTAINERS = ("SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX")
_TYPES = (
    "ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED COPPER",
    "STANDARD POLISHED TIN", "STANDARD PLATED BRASS",
    "PROMO BURNISHED NICKEL", "PROMO ANODIZED TIN",
    "LARGE BRUSHED STEEL", "SMALL PLATED COPPER",
)
_NOUNS = (
    "almond", "aquamarine", "azure", "beige", "bisque", "black", "blue",
    "blush", "brown", "burlywood", "chartreuse", "chiffon", "chocolate",
    "coral", "cornflower", "cream", "cyan", "dark", "dim", "dodger",
)
_INSTRUCTIONS = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
)
_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

_SUPPLIERS_PER_PART = 4
_LINES_PER_ORDER = (1, 7)  # uniform; mean 4 lines per order as in dbgen


def tpch_cardinality(table: str, sf: float) -> int:
    """Planned row count of ``table`` at scale factor ``sf``.

    For ``lineitem`` this is the *expected* count (the per-order line count
    is drawn uniformly from 1–7); every other table is exact.
    """
    if table not in TPCH_SCHEMAS:
        raise SchemaError(f"unknown TPC-H table {table!r}")
    if sf <= 0:
        raise ValueError(f"scale factor must be positive, got {sf}")
    if table == "region":
        return len(_REGIONS)
    if table == "nation":
        return len(_NATIONS)
    if table == "supplier":
        return max(1, round(10_000 * sf))
    if table == "part":
        return max(1, round(200_000 * sf))
    if table == "partsupp":
        return tpch_cardinality("part", sf) * _SUPPLIERS_PER_PART
    if table == "customer":
        return max(1, round(150_000 * sf))
    if table == "orders":
        return max(1, round(1_500_000 * sf))
    # lineitem: expectation of uniform 1..7 lines per order
    lo, hi = _LINES_PER_ORDER
    return tpch_cardinality("orders", sf) * (lo + hi) // 2


def _table_rng(seed: int, table: str, stage: str = "gen") -> random.Random:
    return random.Random(f"tpch:{seed}:{stage}:{table}")


def _money(rng: random.Random, lo_cents: int, hi_cents: int) -> float:
    """A price with non-zero cents, so no float ever equals an integer key.

    An integral float (``904.0``) would compare ``==`` to the int ``904``
    and share its code in the columnar coder, forcing a per-cell override;
    keeping cents non-zero keeps every generated instance override-free
    and therefore on the exact columnar fast lanes.
    """
    cents = rng.randrange(lo_cents, hi_cents)
    if cents % 100 == 0:
        cents += 1
    return cents / 100


def _date(rng: random.Random) -> str:
    year = 1992 + rng.randrange(7)
    month = 1 + rng.randrange(12)
    day = 1 + rng.randrange(28)
    return f"{year:04d}-{month:02d}-{day:02d}"


def _comment(rng: random.Random) -> str:
    return (
        f"{rng.choice(_NOUNS)} {rng.choice(_NOUNS)} {rng.randrange(10_000)}"
    )


def _phone(rng: random.Random, nation_key: int) -> str:
    return (
        f"{10 + nation_key}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}"
    )


def _part_suppliers(part_key: int, n_suppliers: int) -> list[int]:
    """The (deterministic) supplier keys stocking a part, dbgen-style."""
    step = n_suppliers // _SUPPLIERS_PER_PART + 1
    return [
        ((part_key + offset * step) % n_suppliers) + 1
        for offset in range(min(_SUPPLIERS_PER_PART, n_suppliers))
    ]


def _generate_table(
    table: str, sf: float, seed: int
) -> dict[str, list[Value]]:
    """Column map of one table; independent of every other table's stream."""
    rng = _table_rng(seed, table)
    schema = TPCH_SCHEMAS[table]
    columns: dict[str, list[Value]] = {a: [] for a in schema.attributes}

    def emit(row: Mapping[str, Value]) -> None:
        for attribute in schema.attributes:
            columns[attribute].append(row[attribute])

    if table == "region":
        for key, region in enumerate(_REGIONS):
            emit({
                "r_regionkey": key,
                "r_name": region,
                "r_comment": _comment(rng),
            })
    elif table == "nation":
        for key, nation in enumerate(_NATIONS):
            emit({
                "n_nationkey": key,
                "n_name": nation,
                "n_regionkey": key % len(_REGIONS),
                "n_comment": _comment(rng),
            })
    elif table == "supplier":
        for key in range(1, tpch_cardinality("supplier", sf) + 1):
            nation = rng.randrange(len(_NATIONS))
            emit({
                "s_suppkey": key,
                "s_name": f"Supplier#{key:09d}",
                "s_address": f"addr {rng.randrange(1_000_000)}",
                "s_nationkey": nation,
                "s_phone": _phone(rng, nation),
                "s_acctbal": _money(rng, -99_999, 999_999),
                "s_comment": _comment(rng),
            })
    elif table == "part":
        for key in range(1, tpch_cardinality("part", sf) + 1):
            mfgr = 1 + rng.randrange(5)
            emit({
                "p_partkey": key,
                "p_name": f"{rng.choice(_NOUNS)} {rng.choice(_NOUNS)}",
                "p_mfgr": f"Manufacturer#{mfgr}",
                "p_brand": f"Brand#{mfgr}{1 + rng.randrange(5)}",
                "p_type": rng.choice(_TYPES),
                "p_size": 1 + rng.randrange(50),
                "p_container": rng.choice(_CONTAINERS),
                "p_retailprice": _money(rng, 90_000, 200_000),
                "p_comment": _comment(rng),
            })
    elif table == "partsupp":
        n_suppliers = tpch_cardinality("supplier", sf)
        for part_key in range(1, tpch_cardinality("part", sf) + 1):
            for supp_key in _part_suppliers(part_key, n_suppliers):
                emit({
                    "ps_partkey": part_key,
                    "ps_suppkey": supp_key,
                    "ps_availqty": 1 + rng.randrange(9999),
                    "ps_supplycost": _money(rng, 100, 100_000),
                    "ps_comment": _comment(rng),
                })
    elif table == "customer":
        for key in range(1, tpch_cardinality("customer", sf) + 1):
            nation = rng.randrange(len(_NATIONS))
            emit({
                "c_custkey": key,
                "c_name": f"Customer#{key:09d}",
                "c_address": f"addr {rng.randrange(1_000_000)}",
                "c_nationkey": nation,
                "c_phone": _phone(rng, nation),
                "c_acctbal": _money(rng, -99_999, 999_999),
                "c_mktsegment": rng.choice(_SEGMENTS),
                "c_comment": _comment(rng),
            })
    elif table == "orders":
        n_customers = tpch_cardinality("customer", sf)
        for key in range(1, tpch_cardinality("orders", sf) + 1):
            emit({
                "o_orderkey": key,
                "o_custkey": 1 + rng.randrange(n_customers),
                "o_orderstatus": rng.choice(("O", "F", "P")),
                "o_totalprice": _money(rng, 100_000, 50_000_000),
                "o_orderdate": _date(rng),
                "o_orderpriority": rng.choice(_PRIORITIES),
                "o_clerk": f"Clerk#{1 + rng.randrange(1000):09d}",
                "o_shippriority": 0,
                "o_comment": _comment(rng),
            })
    elif table == "lineitem":
        n_orders = tpch_cardinality("orders", sf)
        n_parts = tpch_cardinality("part", sf)
        n_suppliers = tpch_cardinality("supplier", sf)
        lo, hi = _LINES_PER_ORDER
        for order_key in range(1, n_orders + 1):
            for line_number in range(1, rng.randrange(lo, hi + 1) + 1):
                part_key = 1 + rng.randrange(n_parts)
                stocked = _part_suppliers(part_key, n_suppliers)
                quantity = 1 + rng.randrange(50)
                emit({
                    "l_orderkey": order_key,
                    "l_partkey": part_key,
                    "l_suppkey": rng.choice(stocked),
                    "l_linenumber": line_number,
                    "l_quantity": quantity,
                    "l_extendedprice": _money(
                        rng, 90_000 * quantity, 90_000 * quantity + 10_000
                    ),
                    "l_discount": rng.randrange(11) / 100 + 0.001,
                    "l_tax": rng.randrange(9) / 100 + 0.001,
                    "l_returnflag": rng.choice(("R", "A", "N")),
                    "l_linestatus": rng.choice(("O", "F")),
                    "l_shipdate": _date(rng),
                    "l_commitdate": _date(rng),
                    "l_receiptdate": _date(rng),
                    "l_shipinstruct": rng.choice(_INSTRUCTIONS),
                    "l_shipmode": rng.choice(_MODES),
                    "l_comment": _comment(rng),
                })
    else:  # pragma: no cover - table names are validated upstream
        raise SchemaError(f"unknown TPC-H table {table!r}")
    return columns


def _inject_violations(
    tables: Mapping[str, dict[str, list[Value]]],
    rate: float,
    seed: int,
) -> None:
    """Plant PK duplicates and dangling FKs in-place, alternating kinds.

    ``rate`` is the fraction of each table's rows turned into (or appended
    as) a violation.  PK duplicates copy an existing row's key columns and
    perturb one non-key cell; dangling FKs point a child key past the
    parent's key range.  Both kinds are deterministic per ``seed``.
    """
    for table in TPCH_TABLES:
        columns = tables.get(table)
        if columns is None:
            continue
        schema = TPCH_SCHEMAS[table]
        n_rows = len(columns[schema.attributes[0]])
        count = int(round(rate * n_rows))
        if count <= 0 or n_rows == 0:
            continue
        rng = _table_rng(seed, table, stage="violations")
        key_attrs = set(TPCH_KEYS[table])
        non_key = [a for a in schema.attributes if a not in key_attrs]
        fks = TPCH_FKS.get(table, ())
        for index in range(count):
            if fks and (index % 2 == 1 or not non_key):
                # Dangling FK: point past the parent key range.
                attribute, parent, _ = fks[rng.randrange(len(fks))]
                row = rng.randrange(n_rows)
                columns[attribute][row] = (
                    10 ** 9 + rng.randrange(10 ** 6)
                )
            else:
                # PK duplicate: clone a row, perturb one non-key cell.
                source = rng.randrange(n_rows)
                for attribute in schema.attributes:
                    columns[attribute].append(columns[attribute][source])
                victim = rng.choice(non_key)
                columns[victim][-1] = f"dup {rng.randrange(10 ** 6)}"


def _null_masks(
    tables: Mapping[str, dict[str, list[Value]]],
    rate: float,
    seed: int,
) -> dict[str, dict[str, list[int]]]:
    """Row indices to null out per table/attribute (non-key cells only)."""
    masks: dict[str, dict[str, list[int]]] = {}
    for table in TPCH_TABLES:
        columns = tables.get(table)
        if columns is None:
            continue
        rng = _table_rng(seed, table, stage="nulls")
        key_attrs = set(TPCH_KEYS[table])
        schema = TPCH_SCHEMAS[table]
        per_attr: dict[str, list[int]] = {}
        for attribute in schema.attributes:
            if attribute in key_attrs:
                continue
            column = columns[attribute]
            rows = [
                row for row in range(len(column)) if rng.random() < rate
            ]
            if rows:
                per_attr[attribute] = rows
        if per_attr:
            masks[table] = per_attr
    return masks


def generate_tpch(
    sf: float,
    seed: int = 0,
    *,
    tables: Iterable[str] | None = None,
    null_rate: float = 0.0,
    violation_rate: float = 0.0,
    name: str | None = None,
) -> Instance:
    """A multi-relation TPC-H instance at scale factor ``sf``.

    Parameters
    ----------
    sf:
        Scale factor; ``0.01`` is roughly 60 k tuples, ``0.1`` roughly
        600 k.  Cardinalities follow :func:`tpch_cardinality`.
    seed:
        Master seed.  Each table draws from its own derived stream, so
        ``tables=("orders",)`` produces the identical orders rows the
        full eight-table run would.
    tables:
        Subset of :data:`TPCH_TABLES` to generate (default: all eight).
    null_rate:
        Per-cell probability of replacing a non-key cell with a fresh
        labeled null (incompleteness injection).
    violation_rate:
        Per-row rate of planted constraint violations (PK duplicates and
        dangling FKs, alternating).
    name:
        Instance name; defaults to ``tpch-sf{sf}-s{seed}``.

    Examples
    --------
    >>> inst = generate_tpch(0.001, seed=7, tables=("region", "nation"))
    >>> len(inst.relation("region")), len(inst.relation("nation"))
    (5, 25)
    """
    if tables is None:
        selected = TPCH_TABLES
    else:
        selected = tuple(tables)
        unknown = [t for t in selected if t not in TPCH_SCHEMAS]
        if unknown:
            raise SchemaError(f"unknown TPC-H tables {unknown!r}")
    if not 0.0 <= null_rate < 1.0:
        raise ValueError(f"null_rate must be in [0, 1), got {null_rate}")
    if not 0.0 <= violation_rate < 1.0:
        raise ValueError(
            f"violation_rate must be in [0, 1), got {violation_rate}"
        )
    generated = {
        table: _generate_table(table, sf, seed)
        for table in TPCH_TABLES
        if table in selected
    }
    if violation_rate:
        _inject_violations(generated, violation_rate, seed)
    masks = _null_masks(generated, null_rate, seed) if null_rate else None
    schema = Schema([TPCH_SCHEMAS[t] for t in TPCH_TABLES if t in generated])
    return Instance.from_columns(
        schema,
        generated,
        nulls=masks,
        name=f"tpch-sf{sf}-s{seed}" if name is None else name,
    )


def fk_violations(instance: Instance) -> dict[str, int]:
    """Dangling-FK count per ``child.attribute -> parent`` edge.

    Null child cells are not counted — a labeled null is an unknown value,
    not a known-bad reference.  Only edges whose parent relation is present
    in the instance are checked.
    """
    counts: dict[str, int] = {}
    present = set(instance.schema.relation_names())
    for table, edges in TPCH_FKS.items():
        if table not in present:
            continue
        child = instance.relation(table)
        for attribute, parent, parent_attribute in edges:
            if parent not in present:
                continue
            parent_keys = {
                t[parent_attribute]
                for t in instance.relation(parent)
                if not is_null(t[parent_attribute])
            }
            dangling = 0
            for t in child:
                value = t[attribute]
                if not is_null(value) and value not in parent_keys:
                    dangling += 1
            if dangling:
                counts[f"{table}.{attribute} -> {parent}"] = dangling
    return counts


def pk_duplicates(instance: Instance) -> dict[str, int]:
    """Duplicated primary-key count per table present in the instance."""
    counts: dict[str, int] = {}
    for table, key in TPCH_KEYS.items():
        if table not in instance.schema.relation_names():
            continue
        seen: dict[tuple, int] = {}
        for t in instance.relation(table):
            values = tuple(t[a] for a in key)
            if any(is_null(v) for v in values):
                continue
            seen[values] = seen.get(values, 0) + 1
        duplicated = sum(n - 1 for n in seen.values() if n > 1)
        if duplicated:
            counts[table] = duplicated
    return counts


# -- .tbl interchange --------------------------------------------------------

_INT_COLUMNS = frozenset(
    a
    for schema in TPCH_SCHEMAS.values()
    for a in schema.attributes
    if a.endswith("key")
    or a in (
        "l_linenumber", "l_quantity", "p_size", "ps_availqty",
        "o_shippriority",
    )
)
_FLOAT_COLUMNS = frozenset((
    "s_acctbal", "c_acctbal", "p_retailprice", "ps_supplycost",
    "o_totalprice", "l_extendedprice", "l_discount", "l_tax",
))
_TBL_NULL = "_N"
"""Cell marker for labeled nulls in ``.tbl`` files (``_N:<label>``)."""


def _cast_cell(attribute: str, text: str) -> Value:
    if text.startswith(f"{_TBL_NULL}:"):
        from ..core.values import LabeledNull

        label = text[len(_TBL_NULL) + 1:]
        if not label:
            raise FormatError(f"empty null label in column {attribute!r}")
        return LabeledNull(label)
    if attribute in _INT_COLUMNS:
        return int(text)
    if attribute in _FLOAT_COLUMNS:
        return float(text)
    return text


def write_tbl(instance: Instance, directory: str | Path) -> list[Path]:
    """Write each relation as a dbgen-style ``<table>.tbl`` file.

    Pipe-separated with a trailing pipe, no header, labeled nulls as
    ``_N:<label>`` cells.  Returns the written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for relation in instance.relations():
        path = directory / f"{relation.schema.name}.tbl"
        with open(path, "w") as handle:
            for t in relation:
                cells = [
                    f"{_TBL_NULL}:{v.label}" if is_null(v) else str(v)
                    for v in t.values
                ]
                handle.write("|".join(cells) + "|\n")
        written.append(path)
    return written


def read_tbl(
    directory: str | Path,
    tables: Iterable[str] | None = None,
    name: str = "tpch",
) -> Instance:
    """Read ``<table>.tbl`` files back into a multi-relation instance.

    Numeric columns are cast back per the TPC-H schema (key and measure
    columns), so ``write_tbl`` → ``read_tbl`` round-trips the instance
    content exactly (tuple ids are regenerated).
    """
    directory = Path(directory)
    if tables is None:
        selected = tuple(
            t for t in TPCH_TABLES if (directory / f"{t}.tbl").exists()
        )
        if not selected:
            raise FormatError(f"no .tbl files found in {directory}")
    else:
        selected = tuple(tables)
        unknown = [t for t in selected if t not in TPCH_SCHEMAS]
        if unknown:
            raise SchemaError(f"unknown TPC-H tables {unknown!r}")
    columns: dict[str, dict[str, list[Value]]] = {}
    for table in selected:
        schema = TPCH_SCHEMAS[table]
        per_attr: dict[str, list[Value]] = {a: [] for a in schema.attributes}
        path = directory / f"{table}.tbl"
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                cells = line.split("|")
                if cells and cells[-1] == "":
                    cells.pop()  # trailing pipe
                if len(cells) != schema.arity:
                    raise FormatError(
                        f"{path.name}:{line_number}: expected "
                        f"{schema.arity} cells, got {len(cells)}"
                    )
                for attribute, text in zip(schema.attributes, cells):
                    try:
                        per_attr[attribute].append(
                            _cast_cell(attribute, text)
                        )
                    except ValueError as error:
                        raise FormatError(
                            f"{path.name}:{line_number}: bad value "
                            f"{text!r} for {attribute!r}: {error}"
                        ) from None
        columns[table] = per_attr
    schema = Schema([TPCH_SCHEMAS[t] for t in TPCH_TABLES if t in columns])
    return Instance.from_columns(schema, columns, name=name)


__all__ = [
    "TPCH_FKS",
    "TPCH_KEYS",
    "TPCH_SCHEMAS",
    "TPCH_TABLES",
    "fk_violations",
    "generate_tpch",
    "pk_duplicates",
    "read_tbl",
    "tpch_cardinality",
    "write_tbl",
]
