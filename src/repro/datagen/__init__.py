"""Synthetic datasets and gold-mapping-tracked perturbations (Sec. 7.1)."""

from .perturb import PerturbationConfig, PerturbationScenario, perturb
from .synthetic import (
    PROFILES,
    ColumnSpec,
    DatasetProfile,
    dataset_statistics,
    generate_dataset,
    profile,
)

__all__ = [
    "PROFILES",
    "ColumnSpec",
    "DatasetProfile",
    "PerturbationConfig",
    "PerturbationScenario",
    "dataset_statistics",
    "generate_dataset",
    "perturb",
    "profile",
]
