"""Synthetic datasets and gold-mapping-tracked perturbations (Sec. 7.1)."""

from .perturb import PerturbationConfig, PerturbationScenario, perturb
from .synthetic import (
    PROFILES,
    ColumnSpec,
    DatasetProfile,
    dataset_statistics,
    generate_dataset,
    profile,
)
from .tpch import (
    TPCH_FKS,
    TPCH_KEYS,
    TPCH_SCHEMAS,
    TPCH_TABLES,
    fk_violations,
    generate_tpch,
    pk_duplicates,
    read_tbl,
    tpch_cardinality,
    write_tbl,
)

__all__ = [
    "PROFILES",
    "TPCH_FKS",
    "TPCH_KEYS",
    "TPCH_SCHEMAS",
    "TPCH_TABLES",
    "ColumnSpec",
    "DatasetProfile",
    "PerturbationConfig",
    "PerturbationScenario",
    "dataset_statistics",
    "fk_violations",
    "generate_dataset",
    "generate_tpch",
    "perturb",
    "pk_duplicates",
    "profile",
    "read_tbl",
    "tpch_cardinality",
    "write_tbl",
]
