"""Synthetic dataset generators matching the paper's Table 1 profiles.

The paper evaluates on six datasets: Doctors (synthetic), Bikeshare, GitHub,
Bus, Iris, and NBA.  The real CSV downloads are not redistributable here, so
each dataset is replaced by a seeded generator that reproduces the
statistics the algorithms are sensitive to (Table 1): row count, arity, and
the distinct-value profile per column (unique identifiers vs. skewed
categorical domains).  See DESIGN.md ("Substitutions") for why this
preserves the experimental behaviour: the comparison algorithms only observe
(constant, null) patterns and value collisions.

Each profile lists per-column specs; generation is O(rows · arity) and fully
deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.schema import RelationSchema
from ..utils.rand import make_rng, zipf_index

KIND_UNIQUE = "unique"
KIND_CATEGORICAL = "categorical"
KIND_NUMERIC = "numeric"
KIND_DERIVED = "derived"


@dataclass(frozen=True)
class ColumnSpec:
    """Specification of one generated column.

    Attributes
    ----------
    name:
        Attribute name.
    kind:
        ``"unique"`` (one distinct value per row, like an id or timestamp),
        ``"categorical"`` (a skewed domain of ``domain`` values),
        ``"numeric"`` (integers in ``[0, domain)``), or ``"derived"`` (a
        value functionally determined by the ``source`` column — this is how
        profiles encode the functional dependencies the cleaning experiment
        relies on, e.g. ``RouteId → RouteName``).
    domain:
        Domain size for categorical/numeric columns; ignored otherwise.
    skew:
        Skew exponent for categorical sampling (0 = uniform; larger =
        more concentrated on early domain values).
    source:
        For derived columns: the determining column's name (must appear
        earlier in the profile).
    """

    name: str
    kind: str
    domain: int = 0
    skew: float = 0.0
    source: str = ""


@dataclass(frozen=True)
class DatasetProfile:
    """A dataset profile: name, default size, and column specs."""

    name: str
    relation: str
    default_rows: int
    columns: tuple[ColumnSpec, ...]

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def attribute_names(self) -> tuple[str, ...]:
        """The attribute names in column order."""
        return tuple(column.name for column in self.columns)

    def functional_dependencies(self):
        """The FDs the profile guarantees (from its derived columns).

        Returns :class:`repro.cleaning.FunctionalDependency` objects; these
        are the constraints the Table 5 cleaning experiment declares.
        """
        from ..cleaning.constraints import FunctionalDependency

        return [
            FunctionalDependency(self.relation, (column.source,), column.name)
            for column in self.columns
            if column.kind == KIND_DERIVED
        ]


def _cat(name: str, domain: int, skew: float = 0.8) -> ColumnSpec:
    return ColumnSpec(name, KIND_CATEGORICAL, domain=domain, skew=skew)


def _uniq(name: str) -> ColumnSpec:
    return ColumnSpec(name, KIND_UNIQUE)


def _num(name: str, domain: int) -> ColumnSpec:
    return ColumnSpec(name, KIND_NUMERIC, domain=domain)


def _derived(name: str, source: str) -> ColumnSpec:
    return ColumnSpec(name, KIND_DERIVED, source=source)


#: The six dataset profiles of Table 1.  Rows / arity match the paper;
#: distinct-value counts approximate the reported ``#Distinct val.``.
PROFILES: dict[str, DatasetProfile] = {
    # Doctors: 20000 rows, 5 attrs, ~44600 distinct (name/npi high card).
    "doct": DatasetProfile(
        "doct",
        "Doctor",
        20000,
        (
            _uniq("Name"),
            _cat("Spec", 60, skew=0.7),
            _cat("Hospital", 12000, skew=0.5),
            _cat("City", 12000, skew=0.5),
            _cat("County", 600, skew=0.7),
        ),
    ),
    # Bikeshare: 10000 rows, 9 attrs, ~23974 distinct.
    "bike": DatasetProfile(
        "bike",
        "Bikeshare",
        10000,
        (
            _num("Duration", 6000),
            _uniq("StartDate"),
            _cat("EndDate", 8000, skew=0.2),
            _cat("StartStationId", 500, skew=0.8),
            _derived("StartStation", "StartStationId"),
            _cat("EndStationId", 500, skew=0.8),
            _derived("EndStation", "EndStationId"),
            _cat("BikeNumber", 1200, skew=0.4),
            _cat("MemberType", 2, skew=0.0),
        ),
    ),
    # GitHub: 10000 rows, 19 attrs, ~39142 distinct.
    "git": DatasetProfile(
        "git",
        "GitRepo",
        10000,
        (
            _uniq("RepoUrl"),
            _uniq("CommitSha"),
            _cat("Owner", 6000, skew=0.3),
            _cat("AuthorEmail", 6000, skew=0.3),
            _cat("AuthorName", 5000, skew=0.4),
            _cat("Language", 40, skew=0.9),
            _num("Stars", 2000),
            _num("Forks", 1500),
            _num("Watchers", 1200),
            _num("OpenIssues", 500),
            _num("SizeKb", 4000),
            _cat("License", 20, skew=0.8),
            _cat("DefaultBranch", 8, skew=0.9),
            _cat("HasWiki", 2, skew=0.0),
            _cat("HasPages", 2, skew=0.0),
            _cat("Fork", 2, skew=0.0),
            _cat("CreatedYear", 15, skew=0.3),
            _cat("UpdatedYear", 10, skew=0.3),
            _cat("Topic", 300, skew=0.7),
        ),
    ),
    # Bus: 20000 rows, 25 attrs, ~29930 distinct.
    "bus": DatasetProfile(
        "bus",
        "Bus",
        20000,
        (
            _uniq("RecordId"),
            _cat("RouteId", 2000, skew=0.3),
            _derived("RouteName", "RouteId"),
            _cat("Direction", 2, skew=0.0),
            _cat("StopId", 2500, skew=0.4),
            _derived("StopName", "StopId"),
            _cat("Operator", 12, skew=0.8),
            _cat("Garage", 40, skew=0.6),
            _cat("VehicleId", 1500, skew=0.3),
            _cat("DriverId", 900, skew=0.3),
            _cat("ShiftType", 4, skew=0.2),
            _cat("DayType", 3, skew=0.2),
            _num("ScheduledTime", 720),
            _num("ActualTime", 720),
            _num("DelayMinutes", 120),
            _cat("Borough", 6, skew=0.5),
            _cat("ZipCode", 250, skew=0.5),
            _cat("FareZone", 8, skew=0.4),
            _cat("AccessibleFlag", 2, skew=0.0),
            _cat("ExpressFlag", 2, skew=0.0),
            _num("PassengerCount", 90),
            _num("Capacity", 6),
            _cat("WeatherCode", 10, skew=0.6),
            _cat("Season", 4, skew=0.0),
            _cat("Status", 5, skew=0.8),
        ),
    ),
    # Iris: 120 rows, 5 attrs, ~76 distinct values.
    "iris": DatasetProfile(
        "iris",
        "Iris",
        120,
        (
            _cat("SepalLength", 35, skew=0.2),
            _cat("SepalWidth", 23, skew=0.2),
            _cat("PetalLength", 43, skew=0.2),
            _cat("PetalWidth", 22, skew=0.2),
            _cat("Species", 3, skew=0.0),
        ),
    ),
    # NBA: 9360 rows, 11 attrs, ~2823 distinct values.
    "nba": DatasetProfile(
        "nba",
        "Nba",
        9360,
        (
            _cat("Player", 480, skew=0.3),
            _cat("Team", 30, skew=0.0),
            _cat("Season", 70, skew=0.2),
            _num("Games", 83),
            _num("Points", 2400),
            _num("Rebounds", 1200),
            _num("Assists", 900),
            _num("Steals", 250),
            _num("Blocks", 350),
            _cat("Position", 5, skew=0.2),
            _cat("College", 320, skew=0.5),
        ),
    ),
}


def profile(name: str) -> DatasetProfile:
    """Return the profile called ``name`` (``doct``/``bike``/``git``/...)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset profile {name!r}; available: {sorted(PROFILES)}"
        ) from None


def _column_value(spec: ColumnSpec, row_index: int, scale: float, rng,
                  row_so_far: dict):
    if spec.kind == KIND_UNIQUE:
        return f"{spec.name}#{row_index}"
    if spec.kind == KIND_DERIVED:
        # Functionally determined by the source column: the profile-level
        # FDs (RouteId → RouteName etc.) hold by construction.
        return f"{spec.name}:{row_so_far[spec.source]}"
    if spec.kind == KIND_NUMERIC:
        domain = max(1, round(spec.domain * min(1.0, scale)))
        return rng.randrange(domain)
    # Categorical: when generating fewer rows than the profile default,
    # shrink the domain proportionally so collision rates (and hence the
    # distinct-value ratio of Table 1) are preserved at every size.
    domain = max(1, round(spec.domain * min(1.0, scale)))
    index = zipf_index(rng, domain, skew=1.0 + spec.skew)
    return f"{spec.name}_{index}"


def generate_dataset(
    name: str,
    rows: int | None = None,
    seed: int = 0,
    instance_name: str | None = None,
) -> Instance:
    """Generate an instance for dataset profile ``name``.

    Parameters
    ----------
    name:
        Profile name (see :data:`PROFILES`).
    rows:
        Number of rows; defaults to the profile's paper size.
    seed:
        RNG seed; identical seeds yield identical instances.

    Examples
    --------
    >>> inst = generate_dataset("iris", rows=10, seed=1)
    >>> len(inst), inst.schema.relation("Iris").arity
    (10, 5)
    """
    spec = profile(name)
    rng = make_rng(seed)
    count = spec.default_rows if rows is None else rows
    scale = count / spec.default_rows
    columns_out: list[list] = [[] for _ in spec.columns]
    for row_index in range(count):
        row_so_far: dict = {}
        for column in spec.columns:
            row_so_far[column.name] = _column_value(
                column, row_index, scale, rng, row_so_far
            )
        for position, column in enumerate(spec.columns):
            columns_out[position].append(row_so_far[column.name])
    return Instance.from_columns(
        RelationSchema(spec.relation, spec.attribute_names()),
        columns_out,
        name=instance_name if instance_name is not None else name,
        id_prefix="t",
    )


def dataset_statistics(instance: Instance) -> dict[str, int]:
    """The Table 1 statistics of an instance: rows, distinct values, attrs.

    ``attributes`` is the total arity across relations (for the
    single-relation experiment datasets this is simply the column count).
    """
    return {
        "rows": len(instance),
        "distinct_values": instance.distinct_value_count(),
        "attributes": instance.schema.total_arity(),
    }
