"""Table 1 — statistics for the (synthetic stand-ins of the) datasets.

Regenerates the rows / #distinct values / attrs table for the six dataset
profiles.  At ``scale="paper"`` the generators run at the paper's original
row counts; smaller scales shrink rows (and, proportionally, categorical
domains) while preserving the distinct-value ratios.
"""

from __future__ import annotations

from ..datagen.synthetic import PROFILES, dataset_statistics, generate_dataset
from .harness import Out, emit_table

#: Paper-reported values for side-by-side comparison (rows, distinct, attrs).
PAPER_TABLE1 = {
    "doct": (20000, 44600, 5),
    "bike": (10000, 23974, 9),
    "git": (10000, 39142, 19),
    "bus": (20000, 29930, 25),
    "iris": (120, 76, 5),
    "nba": (9360, 2823, 11),
}

SCALE_FRACTION = {"quick": 0.02, "default": 0.1, "paper": 1.0}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Generate every dataset and tabulate its Table 1 statistics."""
    fraction = SCALE_FRACTION[scale]
    rows = []
    for name, profile_spec in PROFILES.items():
        count = max(20, round(profile_spec.default_rows * fraction))
        instance = generate_dataset(name, rows=count, seed=seed)
        stats = dataset_statistics(instance)
        paper_rows, paper_distinct, paper_attrs = PAPER_TABLE1[name]
        rows.append(
            {
                "dataset": name,
                "rows": stats["rows"],
                "distinct": stats["distinct_values"],
                "attrs": stats["attributes"],
                "paper_rows": paper_rows,
                "paper_distinct": paper_distinct,
                "paper_attrs": paper_attrs,
            }
        )
    emit_table(
        out,
        ["Dataset", "Rows", "#Distinct", "Attrs",
         "Rows(paper)", "#Distinct(paper)", "Attrs(paper)"],
        [
            (
                r["dataset"], r["rows"], r["distinct"], r["attrs"],
                r["paper_rows"], r["paper_distinct"], r["paper_attrs"],
            )
            for r in rows
        ],
        title="Table 1: dataset statistics (generated vs. paper)",
    )
    return rows
