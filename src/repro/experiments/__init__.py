"""Experiment drivers regenerating every table and figure of Sec. 7."""

from . import (
    ablation,
    figure8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from .harness import SCALES, SizeLadder, emit_table, format_table

EXPERIMENTS = {
    "ablation": ablation.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "figure8": figure8.run,
}

__all__ = [
    "EXPERIMENTS",
    "ablation",
    "SCALES",
    "SizeLadder",
    "emit_table",
    "figure8",
    "format_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]
