"""Table 5 — evaluating data-cleaning systems with three metrics.

A clean Bus instance is corrupted with FD-violating errors (BART-style),
repaired by four system surrogates, and each repair is scored with:

* F1 over dirty/changed cells (punishes labeled nulls),
* F1-instance (cell accuracy over the whole instance),
* the signature similarity (null-aware).

The claim reproduced: the signature score keeps the F1 ranking while giving
fair credit for nulls — Sampling's valid-but-divergent repairs score low on
F1 yet its instance is almost entirely clean.
"""

from __future__ import annotations

from ..cleaning.errorgen import inject_errors
from ..cleaning.metrics import evaluate_repair
from ..cleaning.systems import SYSTEM_PRESETS, repair
from ..datagen.synthetic import generate_dataset, profile
from .harness import Out, emit_table

ROWS = {"quick": 1000, "default": 5000, "paper": 20000}

#: Paper-reported Table 5 values for side-by-side comparison.
PAPER_TABLE5 = {
    "holistic": (0.853, 0.999, 0.994),
    "holoclean": (0.857, 0.999, 0.998),
    "llunatic": (0.997, 0.999, 0.999),
    "sampling": (0.406, 0.998, 0.964),
}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Regenerate Table 5 at the requested scale."""
    rows_count = ROWS[scale]
    bus = generate_dataset("bus", rows=rows_count, seed=seed)
    fds = profile("bus").functional_dependencies()
    dirty = inject_errors(bus, fds, error_rate=0.05, seed=seed + 1)

    rows = []
    for index, system_name in enumerate(sorted(SYSTEM_PRESETS)):
        result = repair(dirty.dirty, fds, system_name, seed=seed + 10 + index)
        evaluation = evaluate_repair(
            bus,
            result.repaired,
            dirty.error_cells,
            set(result.changed_cells),
            system_name,
        )
        paper_f1, paper_f1_inst, paper_sig = PAPER_TABLE5[system_name]
        rows.append(
            {
                "system": system_name,
                "f1": evaluation.f1,
                "f1_instance": evaluation.f1_instance,
                "signature": evaluation.signature,
                "paper_f1": paper_f1,
                "paper_f1_instance": paper_f1_inst,
                "paper_signature": paper_sig,
                "errors": len(dirty.errors),
                "changed": len(result.changed_cells),
            }
        )
    emit_table(
        out,
        ["System", "F1", "F1 Inst.", "Sig Score",
         "F1(paper)", "F1 Inst.(paper)", "Sig(paper)"],
        [
            (
                r["system"],
                f"{r['f1']:.3f}", f"{r['f1_instance']:.3f}",
                f"{r['signature']:.3f}",
                f"{r['paper_f1']:.3f}", f"{r['paper_f1_instance']:.3f}",
                f"{r['paper_signature']:.3f}",
            )
            for r in rows
        ],
        title=(
            f"Table 5: data cleaning on Bus ({rows_count} rows, "
            f"{len(dirty.errors)} injected errors)"
        ),
    )
    return rows
