"""Table 2 — Exact vs Signature, *modCell* 5%, functional & injective (1:1).

For each dataset/size, a (source, target) pair is produced by the modCell
perturbation with a known gold mapping.  The signature algorithm always
runs; the exact algorithm runs while the instance is small enough (a node
budget replaces the paper's 8-hour timeout), and beyond that the
score-by-construction stands in for the exact score — the starred entries of
the paper's table.

Reported per row: #T/#C/#V for source and target, the exact (or
constructed) score, the signature score, their difference, and both times.
"""

from __future__ import annotations

import time

from ..algorithms.exact import exact_compare
from ..algorithms.signature import signature_compare
from ..datagen.perturb import PerturbationConfig, perturb
from ..datagen.synthetic import generate_dataset
from ..mappings.constraints import MatchOptions
from .harness import (
    Out,
    SizeLadder,
    emit_table,
    outcome_marker,
    run_cells,
    summarize_counts,
)

DATASETS = ("doct", "bike", "git")

LADDER = SizeLadder(
    quick=(100, 200),
    default=(200, 500, 1000),
    paper=(500, 1000, 5000, 10000, 100000),
)

#: Largest instance the exact algorithm is attempted on, per scale.
EXACT_LIMIT = {"quick": 100, "default": 200, "paper": 1000}

#: Node budget standing in for the paper's 8-hour exact timeout, per scale.
EXACT_NODE_BUDGET = {"quick": 200_000, "default": 1_000_000, "paper": 5_000_000}


def _exact_time_cell(row: dict) -> str:
    """Render the Ex T(s) column; '†' marks a cut-short exact search.

    The marker now derives from the structured ``exact_outcome`` (node
    budget, wall-clock deadline, or cancellation — the paper's 8-hour
    timeout entries), falling back to the legacy ``exact_exhausted`` bool
    for rows produced by older checkpoints.
    """
    if row["exact_time"] is None:
        return "-"
    outcome = row.get("exact_outcome")
    if outcome is not None:
        suffix = outcome_marker(outcome)
    else:
        suffix = "" if row["exact_exhausted"] else "†"
    return f"{row['exact_time']:.2f}{suffix}"


def run_scenario(
    dataset: str,
    rows: int,
    config: PerturbationConfig,
    options: MatchOptions,
    run_exact: bool,
    node_budget: int = 200_000,
    deadline: float | None = None,
    executor=None,
) -> dict:
    """Execute one (dataset, size) cell shared by Tables 2 and 3.

    ``deadline`` bounds the exact search in wall-clock seconds on top of
    the node budget; a cut-short search leaves its lower-bound score in
    ``exact_lower_bound`` and its structured stop reason in
    ``exact_outcome`` (rendered as the † entries of the tables).

    ``executor`` (an :class:`~repro.runtime.Executor`) runs the exact
    search under the fault-tolerance policy — optionally memory-capped in
    a worker subprocess, with retry/backoff.  A search that dies hard is
    recorded as a non-complete outcome (``oom`` / ``killed`` /
    ``crashed``) on the cell rather than crashing the table run; the cell
    then renders with the † marker like any other cut-short search.
    """
    base = generate_dataset(dataset, rows=rows, seed=config.seed)
    scenario = perturb(base, config)
    stats = scenario.statistics()

    gold_score = scenario.gold_score(lam=options.lam)

    started = time.perf_counter()
    signature = signature_compare(scenario.source, scenario.target, options)
    signature_time = time.perf_counter() - started

    exact_score = None
    exact_time = None
    exact_exhausted = False
    exact_outcome = None
    exact_lower_bound = None
    if run_exact:
        def attempt():
            return exact_compare(
                scenario.source, scenario.target, options,
                node_budget=node_budget, deadline=deadline,
            )

        started = time.perf_counter()
        if executor is not None:
            report = executor.run(
                attempt, degrade=lambda: None,
                label=f"exact:{dataset}/{rows}",
            )
            exact = report.value if not report.degraded else None
        else:
            report = None
            exact = attempt()
        exact_time = time.perf_counter() - started
        if exact is None:
            # Hard death under the executor: the cell keeps the signature
            # score and reports the death as its outcome.
            exact_outcome = report.outcome.value
        else:
            exact_outcome = exact.outcome.value
            if exact.outcome.is_complete:
                exact_score = exact.similarity
                exact_exhausted = True
            else:
                exact_lower_bound = exact.similarity

    reference = exact_score if exact_score is not None else gold_score
    return {
        "dataset": dataset,
        "rows": rows,
        **stats,
        "reference_score": reference,
        "reference_is_constructed": exact_score is None,
        "gold_score": gold_score,
        "exact_score": exact_score,
        "exact_time": exact_time,
        "exact_exhausted": exact_exhausted,
        "exact_outcome": exact_outcome,
        "exact_lower_bound": exact_lower_bound,
        "signature_score": signature.similarity,
        "signature_time": signature_time,
        "score_difference": reference - signature.similarity,
    }


def run(
    scale: str = "quick",
    seed: int = 0,
    out: Out = print,
    deadline: float | None = None,
    executor=None,
    jobs: int = 1,
) -> list[dict]:
    """Regenerate Table 2 at the requested scale.

    ``deadline`` (seconds, per cell) bounds each exact search; cut-short
    cells keep their partial row and render with the † marker.  Cells are
    run through :func:`~repro.experiments.harness.run_cells`, so one
    crashing cell is recorded and retried rather than losing the table.
    ``executor`` adds worker isolation and retry/backoff to the exact
    searches (see :func:`run_scenario`); ``jobs > 1`` fans independent
    cells over that many fork workers.
    """
    options = MatchOptions.versioning()
    sizes = LADDER.for_scale(scale)
    exact_limit = EXACT_LIMIT[scale]

    def cell(dataset: str, size: int):
        config = PerturbationConfig.mod_cell(5.0, seed=seed)
        return lambda: run_scenario(
            dataset, size, config, options,
            run_exact=size <= exact_limit,
            node_budget=EXACT_NODE_BUDGET[scale],
            deadline=deadline,
            executor=executor,
        )

    runs = run_cells(
        [
            (f"table2:{dataset}/{size}", cell(dataset, size))
            for dataset in DATASETS
            for size in sizes
        ],
        out=out,
        jobs=jobs,
    )
    rows = [run.row for run in runs if run.ok]
    emit_table(
        out,
        ["Data", "#T", "#C", "#V", "#T'", "#C'", "#V'",
         "Ex Score", "Sig Score", "Diff", "Sig T(s)", "Ex T(s)"],
        [
            (
                r["dataset"],
                summarize_counts(r["source_tuples"]),
                summarize_counts(r["source_constants"]),
                summarize_counts(r["source_nulls"]),
                summarize_counts(r["target_tuples"]),
                summarize_counts(r["target_constants"]),
                summarize_counts(r["target_nulls"]),
                f"{r['reference_score']:.3f}"
                + ("*" if r["reference_is_constructed"] else ""),
                f"{r['signature_score']:.3f}",
                f"{abs(r['score_difference']):.3f}",
                f"{r['signature_time']:.2f}",
                _exact_time_cell(r),
            )
            for r in rows
        ],
        title=(
            "Table 2: Exact (Ex) vs Signature (Sig), modCell 5%, 1:1 "
            "(* = score by construction)"
        ),
    )
    return rows
