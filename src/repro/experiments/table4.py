"""Table 4 — ablation of the signature algorithm's two steps.

On *addRandomAndRedundant* scenarios, report the fraction of tuple-mapping
pairs discovered by the signature-based step vs the exhaustive
``CompatibleTuples`` completion step, and the score achievable using
signature-based matches only vs the final score.  The paper finds ≈99% of
matches in the signature step — the reason the algorithm is fast.
"""

from __future__ import annotations

from ..algorithms.signature import signature_compare, signature_step_only_score
from ..datagen.perturb import PerturbationConfig, perturb
from ..datagen.synthetic import generate_dataset
from ..mappings.constraints import MatchOptions
from .harness import Out, emit_table

DATASETS = ("doct", "bike", "git")

ROWS = {"quick": 200, "default": 1000, "paper": 1000}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Regenerate Table 4 at the requested scale."""
    options = MatchOptions.general()
    rows_count = ROWS[scale]
    rows = []
    for dataset in DATASETS:
        base = generate_dataset(dataset, rows=rows_count, seed=seed)
        scenario = perturb(
            base,
            PerturbationConfig.add_random_and_redundant(
                percent=5.0, random_percent=10.0, redundant_percent=10.0,
                seed=seed,
            ),
        )
        result = signature_compare(scenario.source, scenario.target, options)
        total = result.stats["signature_pairs"] + result.stats["completion_pairs"]
        sb_fraction = (
            result.stats["signature_pairs"] / total if total else 1.0
        )
        sb_score = signature_step_only_score(result)
        rows.append(
            {
                "dataset": dataset,
                "rows": rows_count,
                "signature_pairs": result.stats["signature_pairs"],
                "completion_pairs": result.stats["completion_pairs"],
                "sb_match_percent": 100.0 * sb_fraction,
                "ex_match_percent": 100.0 * (1.0 - sb_fraction),
                "sb_score": sb_score,
                "final_score": result.similarity,
            }
        )
    emit_table(
        out,
        ["Dataset", "%Matches SB", "%Matches Ex", "Score SB", "Score Final"],
        [
            (
                f"{r['dataset']} {r['rows']}",
                f"{r['sb_match_percent']:.2f}",
                f"{r['ex_match_percent']:.2f}",
                f"{r['sb_score']:.3f}",
                f"{r['final_score']:.3f}",
            )
            for r in rows
        ],
        title="Table 4: signature-based (SB) step vs exhaustive (Ex) step",
    )
    return rows
