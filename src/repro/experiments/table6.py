"""Table 6 — evaluating data-exchange solutions against a core gold.

Three generated solutions (wrong mapping W, redundant user mappings U1/U2)
are compared against the core solution with (a) the naive row-count ratio
and (b) the signature similarity.  The reproduced claim: the row score is
blind to the wrong mapping (W scores a perfect 1.0) while the signature
score exposes it (≈ 0), and the signature score credits the redundant but
correct universal solutions highly.
"""

from __future__ import annotations

from ..algorithms.signature import signature_compare
from ..core.instance import prepare_for_comparison
from ..dataexchange.scenarios import (
    generate_exchange_scenario,
    missing_rows,
    row_score,
)
from ..mappings.constraints import MatchOptions
from .harness import Out, emit_table, summarize_counts

SIZES = {
    "quick": (150,),
    "default": (400, 1500),
    "paper": (5627, 21981),
}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Regenerate Table 6 at the requested scale."""
    # Universal-vs-core comparison: left injective, totality validated.
    options = MatchOptions.record_merging()
    rows = []
    for doctors in SIZES[scale]:
        scenario = generate_exchange_scenario(doctors=doctors, seed=seed)
        gold = scenario.gold
        for label, solution in scenario.solutions().items():
            left, right = prepare_for_comparison(solution, gold)
            result = signature_compare(left, right, options)
            rows.append(
                {
                    "scenario": f"Doct-{label}",
                    "solution_tuples": len(solution),
                    "solution_constants": solution.constant_occurrence_count(),
                    "solution_nulls": solution.null_occurrence_count(),
                    "gold_tuples": len(gold),
                    "gold_constants": gold.constant_occurrence_count(),
                    "gold_nulls": gold.null_occurrence_count(),
                    "missing_rows": missing_rows(solution, gold),
                    "row_score": row_score(solution, gold),
                    "signature_score": result.similarity,
                }
            )
    emit_table(
        out,
        ["Scenario", "#T", "#C", "#V", "Gold #T", "Gold #C", "Gold #V",
         "Miss. Rows", "Row Score", "Sig Score"],
        [
            (
                r["scenario"],
                summarize_counts(r["solution_tuples"]),
                summarize_counts(r["solution_constants"]),
                summarize_counts(r["solution_nulls"]),
                summarize_counts(r["gold_tuples"]),
                summarize_counts(r["gold_constants"]),
                summarize_counts(r["gold_nulls"]),
                r["missing_rows"],
                f"{r['row_score']:.2f}",
                f"{r['signature_score']:.2f}",
            )
            for r in rows
        ],
        title="Table 6: data exchange — W / U1 / U2 vs the core solution",
    )
    return rows
