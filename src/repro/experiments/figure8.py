"""Figure 8 — impact of the % of changed cells on the signature score error.

For C% ∈ {1, 5, 10, ..., 50}, generate a modCell scenario per dataset and
measure ``score_by_construction − signature_score``.  The paper observes
the difference staying below ~0.008 and *shrinking* for heavy perturbation
(fewer possible mappings → fewer greedy mistakes).

A *negative* difference means the greedy algorithm found a better match
than the construction: under heavy perturbation the original positional
correspondence stops being the optimal one, and the constructed score is
only a lower bound on the exact optimum (which the signature score can
then exceed).
"""

from __future__ import annotations

from ..algorithms.signature import signature_compare
from ..datagen.perturb import PerturbationConfig, perturb
from ..datagen.synthetic import generate_dataset
from ..mappings.constraints import MatchOptions
from .harness import Out, emit_table, render_ascii_chart

DATASETS = ("bike", "doct", "git")

PERCENTS = {
    "quick": (1, 5, 25, 50),
    "default": (1, 5, 10, 15, 25, 50),
    "paper": (1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
}

ROWS = {"quick": 200, "default": 1000, "paper": 1000}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Regenerate the Figure 8 series at the requested scale."""
    options = MatchOptions.versioning()
    rows_count = ROWS[scale]
    series = []
    for dataset in DATASETS:
        base = generate_dataset(dataset, rows=rows_count, seed=seed)
        for percent in PERCENTS[scale]:
            scenario = perturb(
                base, PerturbationConfig.mod_cell(float(percent), seed=seed)
            )
            gold_score = scenario.gold_score(lam=options.lam)
            result = signature_compare(
                scenario.source, scenario.target, options
            )
            series.append(
                {
                    "dataset": dataset,
                    "percent": percent,
                    "gold_score": gold_score,
                    "signature_score": result.similarity,
                    "difference": gold_score - result.similarity,
                }
            )
    emit_table(
        out,
        ["Dataset", "C%", "Constructed", "Sig Score", "Difference"],
        [
            (
                s["dataset"], s["percent"],
                f"{s['gold_score']:.4f}",
                f"{s['signature_score']:.4f}",
                f"{s['difference']:+.4f}",
            )
            for s in series
        ],
        title=(
            "Figure 8: constructed-minus-signature score vs % of changed "
            f"cells ({rows_count}-row instances; negative = greedy beat "
            "the constructed lower bound)"
        ),
    )
    chart_series = {}
    for point in series:
        chart_series.setdefault(point["dataset"], []).append(
            (float(point["percent"]), point["difference"])
        )
    out(render_ascii_chart(
        chart_series,
        title="Figure 8 (ASCII): score difference vs C%",
    ))
    out("")
    return series
