"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments table2 --scale default --seed 0
    python -m repro.experiments all --scale quick
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import EXPERIMENTS
from .harness import SCALES


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment(s)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="quick",
        help="instance-size ladder (quick: seconds; default: minutes; "
             "paper: original sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock allowance for the exact searches "
             "(experiments that support it; cut-short cells render with †)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        runner = EXPERIMENTS[name]
        kwargs = {"scale": args.scale, "seed": args.seed}
        if args.deadline is not None:
            if "deadline" in inspect.signature(runner).parameters:
                kwargs["deadline"] = args.deadline
            else:
                print(f"[{name}: --deadline not supported; ignored]")
        started = time.perf_counter()
        runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
