"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments table2 --scale default --seed 0
    python -m repro.experiments all --scale quick
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import EXPERIMENTS
from .harness import SCALES


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and run the selected experiment(s)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale", choices=SCALES, default="quick",
        help="instance-size ladder (quick: seconds; default: minutes; "
             "paper: original sizes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock allowance for the exact searches "
             "(experiments that support it; cut-short cells render with †)",
    )
    parser.add_argument(
        "--isolate", action="store_true",
        help="run exact searches in worker subprocesses; a dead worker "
             "becomes a † cell instead of killing the run",
    )
    parser.add_argument(
        "--max-memory", type=float, default=None, metavar="MB",
        help="address-space cap for isolated workers, in MiB "
             "(implies --isolate)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a dead exact search up to N times with exponential "
             "backoff before recording the † cell",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent experiment cells over N fork workers "
             "(experiments that support it)",
    )
    args = parser.parse_args(argv)

    executor = None
    if args.isolate or args.max_memory is not None or args.retries:
        from ..runtime import Executor, RetryPolicy, WorkerLimits

        executor = Executor(
            isolate=args.isolate or args.max_memory is not None,
            limits=WorkerLimits(max_memory_mb=args.max_memory),
            retry=RetryPolicy(retries=max(0, args.retries)),
            out=print,
        )

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        runner = EXPERIMENTS[name]
        parameters = inspect.signature(runner).parameters
        kwargs = {"scale": args.scale, "seed": args.seed}
        if args.deadline is not None:
            if "deadline" in parameters:
                kwargs["deadline"] = args.deadline
            else:
                print(f"[{name}: --deadline not supported; ignored]")
        if executor is not None:
            if "executor" in parameters:
                kwargs["executor"] = executor
            else:
                print(
                    f"[{name}: --isolate/--max-memory/--retries not "
                    "supported; ignored]"
                )
        if args.jobs > 1:
            if "jobs" in parameters:
                kwargs["jobs"] = args.jobs
            else:
                print(f"[{name}: --jobs not supported; ignored]")
        started = time.perf_counter()
        runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
