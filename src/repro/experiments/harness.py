"""Shared infrastructure for the experiment drivers.

Every experiment module exposes ``run(scale=..., seed=..., out=...)`` that
returns the table rows as dictionaries and pretty-prints them in the paper's
layout.  ``scale`` selects the size ladder:

* ``"quick"`` — seconds-long sanity sizes (used by the test suite);
* ``"default"`` — minutes-long laptop sizes preserving the paper's shape;
* ``"paper"`` — the paper's original sizes (hours; exact-algorithm rows
  fall back to score-by-construction exactly as the starred entries of
  Tables 2–3 do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..runtime.outcome import Outcome

Out = Callable[[str], None]

SCALES = ("quick", "default", "paper")


@dataclass(frozen=True)
class SizeLadder:
    """Instance sizes per scale for the Table 2/3 style experiments."""

    quick: tuple[int, ...]
    default: tuple[int, ...]
    paper: tuple[int, ...]

    def for_scale(self, scale: str) -> tuple[int, ...]:
        """The sizes configured for ``scale``."""
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
        return getattr(self, scale)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    rendered_rows = [
        ["" if cell is None else _format_cell(cell) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def emit_table(
    out: Out,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> None:
    """Print a formatted table through the experiment's output callback."""
    out(format_table(headers, rows, title=title))
    out("")


def render_ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render (x, y) series as an ASCII scatter chart (one glyph per series).

    A dependency-free stand-in for the paper's figures: good enough to see
    the shape of a curve in a terminal or a CI log.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "*o+x#@"
    for index, (name, pts) in enumerate(sorted(series.items())):
        glyph = glyphs[index % len(glyphs)]
        for x, y in pts:
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_low:.4f} .. {y_high:.4f}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x_low:g} .. {x_high:g}]")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(legend)
    return "\n".join(lines)


def outcome_marker(outcome: object) -> str:
    """The paper's ``†`` timeout marker for a non-complete outcome.

    Accepts an :class:`~repro.runtime.Outcome`, its string value, or
    ``None`` (no outcome recorded → no marker).  Tables 2–3 append this to
    time cells whose exact search was cut short by a budget, deadline, or
    cancellation, mirroring the † entries of the paper.

    Examples
    --------
    >>> from repro.runtime import Outcome
    >>> outcome_marker(Outcome.COMPLETED)
    ''
    >>> outcome_marker("deadline-exceeded")
    '†'
    >>> outcome_marker(None)
    ''
    """
    if outcome is None:
        return ""
    if not isinstance(outcome, Outcome):
        outcome = Outcome(str(outcome))
    return outcome.marker


@dataclass
class CellRun:
    """The checkpointed result of one experiment cell.

    A cell is one (dataset, size) table entry.  ``row`` is the cell's row
    dictionary when any attempt succeeded; ``error`` is the last exception
    message when every attempt failed.  Either way the cell is *recorded*:
    one crashing or deadline-hit cell must not lose the rest of the table.
    """

    key: str
    row: dict | None = None
    error: str | None = None
    attempts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the cell produced a row."""
        return self.row is not None


def _cell_job(thunk: Callable[[], dict]) -> dict:
    """Worker-side cell runner for the parallel ``run_cells`` path.

    Re-raises :class:`~repro.core.errors.ReproError` as a plain
    ``RuntimeError`` so the worker classifies it as a retryable cell
    failure (``crashed``) rather than a batch-fatal error — preserving the
    serial path's partial-tables-beat-lost-tables semantics.
    """
    from ..core.errors import ReproError

    try:
        return thunk()
    except ReproError as error:
        raise RuntimeError(f"{type(error).__name__}: {error}") from None


def _run_cells_pooled(
    cells: list[tuple[str, Callable[[], dict]]],
    out: Out,
    retries: int,
    policy,
    jobs: int,
) -> list[CellRun]:
    """Fan cell thunks over fork workers; same CellRun contract as serial.

    Fork inheritance means the thunks (closures over instances and
    options) never cross a pipe — only the returned row dictionaries do.
    """
    from ..parallel.pool import PoolTask, WorkerPool

    pool = WorkerPool(jobs=jobs, retry=policy, out=out)
    tasks = [
        PoolTask(index=i, args=(thunk,)) for i, (_, thunk) in enumerate(cells)
    ]
    outcomes = pool.run(_cell_job, tasks)
    runs: list[CellRun] = []
    for (key, _), outcome in zip(cells, outcomes):
        run = CellRun(
            key=key,
            attempts=len(outcome.records),
            elapsed_seconds=sum(
                record.elapsed_seconds or 0.0 for record in outcome.records
            ),
        )
        if outcome.status == "ok":
            run.row = outcome.payload
        else:
            run.error = str(outcome.payload)
            out(f"[{key}] FAILED after {run.attempts} attempt(s): {run.error}")
        runs.append(run)
    return runs


def run_cells(
    cells: Iterable[tuple[str, Callable[[], dict]]],
    out: Out = print,
    retries: int = 1,
    policy: "RetryPolicy | None" = None,
    sleep: Callable[[float], None] | None = None,
    jobs: int = 1,
) -> list[CellRun]:
    """Run experiment cells with per-cell retry, backoff, and checkpointing.

    Each entry of ``cells`` is ``(key, thunk)`` where the thunk computes the
    cell's row dictionary.  A thunk that raises is retried up to ``retries``
    extra times — with exponential backoff between attempts, governed by
    ``policy`` (defaults to :class:`~repro.runtime.RetryPolicy`) — and if it
    still fails, a :class:`CellRun` carrying the error is recorded and the
    remaining cells continue: partial tables beat lost tables.  Deadline-hit
    cells do not raise at all; their row simply carries a non-complete
    outcome and renders with the † marker.

    ``jobs > 1`` fans the cells over that many fork workers
    (:class:`~repro.parallel.pool.WorkerPool`) with the same retry and
    checkpoint semantics; results keep the input order.  Worker-path error
    strings carry the worker's failure classification prefix.

    ``KeyboardInterrupt``, ``SystemExit``, and
    :class:`~repro.runtime.OperationCancelled` are *never* checkpointed as
    cell errors: the user asked the whole run to stop, so they propagate.
    """
    import random as _random
    import time as _time

    from ..runtime.cancellation import OperationCancelled
    from ..runtime.retry import RetryPolicy

    if policy is None:
        policy = RetryPolicy(retries=max(0, retries))
    if jobs > 1:
        return _run_cells_pooled(list(cells), out, retries, policy, jobs)
    if sleep is None:
        sleep = _time.sleep
    rng = _random.Random(policy.seed)

    runs: list[CellRun] = []
    for key, thunk in cells:
        run = CellRun(key=key)
        started = _time.perf_counter()
        for attempt in range(1 + max(0, retries)):
            run.attempts = attempt + 1
            try:
                run.row = thunk()
                break
            except (KeyboardInterrupt, SystemExit, OperationCancelled):
                # Deliberate stop, not a cell failure — do not checkpoint.
                raise
            except Exception as error:  # noqa: BLE001 - checkpoint anything
                run.error = f"{type(error).__name__}: {error}"
                if attempt < retries:
                    delay = policy.delay(attempt + 1, rng)
                    out(
                        f"[{key}] attempt {attempt + 1} failed: "
                        f"{run.error}; backing off {delay:.3f}s"
                    )
                    sleep(delay)
        run.elapsed_seconds = _time.perf_counter() - started
        if not run.ok:
            out(f"[{key}] FAILED after {run.attempts} attempt(s): {run.error}")
        runs.append(run)
    return runs


def summarize_counts(value: int) -> str:
    """Render large counts like the paper's ``.5k`` / ``49k`` shorthand."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{round(value / 1000)}k"
    if value >= 1_000:
        return f"{value / 1000:.1f}k"
    return str(value)
