"""Table 7 — data versioning: the ``diff`` baseline vs the signature match.

For Iris and NBA, four modified versions are generated (shuffled S, rows
removed R, removed+shuffled RS, columns removed C) and compared against the
original with both tools.  The reproduced claim: ``diff`` only survives the
pure row-removal variant; shuffling or schema change destroys its matches,
while the signature algorithm recovers the correspondence in every variant.
"""

from __future__ import annotations

from ..datagen.synthetic import generate_dataset
from ..mappings.constraints import MatchOptions
from ..versioning.operations import (
    removed_and_shuffled_version,
    removed_columns_version,
    removed_rows_version,
    shuffled_version,
)
from ..versioning.report import compare_versions
from .harness import Out, emit_table

DATASETS = {
    "quick": (("iris", 120), ("nba", 800)),
    "default": (("iris", 120), ("nba", 2000)),
    "paper": (("iris", 120), ("nba", 9360)),
}

#: Fractions matching the paper's 120→99 and 9360→9043 row removals.
REMOVE_FRACTION = {"iris": 0.175, "nba": 0.034}


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Regenerate Table 7 at the requested scale."""
    options = MatchOptions.versioning()
    rows = []
    for dataset, count in DATASETS[scale]:
        original = generate_dataset(dataset, rows=count, seed=seed)
        fraction = REMOVE_FRACTION[dataset]
        variants = {
            "S": shuffled_version(original, seed=seed),
            "R": removed_rows_version(
                original, remove_fraction=fraction, seed=seed
            ),
            "RS": removed_and_shuffled_version(
                original, remove_fraction=fraction, seed=seed
            ),
            "C": removed_columns_version(original, drop_count=1, seed=seed),
        }
        for tag, modified in variants.items():
            comparison = compare_versions(original, modified, options)
            rows.append(
                {
                    "dataset": dataset,
                    "variant": tag,
                    **comparison.as_row(),
                }
            )
    emit_table(
        out,
        ["Orig.", "Mod.", "#TO", "#TM",
         "diff #M", "diff #LNM", "diff #RNM",
         "sig #M", "sig #LNM", "sig #RNM", "Sig Score"],
        [
            (
                r["dataset"], f"{r['dataset']}-{r['variant']}",
                r["TO"], r["TM"],
                r["diff_M"], r["diff_LNM"], r["diff_RNM"],
                r["sig_M"], r["sig_LNM"], r["sig_RNM"],
                f"{r['sig_score']:.3f}",
            )
            for r in rows
        ],
        title="Table 7: data versioning — diff vs Signature",
    )
    return rows
