"""Table 3 — Exact vs Signature, *addRandomAndRedundant*, n:m mappings.

Same structure as Table 2 but the perturbation additionally appends 10%
brand-new random tuples and duplicates 10% of the tuples on both sides, and
the comparison runs without injectivity constraints (non-functional,
non-injective tuple mappings).
"""

from __future__ import annotations

from ..datagen.perturb import PerturbationConfig
from ..mappings.constraints import MatchOptions
from .harness import Out, SizeLadder, emit_table, run_cells, summarize_counts
from .table2 import (
    EXACT_LIMIT,
    EXACT_NODE_BUDGET,
    _exact_time_cell,
    run_scenario,
)

DATASETS = ("doct", "bike", "git")

LADDER = SizeLadder(
    quick=(100, 200),
    default=(200, 500, 1000),
    paper=(500, 1000, 5000, 10000, 100000),
)


def run(
    scale: str = "quick",
    seed: int = 0,
    out: Out = print,
    deadline: float | None = None,
    executor=None,
    jobs: int = 1,
) -> list[dict]:
    """Regenerate Table 3 at the requested scale.

    Same checkpoint/retry, per-cell ``deadline``, ``executor`` (worker
    isolation + retry/backoff), and ``jobs`` (parallel cells) semantics as
    :func:`repro.experiments.table2.run`.
    """
    options = MatchOptions.general()
    sizes = LADDER.for_scale(scale)
    exact_limit = EXACT_LIMIT[scale]

    def cell(dataset: str, size: int):
        config = PerturbationConfig.add_random_and_redundant(
            percent=5.0, random_percent=10.0, redundant_percent=10.0,
            seed=seed,
        )
        return lambda: run_scenario(
            dataset, size, config, options,
            # The non-functional powerset search explodes much
            # faster; halve the exact cutoff.
            run_exact=size <= max(50, exact_limit // 2),
            node_budget=EXACT_NODE_BUDGET[scale],
            deadline=deadline,
            executor=executor,
        )

    runs = run_cells(
        [
            (f"table3:{dataset}/{size}", cell(dataset, size))
            for dataset in DATASETS
            for size in sizes
        ],
        out=out,
        jobs=jobs,
    )
    rows = [run.row for run in runs if run.ok]
    emit_table(
        out,
        ["Data", "#T", "#C", "#V", "#T'", "#C'", "#V'",
         "Ex Score", "Sig Score", "Diff", "Sig T(s)", "Ex T(s)"],
        [
            (
                r["dataset"],
                summarize_counts(r["source_tuples"]),
                summarize_counts(r["source_constants"]),
                summarize_counts(r["source_nulls"]),
                summarize_counts(r["target_tuples"]),
                summarize_counts(r["target_constants"]),
                summarize_counts(r["target_nulls"]),
                f"{r['reference_score']:.3f}"
                + ("*" if r["reference_is_constructed"] else ""),
                f"{r['signature_score']:.3f}",
                f"{abs(r['score_difference']):.3f}",
                f"{r['signature_time']:.2f}",
                _exact_time_cell(r),
            )
            for r in rows
        ],
        title=(
            "Table 3: Exact vs Signature, addRandomAndRedundant, n:m "
            "(* = score by construction)"
        ),
    )
    return rows
