"""Ablation experiment — design decisions beyond the paper's tables.

Quantifies, on two representative workloads:

* **aligned vs plain greedy** — the alignment preference (DESIGN.md #3)
  on a modCell workload (where it barely matters) and on the
  universal-vs-core data-exchange workload (where it is decisive);
* **λ sensitivity** — the similarity score across the allowed λ range on a
  fixed matching.
"""

from __future__ import annotations

import time

from ..core.instance import prepare_for_comparison
from ..datagen.perturb import PerturbationConfig, perturb
from ..datagen.synthetic import generate_dataset
from ..dataexchange.scenarios import generate_exchange_scenario
from ..mappings.constraints import MatchOptions
from ..algorithms.signature import signature_compare
from .harness import Out, emit_table

ROWS = {"quick": 200, "default": 500, "paper": 1000}
DOCTORS = {"quick": 100, "default": 300, "paper": 1000}
LAMBDAS = (0.0, 0.25, 0.5, 0.75, 0.99)


def _timed_signature(left, right, options, align):
    started = time.perf_counter()
    result = signature_compare(
        left, right, options, align_preference=align
    )
    return result, time.perf_counter() - started


def run(scale: str = "quick", seed: int = 0, out: Out = print) -> list[dict]:
    """Run both ablations and print their tables."""
    rows_count = ROWS[scale]
    records: list[dict] = []

    # -- aligned vs plain greedy -------------------------------------------
    greedy_rows = []
    scenario = perturb(
        generate_dataset("doct", rows=rows_count, seed=seed),
        PerturbationConfig.mod_cell(5.0, seed=seed),
    )
    for align in (True, False):
        result, elapsed = _timed_signature(
            scenario.source, scenario.target,
            MatchOptions.versioning(), align,
        )
        greedy_rows.append(
            {
                "workload": "modCell 5% (doct)",
                "greedy": "aligned" if align else "plain",
                "score": result.similarity,
                "seconds": elapsed,
            }
        )
    exchange = generate_exchange_scenario(doctors=DOCTORS[scale], seed=seed)
    left, right = prepare_for_comparison(exchange.u1, exchange.gold)
    for align in (True, False):
        result, elapsed = _timed_signature(
            left, right, MatchOptions.record_merging(), align
        )
        greedy_rows.append(
            {
                "workload": "U1 vs core (exchange)",
                "greedy": "aligned" if align else "plain",
                "score": result.similarity,
                "seconds": elapsed,
            }
        )
    records.extend(greedy_rows)
    emit_table(
        out,
        ["Workload", "Greedy", "Sig Score", "T(s)"],
        [
            (
                r["workload"], r["greedy"],
                f"{r['score']:.3f}", f"{r['seconds']:.3f}",
            )
            for r in greedy_rows
        ],
        title="Ablation: aligned vs plain greedy candidate ordering",
    )

    # -- λ sweep ---------------------------------------------------------------
    lambda_rows = []
    for lam in LAMBDAS:
        result, elapsed = _timed_signature(
            scenario.source, scenario.target,
            MatchOptions.versioning(lam=lam), True,
        )
        lambda_rows.append(
            {
                "workload": "modCell 5% (doct)",
                "lam": lam,
                "score": result.similarity,
                "seconds": elapsed,
            }
        )
    records.extend(lambda_rows)
    emit_table(
        out,
        ["λ", "Sig Score", "T(s)"],
        [
            (f"{r['lam']:.2f}", f"{r['score']:.4f}", f"{r['seconds']:.3f}")
            for r in lambda_rows
        ],
        title="Ablation: λ sensitivity (null-to-constant credit)",
    )
    return records
