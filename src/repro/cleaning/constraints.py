"""Functional dependencies and violation detection.

The data-repair experiment (Table 5) cleans instances that violate
functional dependencies such as ``Conference: Name → Org`` (paper Ex. 2.1).
This module detects violating cell groups; the repair systems in
:mod:`repro.cleaning.systems` act on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import Value, is_constant


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``relation: lhs → rhs`` with a single right-hand attribute."""

    relation: str
    lhs: tuple[str, ...]
    rhs: str

    def __str__(self) -> str:
        return f"{self.relation}: {', '.join(self.lhs)} -> {self.rhs}"

    def key_of(self, t: Tuple) -> tuple[Value, ...] | None:
        """The LHS value vector of ``t``, or ``None`` if any LHS cell is a null.

        Following the certain-violation semantics used by repair tools,
        groups are formed over constant LHS values only.
        """
        key = tuple(t[a] for a in self.lhs)
        if not all(is_constant(v) for v in key):
            return None
        return key


@dataclass
class ViolationGroup:
    """Tuples sharing an FD left-hand side with conflicting right-hand values.

    Attributes
    ----------
    fd:
        The violated dependency.
    key:
        The shared LHS value vector.
    tuples:
        All tuples in the group (violating and agreeing alike).
    value_counts:
        Constant RHS values with their multiplicities.
    """

    fd: FunctionalDependency
    key: tuple[Value, ...]
    tuples: list[Tuple]
    value_counts: dict[Value, int]

    def majority_value(self) -> Value | None:
        """The strictly most frequent RHS constant, or ``None`` on a tie."""
        if not self.value_counts:
            return None
        ranked = sorted(
            self.value_counts.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
            return None
        return ranked[0][0]

    def minority_tuples(self) -> list[Tuple]:
        """Tuples whose RHS constant disagrees with the majority value.

        Empty when the group has no strict majority.
        """
        majority = self.majority_value()
        if majority is None:
            return []
        return [
            t
            for t in self.tuples
            if is_constant(t[self.fd.rhs]) and t[self.fd.rhs] != majority
        ]


def find_violations(
    instance: Instance, fds: list[FunctionalDependency]
) -> Iterator[ViolationGroup]:
    """Yield every violated FD group of ``instance``.

    A group violates its FD when at least two distinct constant RHS values
    occur for one LHS key.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> inst = Instance.from_rows("R", ("K", "V"),
    ...     [("a", "x"), ("a", "y"), ("b", "z")])
    >>> fd = FunctionalDependency("R", ("K",), "V")
    >>> groups = list(find_violations(inst, [fd]))
    >>> len(groups), groups[0].key
    (1, ('a',))
    """
    for fd in fds:
        groups: dict[tuple[Value, ...], list[Tuple]] = {}
        for t in instance.relation(fd.relation):
            key = fd.key_of(t)
            if key is not None:
                groups.setdefault(key, []).append(t)
        for key, tuples in groups.items():
            value_counts: dict[Value, int] = {}
            for t in tuples:
                value = t[fd.rhs]
                if is_constant(value):
                    value_counts[value] = value_counts.get(value, 0) + 1
            if len(value_counts) > 1:
                yield ViolationGroup(
                    fd=fd, key=key, tuples=tuples, value_counts=value_counts
                )


def satisfies(instance: Instance, fds: list[FunctionalDependency]) -> bool:
    """Whether ``instance`` has no certain FD violations."""
    return not any(find_violations(instance, fds))
