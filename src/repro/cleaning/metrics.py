"""Data-cleaning evaluation metrics (Table 5 columns).

Three metrics over a (gold, repaired) instance pair:

* **F1** — the standard repair metric: f-measure restricted to cells that
  were dirty and/or changed by the system.  A labeled null introduced by the
  system differs from the gold constant and therefore counts as an error —
  exactly the F1 weakness Table 5 demonstrates.
* **F1-instance** — cell accuracy over the whole instance (precision =
  recall = fraction of cells equal to gold, as both instances have the same
  cells), which hides the error provenance.
* **Signature score** — the null-aware instance similarity of this paper,
  computed by the signature algorithm under the data-repair constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance, prepare_for_comparison
from ..mappings.constraints import MatchOptions
from ..algorithms.signature import signature_compare
from .errorgen import CellKey


@dataclass(frozen=True)
class F1Score:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float


def _cell_value(instance: Instance, cell: CellKey):
    tuple_id, attribute = cell
    return instance.get_tuple(tuple_id)[attribute]


def repair_f1(
    gold: Instance,
    repaired: Instance,
    error_cells: set[CellKey],
    changed_cells: set[CellKey],
) -> F1Score:
    """The standard repair F1 over dirty/changed cells.

    * precision — correctly repaired cells / cells the system changed;
    * recall — correctly repaired cells / cells that were dirty;
    * a cell is *correctly repaired* when the repaired value equals the gold
      value (labeled nulls never equal constants, hence count as wrong).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> gold = Instance.from_rows("R", ("V",), [("x",)])
    >>> good = Instance.from_rows("R", ("V",), [("x",)])
    >>> repair_f1(gold, good, {("t1", "V")}, {("t1", "V")}).f1
    1.0
    """
    correct_changed = sum(
        1
        for cell in changed_cells
        if _cell_value(repaired, cell) == _cell_value(gold, cell)
    )
    correct_dirty = sum(
        1
        for cell in error_cells
        if _cell_value(repaired, cell) == _cell_value(gold, cell)
    )
    precision = correct_changed / len(changed_cells) if changed_cells else 1.0
    recall = correct_dirty / len(error_cells) if error_cells else 1.0
    if precision + recall == 0.0:
        return F1Score(precision, recall, 0.0)
    f1 = 2 * precision * recall / (precision + recall)
    return F1Score(precision, recall, f1)


def instance_f1(gold: Instance, repaired: Instance) -> float:
    """Cell accuracy over all cells (the paper's "F1 Inst." column).

    Both instances share schema and tuple ids; every cell is compared for
    exact equality (nulls count as mismatches against constants).
    """
    total = 0
    correct = 0
    for t in gold.tuples():
        other = repaired.get_tuple(t.tuple_id)
        for value, other_value in zip(t.values, other.values):
            total += 1
            if value == other_value:
                correct += 1
    return correct / total if total else 1.0


def signature_score(
    gold: Instance,
    repaired: Instance,
    options: MatchOptions | None = None,
) -> float:
    """The paper's null-aware similarity between a repair and the gold.

    Uses the data-repair constraint preset (complete, fully injective
    matches) with the signature algorithm, after preparing disjoint
    ids/nulls.
    """
    if options is None:
        options = MatchOptions.data_repair()
    left, right = prepare_for_comparison(repaired, gold)
    return signature_compare(left, right, options=options).similarity


@dataclass(frozen=True)
class CleaningEvaluation:
    """One Table 5 row: a system's three metric values."""

    system: str
    f1: float
    f1_instance: float
    signature: float


def evaluate_repair(
    gold: Instance,
    repaired: Instance,
    error_cells: set[CellKey],
    changed_cells: set[CellKey],
    system_name: str,
    lam: float | None = None,
) -> CleaningEvaluation:
    """Compute all three Table 5 metrics for one repaired solution."""
    options = (
        MatchOptions.data_repair()
        if lam is None
        else MatchOptions.data_repair(lam=lam)
    )
    return CleaningEvaluation(
        system=system_name,
        f1=repair_f1(gold, repaired, error_cells, changed_cells).f1,
        f1_instance=instance_f1(gold, repaired),
        signature=signature_score(gold, repaired, options=options),
    )
