"""Constraint-repair substrate: FDs, error generation, systems, metrics."""

from .constraints import (
    FunctionalDependency,
    ViolationGroup,
    find_violations,
    satisfies,
)
from .errorgen import CellKey, DirtyDataset, inject_errors
from .metrics import (
    CleaningEvaluation,
    F1Score,
    evaluate_repair,
    instance_f1,
    repair_f1,
    signature_score,
)
from .systems import SYSTEM_PRESETS, RepairResult, RepairSystemConfig, repair

__all__ = [
    "CellKey",
    "CleaningEvaluation",
    "DirtyDataset",
    "F1Score",
    "FunctionalDependency",
    "RepairResult",
    "RepairSystemConfig",
    "SYSTEM_PRESETS",
    "ViolationGroup",
    "evaluate_repair",
    "find_violations",
    "inject_errors",
    "instance_f1",
    "repair",
    "repair_f1",
    "satisfies",
    "signature_score",
]
