"""Surrogates of the four repair systems evaluated in Table 5.

The paper runs Holistic, HoloClean, Llunatic, and Sampling on a dirty Bus
instance and scores their repairs with F1, F1-instance, and the signature
score.  The original systems are large Java/Python stacks; what Table 5
actually exercises is how the three *metrics* react to each system's
characteristic repair behaviour:

* **Llunatic** — cautious chase-based repair: fixes a violation to the
  certain (majority) value when the evidence is unambiguous and marks the
  conflict with a labeled null otherwise; almost always agrees with gold.
* **Holistic** — holistic constraint analysis: repairs most violations to
  the majority value, introduces nulls for a noticeable share of cells it
  cannot decide.
* **HoloClean** — probabilistic inference: like Holistic with a slightly
  different decided/undecided split.
* **Sampling** — samples one repair uniformly from the space of valid
  repairs: the result *satisfies* the constraints but often repairs to a
  non-gold value (e.g. changing the majority side of a group), which tanks
  cell-level F1 while the instance remains almost entirely clean.

Each surrogate is a parameterized strategy over detected FD violation
groups.  DESIGN.md documents this substitution; the surrogates reproduce the
metric interactions Table 5 demonstrates, which is the experiment's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import RepairError
from ..core.instance import Instance
from ..core.values import NullFactory
from ..utils.rand import make_rng
from .constraints import FunctionalDependency, find_violations
from .errorgen import CellKey


@dataclass(frozen=True)
class RepairSystemConfig:
    """Behaviour knobs of a repair-system surrogate.

    Attributes
    ----------
    name:
        System label for reports.
    repair_rate:
        Fraction of decidable minority cells repaired to the majority value;
        the rest are marked with labeled nulls (conflicts needing a human).
    wrong_value_rate:
        Fraction of violations resolved with a *valid but non-gold* repair:
        instead of restoring the majority right-hand value, the sampled
        repair rewrites the violating tuple's left-hand cell to an
        alternative constant — the FD is satisfied, only one cell changed,
        but the cell no longer matches the gold (the sampling-style
        repair: uniform over the repair space, not aimed at the original).
    """

    name: str
    repair_rate: float
    wrong_value_rate: float = 0.0


#: Preset configurations for the four Table 5 systems.
SYSTEM_PRESETS: dict[str, RepairSystemConfig] = {
    "llunatic": RepairSystemConfig("llunatic", repair_rate=0.995),
    "holoclean": RepairSystemConfig("holoclean", repair_rate=0.86),
    "holistic": RepairSystemConfig("holistic", repair_rate=0.855),
    "sampling": RepairSystemConfig(
        "sampling", repair_rate=0.99, wrong_value_rate=0.55
    ),
}


@dataclass
class RepairResult:
    """The output of a repair run.

    Attributes
    ----------
    repaired:
        The repaired instance (same schema/ids as the dirty input).
    changed_cells:
        Cells whose value the system modified, with the new value.
    system:
        The configuration that produced this repair.
    """

    repaired: Instance
    changed_cells: dict[CellKey, object]
    system: RepairSystemConfig


def repair(
    dirty: Instance,
    fds: list[FunctionalDependency],
    system: str | RepairSystemConfig,
    seed: int = 0,
) -> RepairResult:
    """Repair ``dirty`` with one of the system surrogates.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> inst = Instance.from_rows("R", ("K", "V"),
    ...     [("a", "x"), ("a", "x"), ("a", "boom")])
    >>> fd = FunctionalDependency("R", ("K",), "V")
    >>> result = repair(inst, [fd], "llunatic")
    >>> result.repaired.get_tuple("t3")["V"]
    'x'
    """
    if isinstance(system, str):
        try:
            config = SYSTEM_PRESETS[system]
        except KeyError:
            raise RepairError(
                f"unknown repair system {system!r}; "
                f"available: {sorted(SYSTEM_PRESETS)}"
            ) from None
    else:
        config = system

    rng = make_rng(seed)
    fresh_nulls = NullFactory(prefix=f"{config.name[:2].upper()}")
    rows: dict[str, list] = {t.tuple_id: list(t.values) for t in dirty.tuples()}
    changed: dict[CellKey, object] = {}

    for group in find_violations(dirty, fds):
        rhs_position = dirty.schema.relation(group.fd.relation).position(
            group.fd.rhs
        )
        majority = group.majority_value()
        if majority is None:
            # Ambiguous evidence: every system marks the conflict with one
            # shared labeled null across the group (the repair must still
            # satisfy the FD).
            conflict_null = fresh_nulls()
            for t in group.tuples:
                rows[t.tuple_id][rhs_position] = conflict_null
                changed[(t.tuple_id, group.fd.rhs)] = conflict_null
            continue

        minority = group.minority_tuples()
        lhs_attr = group.fd.lhs[0]
        lhs_position = dirty.schema.relation(group.fd.relation).position(
            lhs_attr
        )
        for t in minority:
            cell: CellKey = (t.tuple_id, group.fd.rhs)
            roll = rng.random()
            if roll < config.wrong_value_rate:
                # Sampled valid-but-non-gold repair: detach the violating
                # tuple from the group by rewriting its LHS cell to an
                # alternative constant.  The FD is satisfied with a single
                # cell change, but the cell disagrees with the gold.
                lhs_cell: CellKey = (t.tuple_id, lhs_attr)
                alternative = f"{t[lhs_attr]}~alt"
                rows[t.tuple_id][lhs_position] = alternative
                changed[lhs_cell] = alternative
            elif roll < config.wrong_value_rate + config.repair_rate * (
                1.0 - config.wrong_value_rate
            ):
                rows[t.tuple_id][rhs_position] = majority
                changed[cell] = majority
            else:
                null = fresh_nulls()
                rows[t.tuple_id][rhs_position] = null
                changed[cell] = null

    repaired = Instance(dirty.schema, name=f"{dirty.name}-{config.name}")
    for relation in dirty.relations():
        for t in relation:
            repaired.add(t.with_values(rows[t.tuple_id]))
    return RepairResult(repaired=repaired, changed_cells=changed, system=config)
