"""BART-style error generation for the data-repair experiment.

The paper's Table 5 setting: start from a clean (gold) instance, inject
errors that violate the declared FDs, hand the dirty instance to several
repair systems, and measure how close each repaired solution is to the gold.
This module plays the role of BART (Arocena et al., PVLDB 2015): it corrupts
*detectable* cells — RHS values inside FD groups large enough that the
majority still identifies the original value — so that repair quality, not
detectability, is what the experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..utils.rand import make_rng
from .constraints import FunctionalDependency

CellKey = tuple[str, str]
"""Cell address used by the cleaning metrics: ``(tuple id, attribute)``."""


@dataclass
class DirtyDataset:
    """A corrupted instance plus the record of what was corrupted.

    Attributes
    ----------
    clean:
        The gold instance.
    dirty:
        The corrupted instance (same schema and tuple ids as ``clean``).
    errors:
        For each corrupted cell: ``(gold value, dirty value)``.
    """

    clean: Instance
    dirty: Instance
    errors: dict[CellKey, tuple[object, object]] = field(default_factory=dict)

    @property
    def error_cells(self) -> set[CellKey]:
        """The addresses of all corrupted cells."""
        return set(self.errors)


def inject_errors(
    clean: Instance,
    fds: list[FunctionalDependency],
    error_rate: float = 0.05,
    seed: int = 0,
) -> DirtyDataset:
    """Corrupt ``error_rate`` of the eligible FD right-hand-side cells.

    Eligibility: a cell is corrupted only when its FD group holds at least
    three tuples and no other cell of the group has been corrupted yet, so
    a strict in-group majority always still witnesses the gold value.
    Corruptions alternate between typos (``value + "*err"``) and value swaps
    (the RHS value of a different group), both of which create certain FD
    violations.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> inst = Instance.from_rows("R", ("K", "V"),
    ...     [("a", "x")] * 3 + [("b", "y")] * 3)
    >>> fd = FunctionalDependency("R", ("K",), "V")
    >>> dirty = inject_errors(inst, [fd], error_rate=0.5, seed=1)
    >>> all(dirty.dirty.get_tuple(t).values != dirty.clean.get_tuple(t).values
    ...     for t, _ in dirty.error_cells)
    True
    """
    rng = make_rng(seed)
    dirty_rows: dict[str, list] = {
        t.tuple_id: list(t.values) for t in clean.tuples()
    }
    errors: dict[CellKey, tuple[object, object]] = {}

    for fd in fds:
        relation = clean.relation(fd.relation)
        schema = relation.schema
        rhs_position = schema.position(fd.rhs)
        groups: dict[tuple, list[Tuple]] = {}
        for t in relation:
            key = fd.key_of(t)
            if key is not None:
                groups.setdefault(key, []).append(t)

        eligible_groups = [
            tuples for tuples in groups.values() if len(tuples) >= 3
        ]
        if not eligible_groups:
            continue
        other_values = sorted(
            {str(t[fd.rhs]) for tuples in groups.values() for t in tuples}
        )
        budget = round(
            sum(len(g) for g in eligible_groups) * error_rate
        )
        rng.shuffle(eligible_groups)
        injected_for_fd = 0
        for index, tuples in enumerate(eligible_groups):
            if injected_for_fd >= budget:
                break
            victim = rng.choice(tuples)
            cell: CellKey = (victim.tuple_id, fd.rhs)
            if cell in errors:
                continue
            gold_value = victim[fd.rhs]
            if index % 2 == 0:
                dirty_value = f"{gold_value}*err"
            else:
                candidates = [
                    v for v in other_values if v != str(gold_value)
                ]
                dirty_value = (
                    rng.choice(candidates)
                    if candidates
                    else f"{gold_value}*err"
                )
            dirty_rows[victim.tuple_id][rhs_position] = dirty_value
            errors[cell] = (gold_value, dirty_value)
            injected_for_fd += 1

    dirty = Instance(clean.schema, name=f"{clean.name}-dirty")
    for relation in clean.relations():
        for t in relation:
            dirty.add(t.with_values(dirty_rows[t.tuple_id]))
    return DirtyDataset(clean=clean, dirty=dirty, errors=errors)
