"""Homomorphisms between instances with labeled nulls (paper Sec. 2).

A homomorphism ``h : adom(I) → adom(I')`` fixes constants and maps every
tuple of ``I`` onto a tuple of ``I'`` (``∀ t ∈ I : h(t) ∈ I'``).  Finding one
is NP-hard in general; this module implements a backtracking search with the
same c-compatibility pruning the comparison algorithms use, which is fast on
the universal-solution instances of the data-exchange experiments.

Homomorphisms are the yardstick of the data-exchange substrate: ``J`` is a
universal solution iff it has a homomorphism into every solution, and all
universal solutions are homomorphically equivalent (Sec. 4.3).
"""

from __future__ import annotations

from typing import Iterator

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, Value, is_constant, is_null
from ..mappings.value_mapping import ValueMapping
from .search_index import TargetIndex

DEFAULT_HOM_BUDGET = 5_000_000
"""Default cap on backtracking steps for homomorphism search."""


class HomomorphismSearch:
    """Backtracking search for homomorphisms ``source → target``.

    Parameters
    ----------
    source, target:
        Instances over the same schema.
    budget:
        Maximum number of candidate tuple examinations before giving up
        (the search then reports "not found" with ``exhausted=False``).
    """

    def __init__(
        self, source: Instance, target: Instance, budget: int = DEFAULT_HOM_BUDGET
    ) -> None:
        self.source = source
        self.target = target
        self.budget = budget
        self.steps = 0
        self.exhausted = True
        self._index = TargetIndex(target)
        # Order source tuples most-constrained first: fewest candidate
        # images, then most constants.  Assigning low-fanout tuples first
        # binds shared nulls early and keeps backtracking shallow (e.g. the
        # entity tuples of a data-exchange solution pin their surrogate
        # nulls before the fact tuples that reuse them are placed).
        def fanout(t: Tuple) -> int:
            return sum(1 for _ in self._index.candidates(t.relation.name, t.values))

        self._ordered: list[Tuple] = sorted(
            source.tuples(),
            key=lambda t: (fanout(t), -t.constant_count(), t.tuple_id),
        )

    def find(self) -> ValueMapping | None:
        """Return a homomorphism as a :class:`ValueMapping`, or ``None``."""
        assignment: dict[LabeledNull, Value] = {}
        if self._search(0, assignment):
            return ValueMapping(assignment)
        return None

    def exists(self) -> bool:
        """Whether a homomorphism ``source → target`` exists."""
        return self.find() is not None

    # -- internals -------------------------------------------------------------

    def _search(self, index: int, assignment: dict[LabeledNull, Value]) -> bool:
        if index == len(self._ordered):
            return True
        t = self._ordered[index]
        for t_prime in self._candidates(t, assignment):
            self.steps += 1
            if self.steps > self.budget:
                self.exhausted = False
                return False
            added = _extend(t, t_prime, assignment)
            if added is None:
                continue
            if self._search(index + 1, assignment):
                return True
            for null in added:
                del assignment[null]
            if not self.exhausted:
                return False
        return False

    def _candidates(
        self, t: Tuple, assignment: dict[LabeledNull, Value]
    ) -> Iterator[Tuple]:
        """Target tuples whose constants agree with ``t``'s current image."""
        image_values = [
            assignment.get(v, v) if is_null(v) else v for v in t.values
        ]
        yield from self._index.candidates(t.relation.name, image_values)


def _extend(
    t: Tuple, t_prime: Tuple, assignment: dict[LabeledNull, Value]
) -> list[LabeledNull] | None:
    """Try to extend ``assignment`` so that ``h(t) = t_prime``.

    Returns the list of newly bound nulls on success (for backtracking), or
    ``None`` when the pair is inconsistent with the assignment.
    """
    added: list[LabeledNull] = []
    for value, target_value in zip(t.values, t_prime.values):
        if is_constant(value):
            if value != target_value:
                _unbind(assignment, added)
                return None
            continue
        bound = assignment.get(value)
        if bound is None:
            assignment[value] = target_value
            added.append(value)
        elif bound != target_value:
            _unbind(assignment, added)
            return None
    return added


def _unbind(
    assignment: dict[LabeledNull, Value], added: list[LabeledNull]
) -> None:
    for null in added:
        del assignment[null]


def find_homomorphism(
    source: Instance, target: Instance, budget: int = DEFAULT_HOM_BUDGET
) -> ValueMapping | None:
    """Find a homomorphism ``source → target`` (or ``None``).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> I = Instance.from_rows("R", ("A",), [(LabeledNull("N1"),)], id_prefix="a")
    >>> J = Instance.from_rows("R", ("A",), [("x",)], id_prefix="b")
    >>> h = find_homomorphism(I, J)
    >>> h(LabeledNull("N1"))
    'x'
    """
    return HomomorphismSearch(source, target, budget=budget).find()


def has_homomorphism(
    source: Instance, target: Instance, budget: int = DEFAULT_HOM_BUDGET
) -> bool:
    """Whether a homomorphism ``source → target`` exists."""
    return find_homomorphism(source, target, budget=budget) is not None


def homomorphically_equivalent(
    left: Instance, right: Instance, budget: int = DEFAULT_HOM_BUDGET
) -> bool:
    """Whether homomorphisms exist in both directions.

    Universal solutions of the same data-exchange scenario are exactly the
    homomorphically equivalent solutions (Sec. 4.3).
    """
    return has_homomorphism(left, right, budget=budget) and has_homomorphism(
        right, left, budget=budget
    )
