"""Homomorphisms between instances with labeled nulls (paper Sec. 2).

A homomorphism ``h : adom(I) → adom(I')`` fixes constants and maps every
tuple of ``I`` onto a tuple of ``I'`` (``∀ t ∈ I : h(t) ∈ I'``).  Finding one
is NP-hard in general; this module implements a backtracking search with the
same c-compatibility pruning the comparison algorithms use, which is fast on
the universal-solution instances of the data-exchange experiments.

Homomorphisms are the yardstick of the data-exchange substrate: ``J`` is a
universal solution iff it has a homomorphism into every solution, and all
universal solutions are homomorphically equivalent (Sec. 4.3).
"""

from __future__ import annotations

from typing import Iterator

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, Value, is_constant, is_null
from ..mappings.value_mapping import ValueMapping
from ..obs.metrics import active_metrics
from ..obs.trace import annotate_budget, span
from ..runtime.budget import Budget, resolve_control
from ..runtime.outcome import Outcome
from .search_index import TargetIndex

DEFAULT_HOM_BUDGET = 5_000_000
"""Default cap on backtracking steps for homomorphism search."""


class HomomorphismSearch:
    """Backtracking search for homomorphisms ``source → target``.

    Parameters
    ----------
    source, target:
        Instances over the same schema.
    budget:
        Maximum number of candidate tuple examinations before giving up
        (the search then stops with a non-complete :attr:`outcome`).
    control:
        A pre-built :class:`~repro.runtime.Budget` (node cap, deadline,
        cancellation) governing this search; supersedes ``budget`` and may
        be shared across several searches to bound them jointly.
    """

    def __init__(
        self,
        source: Instance,
        target: Instance,
        budget: int = DEFAULT_HOM_BUDGET,
        control: Budget | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self.budget = budget
        self.control = resolve_control(control, node_limit=budget)
        self._index = TargetIndex(target)
        # Order source tuples most-constrained first: fewest candidate
        # images, then most constants.  Assigning low-fanout tuples first
        # binds shared nulls early and keeps backtracking shallow (e.g. the
        # entity tuples of a data-exchange solution pin their surrogate
        # nulls before the fact tuples that reuse them are placed).
        def fanout(t: Tuple) -> int:
            return sum(1 for _ in self._index.candidates(t.relation.name, t.values))

        self._ordered: list[Tuple] = sorted(
            source.tuples(),
            key=lambda t: (fanout(t), -t.constant_count(), t.tuple_id),
        )

    def find(self) -> ValueMapping | None:
        """Return a homomorphism as a :class:`ValueMapping`, or ``None``.

        ``None`` is a *proof of absence* only when the search completed
        (:attr:`exhausted` is true / :attr:`outcome` is ``COMPLETED``);
        use :meth:`decide` for the tri-state answer.

        A blown recursion stack (very deep source instances) is converted
        into ``outcome=CRASHED`` rather than escaping as a raw
        ``RecursionError`` — the caller keeps a usable inconclusive
        answer.
        """
        assignment: dict[LabeledNull, Value] = {}
        steps_before = self.control.nodes
        with span(
            "homomorphism.search", source_tuples=len(self._ordered)
        ) as search_span:
            try:
                found = self._search(0, assignment)
            except RecursionError:
                self.control.trip(Outcome.CRASHED)
                found = False
            annotate_budget(search_span, self.control)
            search_span.set(found=found)
        registry = active_metrics()
        if registry is not None:
            registry.counter("homomorphism.searches")
            registry.counter(
                "homomorphism.steps", self.control.nodes - steps_before
            )
            registry.counter(
                "homomorphism.outcome", 1, outcome=self.control.outcome.value
            )
        if found:
            return ValueMapping(assignment)
        return None

    def exists(self) -> bool:
        """Whether a homomorphism was found (``False`` also when cut short —
        prefer :meth:`decide`, which keeps those cases apart)."""
        return self.find() is not None

    def decide(self) -> bool | None:
        """Tri-state existence: ``True`` / ``False`` / ``None`` (inconclusive).

        ``None`` means the budget, deadline, or a cancellation cut the
        search before it could either find a homomorphism or exhaust the
        space — the silent-wrong-answer case the old boolean API hid.
        """
        if self.find() is not None:
            return True
        return None if self.control.interrupted else False

    @property
    def steps(self) -> int:
        """Candidate tuple examinations performed so far."""
        return self.control.nodes

    @property
    def exhausted(self) -> bool:
        """Whether the search ran to completion (no limit tripped)."""
        return not self.control.interrupted

    @property
    def outcome(self) -> Outcome:
        """Why the search stopped (``COMPLETED`` unless a limit tripped)."""
        return self.control.outcome

    # -- internals -------------------------------------------------------------

    def _search(self, index: int, assignment: dict[LabeledNull, Value]) -> bool:
        if index == len(self._ordered):
            return True
        t = self._ordered[index]
        for t_prime in self._candidates(t, assignment):
            if not self.control.spend():
                return False
            added = _extend(t, t_prime, assignment)
            if added is None:
                continue
            if self._search(index + 1, assignment):
                return True
            for null in added:
                del assignment[null]
            if self.control.interrupted:
                return False
        return False

    def _candidates(
        self, t: Tuple, assignment: dict[LabeledNull, Value]
    ) -> Iterator[Tuple]:
        """Target tuples whose constants agree with ``t``'s current image."""
        image_values = [
            assignment.get(v, v) if is_null(v) else v for v in t.values
        ]
        yield from self._index.candidates(t.relation.name, image_values)


def _extend(
    t: Tuple, t_prime: Tuple, assignment: dict[LabeledNull, Value]
) -> list[LabeledNull] | None:
    """Try to extend ``assignment`` so that ``h(t) = t_prime``.

    Returns the list of newly bound nulls on success (for backtracking), or
    ``None`` when the pair is inconsistent with the assignment.
    """
    added: list[LabeledNull] = []
    for value, target_value in zip(t.values, t_prime.values):
        if is_constant(value):
            if value != target_value:
                _unbind(assignment, added)
                return None
            continue
        bound = assignment.get(value)
        if bound is None:
            assignment[value] = target_value
            added.append(value)
        elif bound != target_value:
            _unbind(assignment, added)
            return None
    return added


def _unbind(
    assignment: dict[LabeledNull, Value], added: list[LabeledNull]
) -> None:
    for null in added:
        del assignment[null]


def find_homomorphism(
    source: Instance,
    target: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    control: Budget | None = None,
) -> ValueMapping | None:
    """Find a homomorphism ``source → target`` (or ``None``).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> I = Instance.from_rows("R", ("A",), [(LabeledNull("N1"),)], id_prefix="a")
    >>> J = Instance.from_rows("R", ("A",), [("x",)], id_prefix="b")
    >>> h = find_homomorphism(I, J)
    >>> h(LabeledNull("N1"))
    'x'
    """
    return HomomorphismSearch(
        source, target, budget=budget, control=control
    ).find()


def has_homomorphism(
    source: Instance,
    target: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    control: Budget | None = None,
) -> bool | None:
    """Whether a homomorphism ``source → target`` exists — tri-state.

    Returns ``True`` when one was found, ``False`` when the completed
    search proved there is none, and ``None`` when the budget/deadline/
    cancellation cut the search first (inconclusive).  ``None`` is falsy,
    so boolean callers keep their old conservative behaviour while callers
    that care can distinguish "proved absent" from "gave up".
    """
    return HomomorphismSearch(
        source, target, budget=budget, control=control
    ).decide()


def homomorphically_equivalent(
    left: Instance,
    right: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    control: Budget | None = None,
) -> bool | None:
    """Whether homomorphisms exist in both directions — tri-state.

    Universal solutions of the same data-exchange scenario are exactly the
    homomorphically equivalent solutions (Sec. 4.3).  A definitive ``False``
    in either direction decides the answer; otherwise an inconclusive
    direction makes the whole answer ``None``.
    """
    forward = has_homomorphism(left, right, budget=budget, control=control)
    if forward is False:
        return False
    backward = has_homomorphism(right, left, budget=budget, control=control)
    if backward is False:
        return False
    if forward is None or backward is None:
        return None
    return True
