"""Candidate indexes for homomorphism search.

For each relation of the target instance we build the same per-attribute
constant index Alg. 2 uses (constants plus a ``*`` bucket for nulls), so a
source tuple's candidate images are found by intersecting small sets instead
of scanning the relation.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import Value, is_null


class TargetIndex:
    """Per-relation, per-attribute value index over a target instance."""

    def __init__(self, target: Instance) -> None:
        self._tuples: dict[str, dict[str, Tuple]] = {}
        self._buckets: dict[str, list[dict[Value, set[str]]]] = {}
        self._null_buckets: dict[str, list[set[str]]] = {}
        self._all_ids: dict[str, set[str]] = {}
        for relation in target.relations():
            name = relation.schema.name
            arity = relation.schema.arity
            self._tuples[name] = {}
            self._buckets[name] = [{} for _ in range(arity)]
            self._null_buckets[name] = [set() for _ in range(arity)]
            self._all_ids[name] = set()
            for t in relation:
                self._tuples[name][t.tuple_id] = t
                self._all_ids[name].add(t.tuple_id)
                for position, value in enumerate(t.values):
                    if is_null(value):
                        self._null_buckets[name][position].add(t.tuple_id)
                    else:
                        self._buckets[name][position].setdefault(
                            value, set()
                        ).add(t.tuple_id)

    def candidates(
        self, relation_name: str, image_values: Sequence[Value]
    ) -> Iterator[Tuple]:
        """Target tuples that could equal the (partially bound) image.

        A position whose image is a constant ``c`` restricts candidates to
        target tuples with exactly ``c`` there — a homomorphism image
        ``h(t)`` must literally be a tuple of the target, so a target null
        can never stand in for a constant.  Positions whose image is a null
        (bound to a target null or still unbound) impose no index
        restriction; the caller's extension check enforces consistency.
        """
        per_position: list[set[str]] = []
        buckets = self._buckets.get(relation_name)
        if buckets is None:
            return
        for position, value in enumerate(image_values):
            if is_null(value):
                continue
            exact = buckets[position].get(value, set())
            if not exact:
                return
            per_position.append(exact)
        if not per_position:
            ids = self._all_ids[relation_name]
        else:
            per_position.sort(key=len)
            ids = set(per_position[0])
            for candidate_set in per_position[1:]:
                ids &= candidate_set
                if not ids:
                    return
        lookup = self._tuples[relation_name]
        for tuple_id in sorted(ids):
            yield lookup[tuple_id]
