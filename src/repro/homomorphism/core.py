"""Core computation for instances with labeled nulls.

The *core* of an instance ``I`` is a smallest sub-instance ``C ⊆ I`` such
that there is a homomorphism ``I → C`` (a retraction).  Cores of universal
data-exchange solutions are the unique-up-to-isomorphism minimal solutions
the Table 6 experiment uses as gold standards (Fagin, Kolaitis, Popa:
"Data Exchange: Getting to the Core").

The algorithm folds greedily: repeatedly look for a homomorphism from ``I``
into ``I`` minus one tuple; when one exists, replace ``I`` by the image and
continue.  Each fold strictly shrinks the instance, so at most ``|I|``
homomorphism searches run.  This is exponential in the worst case (deciding
core-ness is intractable) but fast on chase-generated instances whose null
blocks are small.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..mappings.value_mapping import ValueMapping
from ..obs.metrics import active_metrics
from ..obs.trace import span
from ..runtime.budget import Budget
from .homomorphism import DEFAULT_HOM_BUDGET, HomomorphismSearch


def _image_instance(instance: Instance, h: ValueMapping, name: str) -> Instance:
    """``h(I)`` restricted to tuples of ``I`` (deduplicated by content).

    For a retraction the image tuples are tuples of ``I``; we keep the first
    tuple id found for each distinct content.
    """
    result = Instance(instance.schema, name=name)
    seen_contents: set = set()
    for t in instance.tuples():
        image = h.apply_tuple(t)
        content = image.content()
        if content in seen_contents:
            continue
        seen_contents.add(content)
        result.add(image)
    return result


def compute_core(
    instance: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    name: str | None = None,
    control: Budget | None = None,
) -> Instance:
    """Compute the core of ``instance`` by iterated folding.

    Returns a new instance; the input is not modified.  The result is a
    retract of the input: homomorphically equivalent to it and admitting no
    further proper fold.

    Core computation is *anytime*: each fold preserves homomorphic
    equivalence, so when a shared ``control`` budget trips mid-way the
    partially-folded instance returned is still a valid (just possibly
    non-minimal) retract; ``control.outcome`` tells the caller whether
    minimality was reached.  Without ``control`` each inner homomorphism
    search gets its own ``budget``-step allowance (the legacy behaviour).

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> I = Instance.from_rows("R", ("A", "B"),
    ...     [("a", "b"), ("a", LabeledNull("N1"))], id_prefix="t")
    >>> core = compute_core(I)
    >>> len(core)   # (a, N1) folds onto (a, b)
    1
    """
    current = instance.with_fresh_ids(
        "c", name=name if name is not None else f"core({instance.name})"
    )
    folds = 0
    with span("core.compute", input_tuples=len(current)) as core_span:
        changed = True
        while changed:
            changed = False
            if control is not None and not control.check():
                break
            for t in sorted(
                current.tuples(),
                key=lambda x: (x.constant_count(), x.tuple_id),
            ):
                # Try to retract: find h : current -> current \ {t}.
                target = current.filtered(lambda x: x.tuple_id != t.tuple_id)
                search = HomomorphismSearch(
                    current, target, budget=budget, control=control
                )
                h = search.find()
                if h is not None:
                    current = _image_instance(current, h, current.name)
                    changed = True
                    folds += 1
                    break
                if control is not None and control.interrupted:
                    break
        core_span.set(folds=folds, core_tuples=len(current))
        if control is not None:
            core_span.set_status(control.outcome.value)
    registry = active_metrics()
    if registry is not None:
        registry.counter("core.computations")
        registry.counter("core.folds", folds)
    return current


def is_core(
    instance: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    control: Budget | None = None,
) -> bool | None:
    """Whether ``instance`` admits no proper fold — tri-state.

    ``False`` when a fold was found (definitive), ``True`` when every fold
    search completed without finding one (a proof), and ``None`` (falsy)
    when at least one search was cut short by its budget/deadline/token so
    core-ness could not be decided.
    """
    inconclusive = False
    for t in instance.tuples():
        target = instance.filtered(lambda x: x.tuple_id != t.tuple_id)
        verdict = HomomorphismSearch(
            instance, target, budget=budget, control=control
        ).decide()
        if verdict is True:
            return False
        if verdict is None:
            inconclusive = True
            if control is not None and control.interrupted:
                break  # a shared tripped budget would cut every later search
    return None if inconclusive else True
