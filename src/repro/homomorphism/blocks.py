"""Null blocks and block-wise core computation.

The *Gaifman graph of nulls* connects two tuples when they share a labeled
null; its connected components are the instance's **blocks**.  Ground tuples
form singleton blocks.  For chase-generated instances blocks are small (the
arity of a tgd bounds them), and the classic result of Fagin, Kolaitis and
Popa ("Data Exchange: Getting to the Core") computes the core block by
block: a fold of the whole instance can be decomposed into folds that each
move a single block into the rest of the instance.

:func:`compute_core_blockwise` exploits this: instead of searching for an
endomorphism of the entire instance (exponential in ``|I|``), it searches,
per block, for a homomorphism of that block into the full instance that
*shrinks* it — exponential only in the block size.  On the Table 6
data-exchange solutions this turns core computation from infeasible to
milliseconds.
"""

from __future__ import annotations

from collections import Counter

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import is_null
from ..utils.unionfind import UnionFind
from .homomorphism import DEFAULT_HOM_BUDGET, HomomorphismSearch


def null_blocks(instance: Instance) -> list[list[Tuple]]:
    """Partition tuples into blocks connected via shared labeled nulls.

    Ground tuples form singleton blocks.  Blocks are returned sorted by
    (size, first tuple id) for determinism.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> N = LabeledNull
    >>> inst = Instance.from_rows("R", ("A", "B"),
    ...     [(N("x"), "1"), (N("x"), "2"), ("g", "3")])
    >>> [len(block) for block in null_blocks(inst)]
    [1, 2]
    """
    components: UnionFind = UnionFind()
    anchor_of_null: dict = {}
    for t in instance.tuples():
        components.add(t.tuple_id)
        for null in set(t.nulls()):
            if null in anchor_of_null:
                components.union(anchor_of_null[null], t.tuple_id)
            else:
                anchor_of_null[null] = t.tuple_id

    groups: dict[str, list[Tuple]] = {}
    for t in instance.tuples():
        groups.setdefault(components.find(t.tuple_id), []).append(t)
    blocks = [
        sorted(group, key=lambda t: t.tuple_id) for group in groups.values()
    ]
    blocks.sort(key=lambda block: (len(block), block[0].tuple_id))
    return blocks


def _sub_instance(instance: Instance, tuples: list[Tuple], name: str) -> Instance:
    result = Instance(instance.schema, name=name)
    for t in tuples:
        result.add(t)
    return result


def _dedupe_by_content(instance: Instance) -> Instance:
    """Drop tuples whose content duplicates an earlier tuple (set semantics)."""
    result = Instance(instance.schema, name=instance.name)
    seen: set = set()
    for t in instance.tuples():
        content = t.content()
        if content in seen:
            continue
        seen.add(content)
        result.add(t)
    return result


def _shrinks(block: list[Tuple], h, rest_contents: Counter) -> bool:
    """Whether mapping ``block`` through ``h`` loses at least one fact.

    The fold ``I ↦ h(B) ∪ (I \\ B)`` shrinks the instance iff some image
    tuple duplicates a fact of the rest, or two block tuples collapse.
    """
    image_contents = Counter(h.apply_tuple(t).content() for t in block)
    if len(image_contents) < len(block):
        return True
    return any(
        content in rest_contents for content in image_contents
    )


def compute_core_blockwise(
    instance: Instance,
    budget: int = DEFAULT_HOM_BUDGET,
    name: str | None = None,
) -> Instance:
    """Compute the core by folding one null block at a time.

    Correct whenever folds decompose block-wise — in particular for
    instances whose blocks do not gain new null links through folding
    (chase-generated target instances).  For arbitrary instances the result
    is a (possibly non-minimal) retract; :func:`repro.homomorphism.core
    .compute_core` remains the general fallback.
    """
    current = _dedupe_by_content(
        instance.with_fresh_ids(
            "c", name=name if name is not None else f"core({instance.name})"
        )
    )
    changed = True
    while changed:
        changed = False
        blocks = null_blocks(current)
        all_contents = current.content_multiset()
        for block in blocks:
            if all(t.is_ground() for t in block):
                continue
            rest_contents = all_contents - Counter(
                t.content() for t in block
            )
            block_instance = _sub_instance(current, block, "block")
            # Search for a hom of the block into the full instance that
            # shrinks it.  The plain search may return the identity, so we
            # enumerate candidate searches by forbidding identity images:
            # try mapping the block while requiring at least one fact to
            # land on the rest / collapse.
            search = _ShrinkingBlockSearch(
                block_instance, current, rest_contents, budget=budget
            )
            h = search.find_shrinking()
            if h is None:
                continue
            surviving = [
                t for t in current.tuples()
                if t.tuple_id not in {b.tuple_id for b in block}
            ]
            folded = _sub_instance(current, surviving, current.name)
            seen = set(folded.content_multiset())
            for t in block:
                image = h.apply_tuple(t)
                if image.content() in seen:
                    continue
                seen.add(image.content())
                folded.add(image)
            current = folded
            changed = True
            break
    return current


class _ShrinkingBlockSearch(HomomorphismSearch):
    """Homomorphism search accepting only solutions that shrink the block."""

    def __init__(self, block, target, rest_contents, budget):
        super().__init__(block, target, budget=budget)
        self._block_tuples = list(block.tuples())
        self._rest_contents = rest_contents

    def find_shrinking(self):
        """Enumerate homomorphisms until a shrinking one is found."""
        found = []

        def accept(assignment) -> bool:
            from ..mappings.value_mapping import ValueMapping

            h = ValueMapping(dict(assignment))
            if _shrinks(self._block_tuples, h, self._rest_contents):
                found.append(h)
                return True
            return False

        self._enumerate(0, {}, accept)
        return found[0] if found else None

    def _enumerate(self, index, assignment, accept) -> bool:
        if index == len(self._ordered):
            return accept(assignment)
        t = self._ordered[index]
        for t_prime in self._candidates(t, assignment):
            if not self.control.spend():
                return False
            added = _extend_for_enumeration(t, t_prime, assignment)
            if added is None:
                continue
            if self._enumerate(index + 1, assignment, accept):
                return True
            for null in added:
                del assignment[null]
            if self.control.interrupted:
                return False
        return False


def _extend_for_enumeration(t, t_prime, assignment):
    """Extend ``assignment`` so that h(t) = t'; None when inconsistent."""
    from ..core.values import is_constant

    added = []
    for value, target_value in zip(t.values, t_prime.values):
        if is_constant(value):
            if value != target_value:
                for null in added:
                    del assignment[null]
                return None
            continue
        bound = assignment.get(value)
        if bound is None:
            assignment[value] = target_value
            added.append(value)
        elif bound != target_value:
            for null in added:
                del assignment[null]
            return None
    return added


def is_core_blockwise(
    instance: Instance, budget: int = DEFAULT_HOM_BUDGET
) -> bool | None:
    """Whether no block of ``instance`` admits a shrinking fold — tri-state.

    Duplicate tuple contents (bag artifacts) also disqualify an instance:
    a core is a set of facts.  As with :func:`~repro.homomorphism.core
    .is_core`, ``None`` (falsy) means some block search was cut short by
    its budget, so core-ness could not be decided.
    """
    if any(count > 1 for count in instance.content_multiset().values()):
        return False
    blocks = null_blocks(instance)
    all_contents = instance.content_multiset()
    inconclusive = False
    for block in blocks:
        if all(t.is_ground() for t in block):
            continue
        rest_contents = all_contents - Counter(t.content() for t in block)
        block_instance = _sub_instance(instance, block, "block")
        search = _ShrinkingBlockSearch(
            block_instance, instance, rest_contents, budget=budget
        )
        if search.find_shrinking() is not None:
            return False
        if search.control.interrupted:
            inconclusive = True
    return None if inconclusive else True
