"""Homomorphisms, isomorphisms, and cores of instances with labeled nulls."""

from .blocks import (
    compute_core_blockwise,
    is_core_blockwise,
    null_blocks,
)
from .core import compute_core, is_core
from .homomorphism import (
    DEFAULT_HOM_BUDGET,
    HomomorphismSearch,
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
)
from .isomorphism import (
    DEFAULT_ISO_BUDGET,
    IsomorphismSearch,
    are_isomorphic,
    find_isomorphism,
)

__all__ = [
    "DEFAULT_HOM_BUDGET",
    "DEFAULT_ISO_BUDGET",
    "HomomorphismSearch",
    "IsomorphismSearch",
    "are_isomorphic",
    "compute_core",
    "compute_core_blockwise",
    "find_homomorphism",
    "find_isomorphism",
    "has_homomorphism",
    "homomorphically_equivalent",
    "is_core",
    "is_core_blockwise",
    "null_blocks",
]
