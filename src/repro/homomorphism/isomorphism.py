"""Isomorphism of instances with labeled nulls (paper Sec. 2).

Two instances are isomorphic — they represent the same incomplete database —
iff there is a *bijective homomorphism* between them: a homomorphism that
maps nulls to nulls injectively and induces a bijection on tuples.
Isomorphic instances must receive similarity 1 (Eq. 2); the tests use this
module as the oracle for that axiom.
"""

from __future__ import annotations

from typing import Iterator

from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, Value, is_constant, is_null
from ..mappings.value_mapping import ValueMapping
from ..runtime.budget import Budget, resolve_control
from ..runtime.outcome import Outcome
from .search_index import TargetIndex

DEFAULT_ISO_BUDGET = 5_000_000
"""Default cap on backtracking steps for isomorphism search."""


class IsomorphismSearch:
    """Backtracking search for a bijective homomorphism ``left → right``."""

    def __init__(
        self,
        left: Instance,
        right: Instance,
        budget: int = DEFAULT_ISO_BUDGET,
        control: Budget | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.budget = budget
        self.control = resolve_control(control, node_limit=budget)
        self._index = TargetIndex(right)
        self._ordered: list[Tuple] = sorted(
            left.tuples(),
            key=lambda t: (-t.constant_count(), t.tuple_id),
        )

    def find(self) -> ValueMapping | None:
        """Return an isomorphism as a :class:`ValueMapping`, or ``None``.

        Fast rejections first: relation cardinalities and the multisets of
        constants-per-position must agree.
        """
        if not _profiles_agree(self.left, self.right):
            return None
        assignment: dict[LabeledNull, LabeledNull] = {}
        used_nulls: set[LabeledNull] = set()
        used_tuples: set[str] = set()
        if self._search(0, assignment, used_nulls, used_tuples):
            return ValueMapping(assignment)
        return None

    def decide(self) -> bool | None:
        """Tri-state: ``True`` / ``False`` / ``None`` when cut short."""
        if self.find() is not None:
            return True
        return None if self.control.interrupted else False

    @property
    def steps(self) -> int:
        """Candidate tuple examinations performed so far."""
        return self.control.nodes

    @property
    def exhausted(self) -> bool:
        """Whether the search ran to completion (no limit tripped)."""
        return not self.control.interrupted

    @property
    def outcome(self) -> Outcome:
        """Why the search stopped (``COMPLETED`` unless a limit tripped)."""
        return self.control.outcome

    def _search(
        self,
        index: int,
        assignment: dict[LabeledNull, LabeledNull],
        used_nulls: set[LabeledNull],
        used_tuples: set[str],
    ) -> bool:
        if index == len(self._ordered):
            return True
        t = self._ordered[index]
        for t_prime in self._candidates(t, assignment):
            if not self.control.spend():
                return False
            if t_prime.tuple_id in used_tuples:
                continue
            added = _extend_injective(t, t_prime, assignment, used_nulls)
            if added is None:
                continue
            used_tuples.add(t_prime.tuple_id)
            if self._search(index + 1, assignment, used_nulls, used_tuples):
                return True
            used_tuples.discard(t_prime.tuple_id)
            for null in added:
                used_nulls.discard(assignment[null])
                del assignment[null]
            if self.control.interrupted:
                return False
        return False

    def _candidates(
        self, t: Tuple, assignment: dict[LabeledNull, LabeledNull]
    ) -> Iterator[Tuple]:
        image_values: list[Value] = [
            assignment.get(v, v) if is_null(v) else v for v in t.values
        ]
        yield from self._index.candidates(t.relation.name, image_values)


def _extend_injective(
    t: Tuple,
    t_prime: Tuple,
    assignment: dict[LabeledNull, LabeledNull],
    used_nulls: set[LabeledNull],
) -> list[LabeledNull] | None:
    """Extend an injective null-to-null assignment so ``h(t) = t'``."""
    added: list[LabeledNull] = []

    def undo() -> None:
        for null in added:
            used_nulls.discard(assignment[null])
            del assignment[null]

    for value, target_value in zip(t.values, t_prime.values):
        if is_constant(value):
            if value != target_value:
                undo()
                return None
            continue
        # Nulls must map to nulls for a bijective homomorphism.
        if not is_null(target_value):
            undo()
            return None
        bound = assignment.get(value)
        if bound is None:
            if target_value in used_nulls:
                undo()
                return None
            assignment[value] = target_value
            used_nulls.add(target_value)
            added.append(value)
        elif bound != target_value:
            undo()
            return None
    return added


def _profiles_agree(left: Instance, right: Instance) -> bool:
    """Cheap necessary conditions for isomorphism."""
    if len(left) != len(right):
        return False
    if len(left.vars()) != len(right.vars()):
        return False
    for relation in left.relations():
        other = right.relation(relation.schema.name)
        if len(relation) != len(other):
            return False
        # Multisets of "constant patterns" per relation must agree: nulls
        # replaced by a placeholder.
        def pattern_multiset(rel):
            from collections import Counter

            return Counter(
                tuple(
                    "\0null" if is_null(v) else v for v in t.values
                )
                for t in rel
            )

        if pattern_multiset(relation) != pattern_multiset(other):
            return False
    return True


def find_isomorphism(
    left: Instance,
    right: Instance,
    budget: int = DEFAULT_ISO_BUDGET,
    control: Budget | None = None,
) -> ValueMapping | None:
    """Find a bijective homomorphism ``left → right`` (or ``None``)."""
    return IsomorphismSearch(left, right, budget=budget, control=control).find()


def are_isomorphic(
    left: Instance,
    right: Instance,
    budget: int = DEFAULT_ISO_BUDGET,
    control: Budget | None = None,
) -> bool | None:
    """Whether the instances represent the same incomplete database — tri-state.

    ``True`` / ``False`` are definitive; ``None`` (falsy) means the budget,
    deadline, or a cancellation cut the search before it could decide.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> I = Instance.from_rows("R", ("A",), [(LabeledNull("N1"),)], id_prefix="a")
    >>> J = Instance.from_rows("R", ("A",), [(LabeledNull("Nz"),)], id_prefix="b")
    >>> are_isomorphic(I, J)
    True
    """
    return IsomorphismSearch(
        left, right, budget=budget, control=control
    ).decide()
