"""Match constraints and application presets (paper Sec. 4.3).

The instance-similarity framework is tailored to applications by restricting
tuple mappings (injectivity, totality).  :class:`MatchOptions` bundles those
restrictions plus the scoring parameter λ, and provides the presets the paper
discusses:

* **versioning** — tuples are unique entities that may be inserted/deleted:
  fully injective, not necessarily total.
* **record merging** — multiple old records may merge into one: left
  injective only.
* **universal vs. core** — each universal-solution tuple maps to exactly one
  core tuple and everything must be covered: left injective + total.
* **universal vs. universal** — information can be split/merged across
  tuples: total, no injectivity requirement.
* **data repair** — compare repairs cell-by-cell: complete and fully
  injective.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.errors import ScoringError
from ..core.instance import Instance
from .instance_match import InstanceMatch

DEFAULT_LAMBDA = 0.5
"""Default penalty λ for matching a null against a constant (0 ≤ λ < 1)."""


@dataclass(frozen=True)
class MatchOptions:
    """Constraints and parameters governing a comparison.

    Attributes
    ----------
    left_injective, right_injective:
        Require the tuple mapping to be functional on the respective side.
    left_total, right_total:
        Require every tuple of the respective instance to be matched.
        Totality is treated as a *validation* constraint (the algorithms try
        to match everything anyway; a result that fails a totality
        requirement is reported via :meth:`violations`).
    lam:
        The λ penalty for matching a labeled null against a constant
        (Def. 5.5); must satisfy ``0 <= lam < 1``.
    """

    left_injective: bool = False
    right_injective: bool = False
    left_total: bool = False
    right_total: bool = False
    lam: float = DEFAULT_LAMBDA

    def __post_init__(self) -> None:
        if not 0.0 <= self.lam < 1.0:
            raise ScoringError(f"lambda must be in [0, 1), got {self.lam}")

    # -- presets ------------------------------------------------------------

    @classmethod
    def general(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """No structural restrictions (the most general n:m setting)."""
        return cls(lam=lam)

    @classmethod
    def versioning(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """Data versioning: fully injective, partial allowed (Sec. 4.3)."""
        return cls(left_injective=True, right_injective=True, lam=lam)

    @classmethod
    def record_merging(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """Merging domains (e.g. patient records): left injective only."""
        return cls(left_injective=True, lam=lam)

    @classmethod
    def universal_vs_core(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """Compare a universal solution (left) to a core solution (right).

        Left injective (Fagin et al.'s 1:1 homomorphism onto the core) and
        total on both sides (Sec. 4.3 data-exchange discussion).
        """
        return cls(
            left_injective=True, left_total=True, right_total=True, lam=lam
        )

    @classmethod
    def universal_vs_universal(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """Compare two universal solutions: total, non-injective."""
        return cls(left_total=True, right_total=True, lam=lam)

    @classmethod
    def data_repair(cls, lam: float = DEFAULT_LAMBDA) -> "MatchOptions":
        """Compare repairs against a gold repair: fully injective."""
        return cls(left_injective=True, right_injective=True, lam=lam)

    # -- behaviour ----------------------------------------------------------

    @property
    def functional(self) -> bool:
        """Alias used by the algorithms: left injective = functional on I."""
        return self.left_injective

    @property
    def fully_injective(self) -> bool:
        """1:1 tuple mappings required."""
        return self.left_injective and self.right_injective

    def with_lambda(self, lam: float) -> "MatchOptions":
        """Return a copy with a different λ."""
        return replace(self, lam=lam)

    def violations(
        self, match: InstanceMatch, left: Instance, right: Instance
    ) -> list[str]:
        """Describe which of these constraints ``match`` violates."""
        problems = []
        classification = match.m.classify(left, right)
        if self.left_injective and not classification.left_injective:
            problems.append("tuple mapping is not left injective")
        if self.right_injective and not classification.right_injective:
            problems.append("tuple mapping is not right injective")
        if self.left_total and not classification.left_total:
            problems.append("tuple mapping is not total on the left instance")
        if self.right_total and not classification.right_total:
            problems.append("tuple mapping is not total on the right instance")
        return problems

    def describe(self) -> str:
        """Human-readable summary, e.g. ``"1:1 partial, λ=0.5"``."""
        if self.fully_injective:
            shape = "1:1"
        elif self.left_injective:
            shape = "n:1"
        elif self.right_injective:
            shape = "1:n"
        else:
            shape = "n:m"
        total = []
        if self.left_total:
            total.append("left-total")
        if self.right_total:
            total.append("right-total")
        coverage = " ".join(total) if total else "partial"
        return f"{shape} {coverage}, λ={self.lam}"
