"""Value mappings, tuple mappings, instance matches, and match constraints."""

from .constraints import DEFAULT_LAMBDA, MatchOptions
from .explain import MatchStatistics, explain_match, match_statistics
from .instance_match import InstanceMatch
from .tuple_mapping import MappingClassification, TupleMapping
from .value_mapping import ValueMapping

__all__ = [
    "DEFAULT_LAMBDA",
    "InstanceMatch",
    "MappingClassification",
    "MatchOptions",
    "MatchStatistics",
    "TupleMapping",
    "ValueMapping",
    "explain_match",
    "match_statistics",
]
