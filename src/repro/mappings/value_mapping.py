"""Value mappings (paper Def. 4.1).

A value mapping for instance ``I`` is a total function
``adom(I) → Vars ∪ Consts`` that is the identity on constants.  Following the
paper's notational convention, we store only the *non-identity* part (the
null assignments) and treat every unlisted value as mapped to itself.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..core.errors import MappingError
from ..core.instance import Instance
from ..core.tuples import Tuple
from ..core.values import LabeledNull, Value, is_null


class ValueMapping:
    """A value mapping, stored as a partial function on labeled nulls.

    Parameters
    ----------
    assignments:
        Mapping from labeled nulls to their images (nulls or constants).
        Values outside the mapping are implicitly fixed.

    Examples
    --------
    >>> from repro.core.values import LabeledNull
    >>> h = ValueMapping({LabeledNull("N1"): "VLDB End."})
    >>> h(LabeledNull("N1"))
    'VLDB End.'
    >>> h("SIGMOD")  # constants are fixed
    'SIGMOD'
    """

    __slots__ = ("_assignments",)

    def __init__(
        self, assignments: Mapping[LabeledNull, Value] | None = None
    ) -> None:
        self._assignments: dict[LabeledNull, Value] = {}
        if assignments:
            for null, image in assignments.items():
                self.assign(null, image)

    def assign(self, null: LabeledNull, image: Value) -> None:
        """Set ``h(null) = image``; re-assignments must agree.

        Raises :class:`MappingError` when ``null`` is not a labeled null
        (constants must stay fixed) or when it already has a different image
        (a value mapping is a function).
        """
        if not is_null(null):
            raise MappingError(
                f"value mappings must fix constants; cannot remap {null!r}"
            )
        existing = self._assignments.get(null)
        if existing is not None and existing != image:
            raise MappingError(
                f"conflicting images for {null!r}: {existing!r} vs {image!r}"
            )
        self._assignments[null] = image

    def __call__(self, value: Value) -> Value:
        """Apply the mapping to one value."""
        if is_null(value):
            return self._assignments.get(value, value)
        return value

    def apply_tuple(self, t: Tuple) -> Tuple:
        """``h(t)``: apply the mapping to every cell of ``t``."""
        return t.with_values(tuple(self(v) for v in t.values))

    def apply_instance(self, instance: Instance, name: str | None = None) -> Instance:
        """``h(I)``: apply the mapping to every tuple of ``instance``."""
        result = Instance(
            instance.schema, name=name if name is not None else instance.name
        )
        for t in instance.tuples():
            result.add(self.apply_tuple(t))
        return result

    # -- introspection -------------------------------------------------------

    def items(self) -> Iterator[tuple[LabeledNull, Value]]:
        """Yield the explicit (non-identity) assignments."""
        return iter(self._assignments.items())

    def domain_nulls(self) -> set[LabeledNull]:
        """Nulls with an explicit assignment."""
        return set(self._assignments)

    def __len__(self) -> int:
        return len(self._assignments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueMapping):
            return NotImplemented
        return self._assignments == other._assignments

    def __reduce__(self):
        # Canonical pickled form: assignments sorted by null label, so
        # content-equal mappings serialize to identical bytes regardless of
        # the order in which assignments were made.
        ordered = sorted(self._assignments.items(), key=lambda kv: kv[0].label)
        return (ValueMapping, (dict(ordered),))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n.label}→{v.label if is_null(v) else v!r}"
            for n, v in sorted(self._assignments.items(), key=lambda kv: kv[0].label)
        )
        return f"ValueMapping({{{parts}}})"

    def is_identity_on(self, instance: Instance) -> bool:
        """Whether the mapping fixes every value of ``adom(instance)``."""
        return all(self(v) == v for v in instance.adom())

    def is_injective_on_nulls(self, instance: Instance) -> bool:
        """Whether distinct nulls of ``instance`` have distinct images.

        Injectivity on nulls is what makes ⊓ equal to 1 everywhere, hence no
        scoring penalty (Sec. 5.1 discussion).
        """
        images = [self(n) for n in instance.vars()]
        return len(images) == len(set(images))

    def fiber_sizes(self, instance: Instance) -> dict[LabeledNull, int]:
        """For each null ``v`` of ``instance``, ``|{v' ∈ Vars(I) : h(v')=h(v)}|``.

        This is the ⊓ measure of paper Eq. 6 restricted to one side; see
        :mod:`repro.scoring.noninjectivity`.
        """
        nulls = instance.vars()
        by_image: dict[Value, int] = {}
        for null in nulls:
            image = self(null)
            by_image[image] = by_image.get(image, 0) + 1
        return {null: by_image[self(null)] for null in nulls}

    def copy(self) -> "ValueMapping":
        """Return an independent copy."""
        clone = ValueMapping()
        clone._assignments = dict(self._assignments)
        return clone
