"""Human-readable explanations of instance matches.

The paper motivates that, as a side-effect, the similarity computation
returns a mapping that *explains* the score (Sec. 1, Sec. 7.2): which tuples
correspond, how nulls were substituted, and which tuples have no counterpart.
This module renders that explanation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tuples import Tuple
from ..core.values import is_null
from .instance_match import InstanceMatch


@dataclass(frozen=True)
class MatchStatistics:
    """Counts reported by the versioning experiment (Table 7).

    Attributes
    ----------
    matched_pairs:
        Number of pairs in the tuple mapping (``#M``).
    left_non_matching:
        Left tuples with no counterpart (``#LNM``).
    right_non_matching:
        Right tuples with no counterpart (``#RNM``).
    """

    matched_pairs: int
    left_non_matching: int
    right_non_matching: int


def match_statistics(match: InstanceMatch) -> MatchStatistics:
    """Compute the #M / #LNM / #RNM counts for ``match``."""
    return MatchStatistics(
        matched_pairs=len(match.m),
        left_non_matching=len(match.unmatched_left()),
        right_non_matching=len(match.unmatched_right()),
    )


def _render_tuple(t: Tuple) -> str:
    rendered = ", ".join(
        f"{a}={v.label if is_null(v) else v}" for a, v in t.items()
    )
    return f"{t.tuple_id}({rendered})"


def explain_match(match: InstanceMatch, max_rows: int = 20) -> str:
    """Render a multi-line explanation of an instance match.

    Shows up to ``max_rows`` matched pairs, the value-mapping substitutions
    each pair relies on, and the unmatched tuples on either side.
    """
    lines = [
        f"Instance match {match.left.name!r} ~ {match.right.name!r} "
        f"[{match.classification().describe()}]"
    ]

    lines.append(f"Matched pairs ({len(match.m)}):")
    for index, (t, t_prime) in enumerate(sorted(
        match.pairs(), key=lambda p: (p[0].tuple_id, p[1].tuple_id)
    )):
        if index >= max_rows:
            lines.append(f"  ... and {len(match.m) - max_rows} more")
            break
        lines.append(f"  {_render_tuple(t)}  <->  {_render_tuple(t_prime)}")
        substitutions = []
        for value, side_h in ((t, match.h_l), (t_prime, match.h_r)):
            for cell_value in value.values:
                if is_null(cell_value) and side_h(cell_value) != cell_value:
                    image = side_h(cell_value)
                    rendered = image.label if is_null(image) else repr(image)
                    substitutions.append(f"{cell_value.label}→{rendered}")
        if substitutions:
            lines.append(f"      via {{{', '.join(sorted(set(substitutions)))}}}")

    for label, tuples in (
        ("left", match.unmatched_left()),
        ("right", match.unmatched_right()),
    ):
        lines.append(f"Unmatched {label} tuples ({len(tuples)}):")
        for index, t in enumerate(sorted(tuples, key=lambda x: x.tuple_id)):
            if index >= max_rows:
                lines.append(f"  ... and {len(tuples) - max_rows} more")
                break
            lines.append(f"  {_render_tuple(t)}")

    return "\n".join(lines)
