"""Instance matches (paper Def. 4.3).

An instance match is a triple ``M = (h_l, h_r, m)``: a value mapping for the
left instance, a value mapping for the right instance, and a tuple mapping.
``M`` is *complete* when every matched pair agrees under the value mappings:
``∀ (t, t') ∈ m : h_l(t) = h_r(t')``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import MappingError
from ..core.instance import Instance
from ..core.tuples import Tuple
from .tuple_mapping import MappingClassification, TupleMapping
from .value_mapping import ValueMapping


@dataclass
class InstanceMatch:
    """An instance match ``(h_l, h_r, m)`` between two instances.

    Attributes
    ----------
    left, right:
        The matched instances (``I`` and ``I'`` in the paper).
    h_l, h_r:
        Value mappings for the left and right instance respectively.
    m:
        The tuple mapping.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.values import LabeledNull
    >>> I = Instance.from_rows("R", ("A",), [(LabeledNull("N1"),)], id_prefix="l")
    >>> J = Instance.from_rows("R", ("A",), [(LabeledNull("Na"),)], id_prefix="r")
    >>> M = InstanceMatch(I, J, ValueMapping({LabeledNull("N1"): LabeledNull("Na")}),
    ...                   ValueMapping(), TupleMapping([("l1", "r1")]))
    >>> M.is_complete()
    True
    """

    left: Instance
    right: Instance
    h_l: ValueMapping = field(default_factory=ValueMapping)
    h_r: ValueMapping = field(default_factory=ValueMapping)
    m: TupleMapping = field(default_factory=TupleMapping)

    # -- pair access ------------------------------------------------------------

    def pairs(self) -> list[tuple[Tuple, Tuple]]:
        """The matched tuple pairs as actual tuples (not ids)."""
        return [
            (self.left.get_tuple(left_id), self.right.get_tuple(right_id))
            for left_id, right_id in self.m
        ]

    def unmatched_left(self) -> list[Tuple]:
        """Left tuples not participating in any pair (the "differences")."""
        matched = self.m.matched_left_ids()
        return [t for t in self.left.tuples() if t.tuple_id not in matched]

    def unmatched_right(self) -> list[Tuple]:
        """Right tuples not participating in any pair."""
        matched = self.m.matched_right_ids()
        return [t for t in self.right.tuples() if t.tuple_id not in matched]

    # -- completeness (Def. 4.3) ---------------------------------------------

    def violating_pairs(self) -> list[tuple[Tuple, Tuple]]:
        """Pairs ``(t, t')`` with ``h_l(t) != h_r(t')`` (empty iff complete)."""
        violations = []
        for t, t_prime in self.pairs():
            if t.relation.name != t_prime.relation.name:
                violations.append((t, t_prime))
                continue
            left_image = tuple(self.h_l(v) for v in t.values)
            right_image = tuple(self.h_r(v) for v in t_prime.values)
            if left_image != right_image:
                violations.append((t, t_prime))
        return violations

    def is_complete(self) -> bool:
        """Whether ``∀ (t, t') ∈ m : h_l(t) = h_r(t')``."""
        return not self.violating_pairs()

    def assert_complete(self) -> None:
        """Raise :class:`MappingError` unless the match is complete."""
        violations = self.violating_pairs()
        if violations:
            t, t_prime = violations[0]
            raise MappingError(
                f"instance match is not complete: h_l({t.tuple_id}) != "
                f"h_r({t_prime.tuple_id}) (and {len(violations) - 1} more)"
            )

    # -- structure ----------------------------------------------------------------

    def classification(self) -> MappingClassification:
        """Structural classification of the underlying tuple mapping."""
        return self.m.classify(self.left, self.right)

    def inverted(self) -> "InstanceMatch":
        """``M^{-1} = (h_r, h_l, m^{-1})`` — used by the symmetry lemma."""
        return InstanceMatch(
            left=self.right,
            right=self.left,
            h_l=self.h_r,
            h_r=self.h_l,
            m=self.m.inverted(),
        )

    def is_homomorphism_left_to_right(self) -> bool:
        """Whether ``M`` encodes a homomorphism ``I → I'`` (Sec. 4.3 remark).

        Requires: ``m`` total on the left, left injective (functional), and
        ``h_r`` the identity on the right instance.
        """
        return (
            self.m.is_left_total(self.left)
            and self.m.is_left_injective()
            and self.h_r.is_identity_on(self.right)
            and self.is_complete()
        )

    def is_isomorphism(self) -> bool:
        """Whether ``M`` encodes an isomorphism (total both sides + 1:1).

        Additionally requires both value mappings to be injective on nulls and
        to map nulls to nulls, so that the induced bijective homomorphism
        exists.
        """
        classification = self.classification()
        if not (classification.total and classification.fully_injective):
            return False
        if not self.is_complete():
            return False
        return self.h_l.is_injective_on_nulls(
            self.left
        ) and self.h_r.is_injective_on_nulls(self.right)

    def __repr__(self) -> str:
        return (
            f"InstanceMatch({self.left.name!r}~{self.right.name!r}, "
            f"|m|={len(self.m)}, |h_l|={len(self.h_l)}, |h_r|={len(self.h_r)})"
        )
