"""Tuple mappings (paper Def. 4.2) and their taxonomy.

A tuple mapping between instances ``I`` and ``I'`` is a *relation*
``m ⊆ I × I'`` — deliberately not a function, so the framework covers
non-functional matches (universal-solution comparison) as well as functional
ones (versioning, repair).  The classification predicates below implement the
paper's taxonomy:

* left injective — no tuple of ``I`` maps to two tuples of ``I'``;
* right injective — no tuple of ``I'`` is hit by two tuples of ``I``;
* fully injective — both;
* left/right total — every tuple of ``I`` / ``I'`` participates.

Note the paper names totality by the *covered* side: a mapping is "left
total" when it is defined on all of ``I``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.errors import MappingError
from ..core.instance import Instance


@dataclass(frozen=True)
class MappingClassification:
    """Summary of a tuple mapping's structural properties."""

    left_injective: bool
    right_injective: bool
    left_total: bool
    right_total: bool

    @property
    def fully_injective(self) -> bool:
        """Both left and right injective."""
        return self.left_injective and self.right_injective

    @property
    def total(self) -> bool:
        """Total on both sides."""
        return self.left_total and self.right_total

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``"1:1, partial"``."""
        if self.fully_injective:
            shape = "1:1"
        elif self.left_injective:
            shape = "n:1"
        elif self.right_injective:
            shape = "1:n"
        else:
            shape = "n:m"
        coverage = "total" if self.total else "partial"
        return f"{shape}, {coverage}"


class TupleMapping:
    """A tuple mapping ``m ⊆ I × I'`` stored as id pairs with indexes.

    The mapping stores tuple *ids* (instances guarantee id disjointness) and
    maintains forward and backward image indexes so that the image sets
    ``m(t)`` / ``m(t')`` used by the tuple score (Def. 5.2) are O(1) lookups.

    Examples
    --------
    >>> m = TupleMapping()
    >>> m.add("t1", "t4")
    >>> m.add("t2", "t4")
    >>> sorted(m.preimage("t4"))
    ['t1', 't2']
    """

    __slots__ = ("_pairs", "_forward", "_backward")

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()) -> None:
        self._pairs: set[tuple[str, str]] = set()
        self._forward: dict[str, set[str]] = {}
        self._backward: dict[str, set[str]] = {}
        for left_id, right_id in pairs:
            self.add(left_id, right_id)

    def add(self, left_id: str, right_id: str) -> None:
        """Add the pair ``(left_id, right_id)`` (idempotent)."""
        pair = (left_id, right_id)
        if pair in self._pairs:
            return
        self._pairs.add(pair)
        self._forward.setdefault(left_id, set()).add(right_id)
        self._backward.setdefault(right_id, set()).add(left_id)

    def remove(self, left_id: str, right_id: str) -> None:
        """Remove a pair; raises :class:`MappingError` if absent."""
        pair = (left_id, right_id)
        if pair not in self._pairs:
            raise MappingError(f"pair {pair} not in tuple mapping")
        self._pairs.remove(pair)
        self._forward[left_id].discard(right_id)
        if not self._forward[left_id]:
            del self._forward[left_id]
        self._backward[right_id].discard(left_id)
        if not self._backward[right_id]:
            del self._backward[right_id]

    # -- images (Def. 5.2) -----------------------------------------------------

    def image(self, left_id: str) -> frozenset[str]:
        """``m(t)`` for a left tuple: the right ids it is matched to."""
        return frozenset(self._forward.get(left_id, ()))

    def preimage(self, right_id: str) -> frozenset[str]:
        """``m(t')`` for a right tuple: the left ids matched to it."""
        return frozenset(self._backward.get(right_id, ()))

    def matched_left_ids(self) -> set[str]:
        """Left ids participating in at least one pair."""
        return set(self._forward)

    def matched_right_ids(self) -> set[str]:
        """Right ids participating in at least one pair."""
        return set(self._backward)

    # -- container protocol ------------------------------------------------------

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._pairs

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleMapping):
            return NotImplemented
        return self._pairs == other._pairs

    def __reduce__(self):
        # Canonical pickled form: pairs in sorted order.  The internal set has
        # an arbitrary, insertion-dependent iteration order, so two
        # content-equal mappings would otherwise serialize to different bytes
        # — breaking the cache-identity guarantees of the parallel engine.
        return (TupleMapping, (sorted(self._pairs),))

    def __repr__(self) -> str:
        sample = sorted(self._pairs)[:4]
        suffix = ", ..." if len(self._pairs) > 4 else ""
        return f"TupleMapping({sample}{suffix} |m|={len(self._pairs)})"

    def copy(self) -> "TupleMapping":
        """Return an independent copy."""
        return TupleMapping(self._pairs)

    def inverted(self) -> "TupleMapping":
        """``m^{-1}``: the mapping with every pair flipped (Lemma 5.4 (4))."""
        return TupleMapping((r, l) for (l, r) in self._pairs)

    # -- taxonomy ------------------------------------------------------------

    def is_left_injective(self) -> bool:
        """No left tuple maps to two right tuples (functional on ``I``)."""
        return all(len(images) <= 1 for images in self._forward.values())

    def is_right_injective(self) -> bool:
        """No right tuple is hit by two left tuples."""
        return all(len(preimages) <= 1 for preimages in self._backward.values())

    def is_fully_injective(self) -> bool:
        """Both left and right injective (1:1)."""
        return self.is_left_injective() and self.is_right_injective()

    def is_left_total(self, left: Instance) -> bool:
        """Every tuple of the left instance participates."""
        return left.ids() <= self.matched_left_ids()

    def is_right_total(self, right: Instance) -> bool:
        """Every tuple of the right instance participates."""
        return right.ids() <= self.matched_right_ids()

    def classify(self, left: Instance, right: Instance) -> MappingClassification:
        """Classify this mapping with respect to the given instances."""
        return MappingClassification(
            left_injective=self.is_left_injective(),
            right_injective=self.is_right_injective(),
            left_total=self.is_left_total(left),
            right_total=self.is_right_total(right),
        )

    def validate_against(self, left: Instance, right: Instance) -> None:
        """Check that every pair references existing tuples.

        Raises :class:`MappingError` on a dangling tuple id.
        """
        left_ids, right_ids = left.ids(), right.ids()
        for left_id, right_id in self._pairs:
            if left_id not in left_ids:
                raise MappingError(
                    f"tuple mapping references unknown left id {left_id!r}"
                )
            if right_id not in right_ids:
                raise MappingError(
                    f"tuple mapping references unknown right id {right_id!r}"
                )
