"""Instances with labeled nulls.

An instance (paper Sec. 2) assigns to each relation symbol a finite set of
tuples over ``Consts ∪ Vars``.  This module provides:

* :class:`RelationInstance` — the tuples of a single relation;
* :class:`Instance` — a full multi-relation instance with the derived notions
  the paper uses throughout: ``Consts(I)``, ``Vars(I)``, ``adom(I)``,
  ``ids(I)``, ``size(I)``, groundness, null renaming, and schema padding.
"""

from __future__ import annotations

import itertools
import sys
from collections import Counter
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .errors import InstanceError, SchemaError
from .schema import RelationSchema, Schema
from .tuples import Tuple
from .values import LabeledNull, NullFactory, Value, is_constant, is_null


class RelationInstance:
    """The tuples of one relation inside an instance.

    Tuples are stored in insertion order; lookup by tuple id is O(1).
    """

    def __init__(self, schema: RelationSchema, tuples: Iterable[Tuple] = ()) -> None:
        self.schema = schema
        self._tuples: dict[str, Tuple] = {}
        for t in tuples:
            self.add(t)

    def add(self, t: Tuple) -> None:
        """Add a tuple, enforcing schema agreement and id uniqueness."""
        if t.relation.name != self.schema.name:
            raise SchemaError(
                f"tuple {t.tuple_id!r} belongs to relation {t.relation.name!r}, "
                f"not {self.schema.name!r}"
            )
        if t.relation.attributes != self.schema.attributes:
            raise SchemaError(
                f"tuple {t.tuple_id!r} disagrees with relation schema "
                f"{self.schema.name!r} on attributes"
            )
        if t.tuple_id in self._tuples:
            raise InstanceError(
                f"duplicate tuple id {t.tuple_id!r} in relation {self.schema.name!r}"
            )
        self._tuples[t.tuple_id] = t

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tuple_id: str) -> bool:
        return tuple_id in self._tuples

    def get(self, tuple_id: str) -> Tuple:
        """Return the tuple with the given id (raises if absent)."""
        try:
            return self._tuples[tuple_id]
        except KeyError:
            raise InstanceError(
                f"relation {self.schema.name!r} has no tuple {tuple_id!r}"
            ) from None

    def ids(self) -> set[str]:
        """The tuple ids of this relation."""
        return set(self._tuples)

    def content_multiset(self) -> Counter:
        """Multiset of identity-free tuple contents (for ground comparison)."""
        return Counter(t.content() for t in self)


class Instance:
    """A multi-relation instance with labeled nulls.

    Parameters
    ----------
    schema:
        The relational schema of this instance.
    name:
        Optional human-readable name used in reports and explanations.

    Examples
    --------
    >>> from repro.core.values import LabeledNull
    >>> inst = Instance.from_rows(
    ...     "Conf", ("Name", "Year"),
    ...     [("VLDB", 1975), ("SIGMOD", LabeledNull("N1"))],
    ... )
    >>> len(inst)
    2
    >>> sorted(n.label for n in inst.vars())
    ['N1']
    """

    def __init__(self, schema: Schema, name: str = "I") -> None:
        self.schema = schema
        self.name = name
        self._relations: dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel) for rel in schema
        }
        self._ids: dict[str, str] = {}  # tuple id -> relation name
        self._columnar = None  # cached ColumnarInstance view (never pickled)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        relation_name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[Value]],
        name: str = "I",
        id_prefix: str = "t",
        id_start: int = 1,
    ) -> "Instance":
        """Build a single-relation instance from plain rows.

        Tuple ids are generated as ``{id_prefix}{counter}``.  This is the main
        entry point for examples and tests.
        """
        schema = Schema.single(relation_name, attributes)
        instance = cls(schema, name=name)
        relation = schema.relation(relation_name)
        for offset, row in enumerate(rows):
            instance.add(Tuple(f"{id_prefix}{id_start + offset}", relation, row))
        return instance

    @classmethod
    def from_dicts(
        cls,
        relation_name: str,
        records: Sequence[Mapping[str, Value]],
        attributes: Sequence[str] | None = None,
        name: str = "I",
        id_prefix: str = "t",
    ) -> "Instance":
        """Build a single-relation instance from dict records.

        ``attributes`` fixes the column order; when omitted it is taken
        from the first record's keys.  Missing keys raise — use explicit
        :class:`~repro.core.values.LabeledNull` values for unknowns (the
        library never silently invents nulls).
        """
        records = list(records)
        if attributes is None:
            if not records:
                raise SchemaError(
                    "attributes are required for an empty record list"
                )
            attributes = tuple(records[0].keys())
        rows = []
        for record in records:
            missing = [a for a in attributes if a not in record]
            if missing:
                raise SchemaError(
                    f"record is missing attributes {missing}; use "
                    "LabeledNull values for unknowns"
                )
            rows.append(tuple(record[a] for a in attributes))
        return cls.from_rows(
            relation_name, attributes, rows, name=name, id_prefix=id_prefix
        )

    @classmethod
    def from_columns(
        cls,
        schema,
        columns,
        *,
        nulls=None,
        name: str = "I",
        id_prefix: str = "t",
        id_start: int = 1,
        null_prefix: str = "N",
    ) -> "Instance":
        """Build an instance from column-shaped data (the bulk-ingest path).

        ``schema`` is a relation name (attributes taken from the mapping
        order of ``columns``), a :class:`RelationSchema`, or a full
        :class:`Schema`; ``columns`` holds one value sequence per attribute
        (nested per relation for a full schema).  ``nulls`` optionally marks
        cells to replace with fresh :class:`LabeledNull` values — per
        attribute either one boolean per row or an iterable of row indices.

        Tuple ids, values, and iteration order are byte-identical to the
        equivalent :meth:`from_rows` build; the columnar view
        (:meth:`columns`) is built in the same pass and cached.

        Examples
        --------
        >>> inst = Instance.from_columns(
        ...     "Conf", {"Name": ["VLDB", "SIGMOD"], "Year": [1975, 1974]},
        ...     nulls={"Year": [False, True]},
        ... )
        >>> sorted(n.label for n in inst.vars())
        ['N1']
        """
        from .columnar import build_from_columns

        return build_from_columns(
            cls,
            schema,
            columns,
            nulls=nulls,
            name=name,
            id_prefix=id_prefix,
            id_start=id_start,
            null_prefix=null_prefix,
        )

    @classmethod
    def empty_like(cls, other: "Instance", name: str | None = None) -> "Instance":
        """An empty instance over the same schema as ``other``."""
        return cls(other.schema, name=name if name is not None else other.name)

    def add(self, t: Tuple) -> None:
        """Add a tuple to the relation it belongs to."""
        if t.tuple_id in self._ids:
            raise InstanceError(f"duplicate tuple id {t.tuple_id!r} in instance {self.name!r}")
        if t.relation.name not in self._relations:
            raise SchemaError(
                f"instance {self.name!r} has no relation {t.relation.name!r}"
            )
        self._relations[t.relation.name].add(t)
        self._ids[t.tuple_id] = t.relation.name
        view = self._columnar
        if view is not None and not view.try_append(t):
            # The append needs a fresh code / null label / override, which
            # only a cold first-occurrence rescan can assign consistently.
            self._columnar = None

    def add_row(
        self, relation_name: str, tuple_id: str, values: Sequence[Value]
    ) -> Tuple:
        """Create and add a tuple from raw values; returns the new tuple."""
        t = Tuple(tuple_id, self.schema.relation(relation_name), values)
        self.add(t)
        return t

    # -- columnar view --------------------------------------------------------

    def columns(self):
        """The cached columnar view of this instance.

        Built on first access (one pass over all cells); see
        :mod:`repro.core.columnar` for the representation.  :meth:`add`
        patches the cached view in place when the appended tuple's values
        are already covered by the decode tables
        (:meth:`ColumnarInstance.try_append
        <repro.core.columnar.ColumnarInstance.try_append>`) and discards
        it otherwise.  Mutating relations directly (bypassing
        :meth:`add`) does not invalidate the cache.
        """
        view = self._columnar
        if view is None:
            from .columnar import ColumnarInstance

            view = ColumnarInstance.from_instance(self)
            self._columnar = view
        return view

    def to_columns(self) -> dict[str, dict[str, list[Value]]]:
        """Column-shaped export: ``{relation: {attribute: [values...]}}``.

        ``Instance.from_columns(self.schema, self.to_columns())`` round-trips
        the cell values (tuple ids are regenerated in scan order).
        """
        return {
            relation.schema.name: {
                attribute: [t.values[position] for t in relation]
                for position, attribute in enumerate(
                    relation.schema.attributes
                )
            }
            for relation in self.relations()
        }

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The columnar view is a derived cache; dropping it keeps pickles
        # canonical (row-wise and from_columns builds serialize identically).
        state = self.__dict__.copy()
        state.pop("_columnar", None)
        return state

    def __setstate__(self, state: dict) -> None:
        # Intern the attribute names, as pickle's default BUILD path would:
        # without this, an instance that round-tripped through a worker
        # re-pickles with different string memoization than one that never
        # left the process, breaking byte-identical result comparisons.
        self.__dict__.update(
            (sys.intern(k) if type(k) is str else k, v)
            for k, v in state.items()
        )
        self._columnar = None

    # -- access ---------------------------------------------------------------

    def relation(self, name: str) -> RelationInstance:
        """Return the :class:`RelationInstance` for ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"instance {self.name!r} has no relation {name!r}"
            ) from None

    def relations(self) -> Iterator[RelationInstance]:
        """Iterate over the relation instances."""
        return iter(self._relations.values())

    def tuples(self) -> Iterator[Tuple]:
        """Iterate over all tuples of all relations."""
        for relation in self._relations.values():
            yield from relation

    def get_tuple(self, tuple_id: str) -> Tuple:
        """Return the tuple with the given id, searching all relations."""
        try:
            relation_name = self._ids[tuple_id]
        except KeyError:
            raise InstanceError(
                f"instance {self.name!r} has no tuple {tuple_id!r}"
            ) from None
        return self._relations[relation_name].get(tuple_id)

    def ids(self) -> set[str]:
        """``ids(I)``: the set of all tuple ids."""
        return set(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Tuple]:
        return self.tuples()

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}:{len(rel)}" for name, rel in self._relations.items()
        )
        return f"<Instance {self.name!r} [{counts}]>"

    # -- derived notions from the paper ---------------------------------------

    def consts(self) -> set[Value]:
        """``Consts(I)``: the set of constants appearing in the instance."""
        return {v for t in self.tuples() for v in t.values if is_constant(v)}

    def vars(self) -> set[LabeledNull]:
        """``Vars(I)``: the set of labeled nulls appearing in the instance."""
        return {v for t in self.tuples() for v in t.values if is_null(v)}

    def adom(self) -> set[Value]:
        """``adom(I) = Consts(I) ∪ Vars(I)``."""
        return {v for t in self.tuples() for v in t.values}

    def is_ground(self) -> bool:
        """Whether ``Vars(I) = ∅``."""
        return all(t.is_ground() for t in self.tuples())

    def size(self) -> int:
        """``size(I) = Σ_t arity(R)`` (Def. 5.1), summed over relations."""
        return sum(len(rel) * rel.schema.arity for rel in self._relations.values())

    def null_occurrence_count(self) -> int:
        """Number of null-valued cells (the ``#V`` column of Tables 2–3)."""
        return sum(1 for t in self.tuples() for v in t.values if is_null(v))

    def constant_occurrence_count(self) -> int:
        """Number of constant-valued cells (the ``#C`` column of Tables 2–3)."""
        return sum(1 for t in self.tuples() for v in t.values if is_constant(v))

    def distinct_value_count(self) -> int:
        """Number of distinct values in ``adom(I)`` (Table 1's ``#Distinct``)."""
        return len(self.adom())

    # -- transformation ---------------------------------------------------------

    def map_values(
        self, mapping: Mapping[Value, Value], name: str | None = None
    ) -> "Instance":
        """Return a copy with ``mapping`` applied to every cell.

        Values not in ``mapping`` are unchanged.  Used to apply value mappings
        ``h(I)`` and null renamings.
        """
        result = Instance(self.schema, name=name if name is not None else self.name)
        for t in self.tuples():
            result.add(t.substituted(mapping))
        return result

    def rename_nulls(
        self, renaming: Mapping[LabeledNull, LabeledNull], name: str | None = None
    ) -> "Instance":
        """Apply an *injective* null renaming (semantics-preserving).

        Raises :class:`InstanceError` if the renaming equates nulls that were
        distinct, which would change the represented incomplete database.
        """
        images = list(renaming.values())
        if len(set(images)) != len(images):
            raise InstanceError("null renaming must be injective")
        targets = set(images)
        untouched = {v for v in self.vars() if v not in renaming}
        if targets & untouched:
            raise InstanceError(
                "null renaming would capture an existing null: "
                f"{sorted((targets & untouched), key=lambda n: n.label)}"
            )
        return self.map_values(dict(renaming), name=name)

    def with_fresh_ids(
        self, prefix: str, name: str | None = None, start: int = 1
    ) -> "Instance":
        """Return a copy whose tuple ids are ``{prefix}1, {prefix}2, ...``.

        Comparison assumes ``ids(I) ∩ ids(I') = ∅``; this helper establishes
        that precondition.  Relative tuple order is preserved.
        """
        result = Instance(self.schema, name=name if name is not None else self.name)
        counter = itertools.count(start)
        for t in self.tuples():
            result.add(t.with_id(f"{prefix}{next(counter)}"))
        return result

    def shuffled(self, rng, name: str | None = None) -> "Instance":
        """Return a copy with tuple order shuffled per relation (versioning S op)."""
        result = Instance(self.schema, name=name if name is not None else self.name)
        for relation in self.relations():
            order = list(relation)
            rng.shuffle(order)
            for t in order:
                result.add(t)
        return result

    def filtered(
        self, predicate: Callable[[Tuple], bool], name: str | None = None
    ) -> "Instance":
        """Return a copy keeping only tuples satisfying ``predicate``."""
        result = Instance(self.schema, name=name if name is not None else self.name)
        for t in self.tuples():
            if predicate(t):
                result.add(t)
        return result

    def padded_to(
        self,
        target_schema: Schema,
        fresh: NullFactory | None = None,
        name: str | None = None,
    ) -> "Instance":
        """Pad this instance to ``target_schema`` with fresh-null columns.

        Implements the schema-alignment trick of Sec. 4.3: an attribute
        present in the target schema but missing here is added with a distinct
        labeled null per row, so tuples can be matched without constraints on
        that attribute.
        """
        fresh = fresh if fresh is not None else NullFactory(prefix="Pad")
        result = Instance(target_schema, name=name if name is not None else self.name)
        for relation in self.relations():
            target_rel = target_schema.relation(relation.schema.name)
            extra = [
                a for a in target_rel.attributes
                if not relation.schema.has_attribute(a)
            ]
            dropped = [
                a for a in relation.schema.attributes
                if not target_rel.has_attribute(a)
            ]
            if dropped:
                raise SchemaError(
                    f"padded_to cannot drop attributes {dropped} of relation "
                    f"{relation.schema.name!r}; project first"
                )
            for t in relation:
                values = []
                for attribute in target_rel.attributes:
                    if attribute in extra:
                        values.append(fresh())
                    else:
                        values.append(t[attribute])
                result.add(Tuple(t.tuple_id, target_rel, values))
        return result

    def projected(self, relation_name: str, attributes: Sequence[str],
                  name: str | None = None) -> "Instance":
        """Project a single-relation instance onto ``attributes``.

        Used by the versioning substrate's column-removal (C) operation.
        """
        old_rel = self.schema.relation(relation_name)
        new_rel = old_rel.project(attributes)
        result = Instance(Schema([new_rel]), name=name if name is not None else self.name)
        for t in self.relation(relation_name):
            result.add(Tuple(t.tuple_id, new_rel, [t[a] for a in new_rel.attributes]))
        return result

    def pretty(self, max_rows: int = 20) -> str:
        """Render the instance as aligned text tables (one per relation).

        Labeled nulls render as their labels; intended for examples,
        debugging, and documentation, not for serialization (use
        :mod:`repro.io_` for that).
        """
        blocks = []
        for relation in self.relations():
            headers = ("id",) + relation.schema.attributes
            rows = []
            for index, t in enumerate(relation):
                if index >= max_rows:
                    rows.append(("...",) * len(headers))
                    break
                rows.append(
                    (t.tuple_id,)
                    + tuple(
                        v.label if is_null(v) else str(v) for v in t.values
                    )
                )
            widths = [len(h) for h in headers]
            for row in rows:
                for position, cell in enumerate(row):
                    widths[position] = max(widths[position], len(cell))
            lines = [f"{relation.schema.name} ({len(relation)} tuples)"]
            lines.append(
                "  ".join(
                    h.ljust(widths[i]) for i, h in enumerate(headers)
                )
            )
            lines.append("  ".join("-" * w for w in widths))
            for row in rows:
                lines.append(
                    "  ".join(
                        cell.ljust(widths[i]) for i, cell in enumerate(row)
                    )
                )
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)

    # -- comparison-oriented helpers -------------------------------------------

    def content_multiset(self) -> Counter:
        """Multiset of identity-free tuple contents across all relations."""
        counter: Counter = Counter()
        for relation in self.relations():
            counter.update(relation.content_multiset())
        return counter

    def assert_comparable_with(self, other: "Instance") -> None:
        """Validate the preconditions of instance comparison (Sec. 4).

        Both instances must share a schema, and their tuple ids and labeled
        nulls must be disjoint.  Raises on violation; use
        :func:`prepare_for_comparison` to repair violations automatically.
        """
        if not self.schema.is_compatible_with(other.schema):
            raise SchemaError(
                f"instances {self.name!r} and {other.name!r} have incompatible schemas"
            )
        shared_ids = self.ids() & other.ids()
        if shared_ids:
            raise InstanceError(
                f"instances share tuple ids, e.g. {sorted(shared_ids)[:5]}"
            )
        shared_nulls = self.vars() & other.vars()
        if shared_nulls:
            raise InstanceError(
                "instances share labeled nulls, e.g. "
                f"{sorted(n.label for n in shared_nulls)[:5]}"
            )


def prepare_side(instance: Instance, side: str) -> Instance:
    """Canonical prepared form of one comparison side.

    Like :func:`prepare_for_comparison`, but each side is prepared
    *independently*: tuple ids become ``l1, l2, ...`` / ``r1, r2, ...`` and
    **every** labeled null is renamed to ``NL1, NL2, ...`` / ``NR1, NR2,
    ...`` in first-occurrence order.  Because the two sides draw from
    disjoint id and label spaces, any instance prepared as ``"left"`` is
    comparable with any instance prepared as ``"right"`` without looking at
    the other side — which is what lets the parallel engine cache one
    prepared copy (and its signature index) per instance and reuse it
    across every pair it participates in.

    Renaming nulls and re-identifying tuples are semantics-preserving
    (paper Sec. 4); the prepared instance is isomorphic to the input.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    id_prefix, null_prefix = ("l", "NL") if side == "left" else ("r", "NR")
    prepared = instance.with_fresh_ids(id_prefix)
    renaming: dict[LabeledNull, LabeledNull] = {}
    counter = itertools.count(1)
    for t in prepared.tuples():
        for value in t.values:
            if is_null(value) and value not in renaming:
                renaming[value] = LabeledNull(f"{null_prefix}{next(counter)}")
    if renaming:
        prepared = prepared.map_values(dict(renaming))
    return prepared


def prepare_for_comparison(left: Instance, right: Instance) -> tuple[Instance, Instance]:
    """Return copies of ``left``/``right`` satisfying comparison preconditions.

    Re-ids the tuples (``l*`` on the left, ``r*`` on the right) and renames the
    right instance's nulls away from the left's.  Neither change affects the
    semantics of the instances (paper Sec. 4's "not a limiting assumption").
    """
    if not left.schema.is_compatible_with(right.schema):
        raise SchemaError(
            f"instances {left.name!r} and {right.name!r} have incompatible schemas"
        )
    left_prepared = left.with_fresh_ids("l")
    right_prepared = right.with_fresh_ids("r")
    left_labels = {n.label for n in left_prepared.vars()}
    taken = left_labels | {n.label for n in right_prepared.vars()}
    renaming = {}
    counter = itertools.count()
    for null in sorted(right_prepared.vars(), key=lambda n: n.label):
        if null.label in left_labels:
            while True:
                candidate = f"Rn{next(counter)}"
                if candidate not in taken:
                    break
            renaming[null] = LabeledNull(candidate)
            taken.add(candidate)
    if renaming:
        right_prepared = right_prepared.rename_nulls(renaming)
    return left_prepared, right_prepared
