"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish schema problems from matching problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible.

    Raised, for example, when a tuple's arity does not match its relation's
    arity or when two instances being compared do not share a schema.
    """


class InstanceError(ReproError):
    """An instance violates a structural invariant.

    Raised, for example, when tuple identifiers collide inside an instance or
    across two instances being compared.
    """


class MappingError(ReproError):
    """A value mapping, tuple mapping, or instance match is ill-formed.

    Raised, for example, when a value mapping maps a constant to a different
    value, or when an instance match declared *complete* maps tuples whose
    images under the value mappings disagree.
    """


class UnificationConflict(MappingError):
    """Two distinct constants were forced into the same unification class.

    This signals that a candidate tuple mapping admits no pair of value
    mappings ``(h_l, h_r)`` making it a complete instance match.
    """


class FormatError(ReproError, ValueError):
    """External input (CSV, JSON) is malformed or ambiguous.

    Raised with the offending row/field named, so a truncated file or a
    corrupt cell is a diagnosable data problem rather than a raw
    ``KeyError``/``IndexError`` escaping from a parser internals.  Also a
    ``ValueError``, so pre-existing ``except ValueError`` handlers around
    the readers keep working.
    """


class StoreCorruptionError(FormatError):
    """An on-disk index store is corrupt, truncated, or inconsistent.

    Raised with the offending file path named, so a half-written manifest,
    a truncated table file, or a fingerprint disagreement surfaces as a
    diagnosable storage problem instead of a raw ``json.JSONDecodeError``
    escaping from the store internals.  Subclasses :class:`FormatError`,
    so existing handlers around index loading keep working.

    Beyond the path, corruption diagnostics carry the evidence needed to
    act on a report without re-running the check: the byte ``offset`` of
    the bad record inside the file (WAL records, headers) and the
    ``expected`` vs ``actual`` fingerprint/checksum values that disagreed.
    Any of them may be ``None`` when the failure has no meaningful value
    for it (e.g. a file that is missing outright).
    """

    def __init__(
        self,
        message: str,
        path=None,
        offset: int | None = None,
        expected=None,
        actual=None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset
        self.expected = expected
        self.actual = actual


class ScoringError(ReproError):
    """A similarity score could not be computed.

    Raised, for example, for an out-of-range ``lam`` penalty parameter.
    """


class ChaseError(ReproError):
    """The data-exchange chase failed (e.g. malformed tgd)."""


class RepairError(ReproError):
    """A data-repair operation failed (e.g. unknown repair system name)."""


class DeltaError(ReproError):
    """A delta batch is malformed or does not apply to its base instance.

    Raised when an operation's precondition fails (inserting an existing
    tuple id, deleting a missing one, recorded old values disagreeing with
    the instance) or when two batches cannot be composed.
    """
