"""Columnar view of instances: per-relation code arrays over a coded adom.

The object model (:mod:`repro.core.instance`) stores one Python object per
cell, which is the right shape for the algorithms' correctness story but the
wrong shape for bulk passes: signature building, compatibility indexing, and
sketching all touch every cell once, and at TPC-H scale the per-object
overhead dominates.  This module provides the columnar twin:

* every distinct **constant** of the instance gets a non-negative integer
  code (first occurrence order, scanning relations in schema order, tuples
  in insertion order, attributes left-to-right);
* every distinct **labeled null** gets a negative code: the ``k``-th null
  (same scan order) is ``-(k + 1)``.  ``code < 0`` therefore *is* the null
  mask, and null identity (label equality) is preserved by the code;
* each relation stores one ``array('q')`` (signed 64-bit) column per
  attribute, plus the tuple ids.

Constants are coded by ``==`` equality — exactly the equality the signature
and compatibility machinery uses — so two cells share a code iff the object
algorithms would treat them as the same value.  Cells whose value is ``==``
to the code's representative but not reconstructible from it (e.g. ``1``
vs ``1.0``, ``-0.0`` vs ``0.0``) are recorded in a sparse per-relation
``overrides`` map so :meth:`ColumnarInstance.to_instance` is always exact;
type-sensitive consumers (sketch tokens, fingerprints) fall back to the
object path when overrides exist.

The view is built once per instance and cached on it
(:meth:`repro.core.instance.Instance.columns`); ``to_instance`` goes the
other way.  An optional numpy fast lane (mirroring the CRC32C pattern in
:mod:`repro.index.wal`) exposes each relation as a zero-copy-per-column
``int64`` matrix for vectorized passes; everything degrades to the stdlib
``array`` / ``memoryview`` baseline when numpy is absent.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from .errors import InstanceError, SchemaError
from .schema import RelationSchema, Schema
from .tuples import Tuple
from .values import LabeledNull, Value, is_null

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instance import Instance

try:  # pragma: no cover - exercised indirectly via both lanes
    import numpy as _np
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None

#: Types for which ``==`` within the same type implies an identical repr,
#: so a code representative reconstructs the cell exactly without a check.
_REPR_SAFE_TYPES = (str, int, bool, bytes, type(None))


def numpy_or_none():
    """The numpy module when available, else ``None`` (stdlib baseline)."""
    return _np


def null_code(index: int) -> int:
    """Code of the ``index``-th labeled null (0-based): ``-(index + 1)``."""
    return -(index + 1)


def null_index(code: int) -> int:
    """Inverse of :func:`null_code` (requires ``code < 0``)."""
    return -code - 1


class _Coder:
    """Assigns integer codes to values in first-occurrence scan order."""

    __slots__ = (
        "decode",
        "value_codes",
        "null_values",
        "null_codes",
        "has_none",
        "has_nan",
    )

    _MISSING = object()

    def __init__(self) -> None:
        self.decode: list[Value] = []
        self.value_codes: dict[Value, int] = {}
        self.null_values: list[LabeledNull] = []
        self.null_codes: dict[str, int] = {}

        self.has_none = False
        self.has_nan = False

    def code(self, value: Value, overrides: dict, cell: tuple[int, int]) -> int:
        """Code ``value``; record an override when the code is lossy."""
        if is_null(value):
            code = self.null_codes.get(value.label)
            if code is None:
                code = null_code(len(self.null_values))
                self.null_codes[value.label] = code
                self.null_values.append(value)
            return code
        code = self.value_codes.get(value, self._MISSING)
        if code is self._MISSING:
            code = len(self.decode)
            self.value_codes[value] = code
            self.decode.append(value)
            if value is None:
                self.has_none = True
            elif value != value:  # NaN-like: != is not a partial order
                self.has_nan = True
            return code
        representative = self.decode[code]
        if representative is not value:
            kind = type(value)
            if type(representative) is not kind:
                overrides[cell] = value
            elif kind not in _REPR_SAFE_TYPES and repr(
                representative
            ) != repr(value):
                overrides[cell] = value
        return code


class ColumnarRelation:
    """One relation as code columns: ``columns[pos][row]`` is a cell code."""

    __slots__ = ("schema", "tuple_ids", "columns", "_matrix")

    def __init__(
        self,
        schema: RelationSchema,
        tuple_ids: tuple[str, ...],
        columns: tuple[array, ...],
    ) -> None:
        self.schema = schema
        self.tuple_ids = tuple_ids
        self.columns = columns
        self._matrix = None

    @property
    def n_rows(self) -> int:
        return len(self.tuple_ids)

    def row_codes(self, row: int) -> tuple[int, ...]:
        """The code vector of one row, in attribute order."""
        return tuple(column[row] for column in self.columns)

    def column_view(self, position: int) -> memoryview:
        """Zero-copy memoryview of one column (the stdlib baseline lane)."""
        return memoryview(self.columns[position])

    def matrix(self):
        """``int64`` matrix of shape ``(n_rows, arity)``, or ``None``.

        Built lazily from zero-copy per-column views and cached; ``None``
        when numpy is unavailable.
        """
        if _np is None:
            return None
        if self._matrix is None:
            if not self.columns or not self.tuple_ids:
                self._matrix = _np.empty(
                    (self.n_rows, self.schema.arity), dtype=_np.int64
                )
            else:
                self._matrix = _np.column_stack(
                    [
                        _np.frombuffer(column, dtype=_np.int64)
                        for column in self.columns
                    ]
                )
        return self._matrix


class ColumnarInstance:
    """The columnar twin of one :class:`~repro.core.instance.Instance`."""

    __slots__ = (
        "name",
        "schema",
        "relations",
        "decode",
        "value_codes",
        "null_values",
        "null_codes",
        "overrides",
        "has_none",
        "has_nan",
    )

    def __init__(
        self,
        name: str,
        schema: Schema,
        relations: dict[str, ColumnarRelation],
        coder: _Coder,
        overrides: dict[str, dict[tuple[int, int], Value]],
    ) -> None:
        self.name = name
        self.schema = schema
        self.relations = relations
        self.decode = coder.decode
        self.value_codes = coder.value_codes
        self.null_values = coder.null_values
        self.null_codes = coder.null_codes
        self.overrides = overrides
        self.has_none = coder.has_none
        self.has_nan = coder.has_nan

    # -- construction -------------------------------------------------------

    @classmethod
    def from_instance(cls, instance: "Instance") -> "ColumnarInstance":
        """Code every cell of ``instance`` (deterministic scan order)."""
        coder = _Coder()
        relations: dict[str, ColumnarRelation] = {}
        all_overrides: dict[str, dict[tuple[int, int], Value]] = {}
        for relation in instance.relations():
            schema = relation.schema
            arity = schema.arity
            columns = tuple(array("q") for _ in range(arity))
            ids: list[str] = []
            overrides: dict[tuple[int, int], Value] = {}
            code = coder.code
            row = 0
            for t in relation:
                ids.append(t.tuple_id)
                values = t.values
                for position in range(arity):
                    columns[position].append(
                        code(values[position], overrides, (row, position))
                    )
                row += 1
            relations[schema.name] = ColumnarRelation(
                schema, tuple(ids), columns
            )
            if overrides:
                all_overrides[schema.name] = overrides
        return cls(
            instance.name, instance.schema, relations, coder, all_overrides
        )

    # -- properties ---------------------------------------------------------

    @property
    def exact(self) -> bool:
        """Whether every cell is exactly reconstructible from its code alone."""
        return not self.overrides

    @property
    def constant_count(self) -> int:
        """Number of distinct constant codes."""
        return len(self.decode)

    @property
    def null_count(self) -> int:
        """Number of distinct labeled nulls."""
        return len(self.null_values)

    @property
    def n_cells(self) -> int:
        total = 0
        for relation in self.relations.values():
            total += relation.n_rows * relation.schema.arity
        return total

    def value_of(self, code: int) -> Value:
        """Decode a cell code (representative constant or labeled null)."""
        if code < 0:
            return self.null_values[null_index(code)]
        return self.decode[code]

    # -- in-place maintenance ------------------------------------------------

    def try_append(self, t: Tuple) -> bool:
        """Patch the view in place for a single-tuple append, when lossless.

        Returns ``True`` when every value of ``t`` is already covered by
        the decode tables with *exact* reconstruction — then the patched
        view is structurally identical to a cold rebuild of the grown
        instance (regression-tested).  Returns ``False`` (leaving the
        view untouched) when any value would need a fresh code, a fresh
        null label, or an override entry: fresh codes are assigned in
        first-occurrence scan order, which an append in the middle of a
        multi-relation scan cannot reproduce.
        """
        crel = self.relations.get(t.relation.name)
        if crel is None or crel.schema.attributes != t.relation.attributes:
            return False
        codes: list[int] = []
        for value in t.values:
            if is_null(value):
                code = self.null_codes.get(value.label)
                if code is None:
                    return False
            else:
                try:
                    code = self.value_codes.get(value)
                except TypeError:  # unhashable: the coder would fail too
                    return False
                if code is None:
                    return False
                representative = self.decode[code]
                if representative is not value:
                    kind = type(value)
                    if type(representative) is not kind:
                        return False  # would need an override entry
                    if kind not in _REPR_SAFE_TYPES and repr(
                        representative
                    ) != repr(value):
                        return False
            codes.append(code)
        for position, code in enumerate(codes):
            crel.columns[position].append(code)
        crel.tuple_ids = crel.tuple_ids + (t.tuple_id,)
        crel._matrix = None
        return True

    # -- back to the object model ------------------------------------------

    def to_instance(self, name: str | None = None) -> "Instance":
        """Materialize the object model (same tuple ids, exact cell values)."""
        from .instance import Instance

        instance = Instance(self.schema, name=self.name if name is None else name)
        decode = self.decode
        null_values = self.null_values
        for rel_name, crel in self.relations.items():
            schema = crel.schema
            overrides = self.overrides.get(rel_name, {})
            columns = crel.columns
            arity = schema.arity
            for row, tuple_id in enumerate(crel.tuple_ids):
                values = tuple(
                    null_values[-code - 1] if (code := columns[p][row]) < 0
                    else decode[code]
                    for p in range(arity)
                )
                if overrides:
                    patched = [
                        overrides.get((row, p), values[p]) for p in range(arity)
                    ]
                    values = tuple(patched)
                instance.add(Tuple(tuple_id, schema, values))
        return instance


# -- column-shaped input normalization (Instance.from_columns) --------------


def _normalize_relation_columns(
    schema: RelationSchema, columns
) -> tuple[list[Sequence[Value]], int]:
    """Per-attribute sequences in schema order, plus the row count."""
    if isinstance(columns, Mapping):
        missing = [a for a in schema.attributes if a not in columns]
        if missing:
            raise SchemaError(
                f"from_columns: relation {schema.name!r} is missing "
                f"columns {missing!r}"
            )
        extra = [a for a in columns if a not in schema.attributes]
        if extra:
            raise SchemaError(
                f"from_columns: relation {schema.name!r} got unknown "
                f"columns {extra!r}"
            )
        ordered = [columns[a] for a in schema.attributes]
    else:
        ordered = list(columns)
        if len(ordered) != schema.arity:
            raise SchemaError(
                f"from_columns: relation {schema.name!r} expects "
                f"{schema.arity} columns, got {len(ordered)}"
            )
    lengths = {len(column) for column in ordered}
    if len(lengths) > 1:
        raise InstanceError(
            f"from_columns: relation {schema.name!r} has ragged columns "
            f"(lengths {sorted(lengths)!r})"
        )
    return ordered, (lengths.pop() if lengths else 0)


def _normalize_null_mask(mask, n_rows: int, where: str) -> set[int]:
    """A null mask (bools per row, or row indices) as a set of row indices."""
    if mask is None:
        return set()
    rows: set[int] = set()
    entries = list(mask)
    if entries and all(isinstance(e, bool) for e in entries):
        if len(entries) != n_rows:
            raise InstanceError(
                f"from_columns: boolean null mask for {where} has length "
                f"{len(entries)}, expected {n_rows}"
            )
        rows = {i for i, flagged in enumerate(entries) if flagged}
        return rows
    for entry in entries:
        if not isinstance(entry, int) or isinstance(entry, bool):
            raise InstanceError(
                f"from_columns: null mask for {where} must hold booleans "
                f"or row indices, got {entry!r}"
            )
        if not 0 <= entry < n_rows:
            raise InstanceError(
                f"from_columns: null mask row {entry} for {where} is out "
                f"of range (0..{n_rows - 1})"
            )
        rows.add(entry)
    return rows


def build_from_columns(
    instance_cls,
    schema,
    columns,
    *,
    nulls=None,
    name: str = "I",
    id_prefix: str = "t",
    id_start: int = 1,
    null_prefix: str = "N",
):
    """Backend of :meth:`Instance.from_columns` (kept here with the view).

    ``schema`` may be a relation name (attributes inferred from the
    ``columns`` mapping order), a :class:`RelationSchema`, or a full
    :class:`Schema` (then ``columns`` maps relation name → per-relation
    columns).  ``nulls`` marks cells to replace with fresh labeled nulls
    (``{null_prefix}1``, ``{null_prefix}2``, … in scan order): per
    attribute either a boolean per row or an iterable of row indices,
    nested the same way as ``columns``.
    """
    if isinstance(schema, str):
        if not isinstance(columns, Mapping):
            raise SchemaError(
                "from_columns: passing a relation name requires a "
                "columns mapping (attribute -> values)"
            )
        schema = RelationSchema(schema, tuple(columns))
    if isinstance(schema, RelationSchema):
        full_schema = Schema([schema])
        per_relation = {schema.name: columns}
        null_spec = {schema.name: nulls} if nulls is not None else {}
    else:
        full_schema = schema
        if not isinstance(columns, Mapping):
            raise SchemaError(
                "from_columns: a multi-relation schema requires a columns "
                "mapping (relation name -> columns)"
            )
        per_relation = dict(columns)
        unknown = [r for r in per_relation if r not in full_schema]
        if unknown:
            raise SchemaError(
                f"from_columns: unknown relations {unknown!r}"
            )
        null_spec = dict(nulls) if nulls is not None else {}

    instance = instance_cls(full_schema, name=name)
    counter = id_start
    fresh = 0
    for relation_schema in full_schema:
        rel_name = relation_schema.name
        if rel_name not in per_relation:
            continue
        ordered, n_rows = _normalize_relation_columns(
            relation_schema, per_relation[rel_name]
        )
        rel_nulls = null_spec.get(rel_name)
        masks: list[set[int]] = []
        for position, attribute in enumerate(relation_schema.attributes):
            mask = None
            if rel_nulls is not None:
                if isinstance(rel_nulls, Mapping):
                    mask = rel_nulls.get(attribute)
                else:
                    mask = list(rel_nulls)[position]
            masks.append(
                _normalize_null_mask(
                    mask, n_rows, f"{rel_name}.{attribute}"
                )
            )
        any_nulls = any(masks)
        for row in range(n_rows):
            if any_nulls:
                values = []
                for position, column in enumerate(ordered):
                    if row in masks[position]:
                        fresh += 1
                        values.append(LabeledNull(f"{null_prefix}{fresh}"))
                    else:
                        values.append(column[row])
                values = tuple(values)
            else:
                values = tuple(column[row] for column in ordered)
            instance.add(
                Tuple(f"{id_prefix}{counter}", relation_schema, values)
            )
            counter += 1
    # The columnar twin is the point of bulk ingest: build and cache it now
    # so downstream passes (signatures, sketches, fingerprints) reuse it.
    instance.columns()
    return instance


__all__ = [
    "ColumnarInstance",
    "ColumnarRelation",
    "build_from_columns",
    "null_code",
    "null_index",
    "numpy_or_none",
]
