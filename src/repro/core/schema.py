"""Relational schemas.

A relational schema ``R`` (paper Sec. 2) is a finite set of relation symbols
``{R_1, ..., R_k}``, each with a fixed arity.  We additionally carry attribute
*names* because the signature algorithm (Sec. 6.2) encodes signatures
positionally by attribute name in lexicographic order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: a name plus an ordered attribute list.

    Parameters
    ----------
    name:
        Relation symbol, e.g. ``"Conference"``.
    attributes:
        Ordered attribute names, e.g. ``("Name", "Year", "Place", "Org")``.
        Attribute names must be unique within the relation.

    Examples
    --------
    >>> conf = RelationSchema("Conference", ("Name", "Year", "Place", "Org"))
    >>> conf.arity
    4
    >>> conf.position("Year")
    1
    """

    name: str
    attributes: tuple[str, ...]
    _positions: Mapping[str, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(self.attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attributes in relation {self.name!r}: {attrs}")
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(
            self, "_positions", {attr: idx for idx, attr in enumerate(attrs)}
        )

    @property
    def arity(self) -> int:
        """Number of attributes of this relation."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the 0-based position of ``attribute``.

        Raises :class:`SchemaError` if the attribute does not exist.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """Return whether ``attribute`` belongs to this relation."""
        return attribute in self._positions

    def lexicographic_attributes(self) -> tuple[str, ...]:
        """Attributes sorted lexicographically (signature ordering, Def. 6.2)."""
        return tuple(sorted(self.attributes))

    def project(self, attributes: Iterable[str]) -> "RelationSchema":
        """Return a new schema keeping only ``attributes`` (in original order)."""
        keep = set(attributes)
        missing = keep - set(self.attributes)
        if missing:
            raise SchemaError(
                f"cannot project {self.name!r} on unknown attributes {sorted(missing)}"
            )
        return RelationSchema(
            self.name, tuple(a for a in self.attributes if a in keep)
        )

    def extend(self, new_attributes: Iterable[str]) -> "RelationSchema":
        """Return a schema with ``new_attributes`` appended.

        Used for schema alignment (paper Sec. 4.3): when comparing instances
        with different schemas the narrower one is padded with null columns.
        """
        return RelationSchema(self.name, self.attributes + tuple(new_attributes))


class Schema:
    """A multi-relation schema: an ordered collection of :class:`RelationSchema`.

    Examples
    --------
    >>> schema = Schema([
    ...     RelationSchema("Conference", ("Name", "Year")),
    ...     RelationSchema("Paper", ("Title", "ConfName")),
    ... ])
    >>> sorted(schema.relation_names())
    ['Conference', 'Paper']
    """

    def __init__(self, relations: Iterable[RelationSchema]) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation name {relation.name!r}")
            self._relations[relation.name] = relation

    @classmethod
    def single(cls, name: str, attributes: Iterable[str]) -> "Schema":
        """Convenience constructor for a one-relation schema."""
        return cls([RelationSchema(name, tuple(attributes))])

    def relation(self, name: str) -> RelationSchema:
        """Return the relation schema called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"schema has no relation {name!r}; relations are "
                f"{sorted(self._relations)}"
            ) from None

    def relation_names(self) -> tuple[str, ...]:
        """Relation names in insertion order."""
        return tuple(self._relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:  # pragma: no cover - schemas rarely hashed
        return hash(tuple(sorted(self._relations.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r.name}({', '.join(r.attributes)})" for r in self._relations.values()
        )
        return f"Schema[{parts}]"

    def total_arity(self) -> int:
        """Sum of the arities of all relations."""
        return sum(relation.arity for relation in self)

    def is_compatible_with(self, other: "Schema") -> bool:
        """Whether two schemas describe the same relations and attributes.

        Instance comparison (Def. 3.2) assumes both instances share a schema;
        this predicate is the check :func:`repro.compare` performs up front.
        """
        if set(self.relation_names()) != set(other.relation_names()):
            return False
        return all(
            self.relation(name).attributes == other.relation(name).attributes
            for name in self.relation_names()
        )
