"""Value domain for instances with labeled nulls.

The paper (Sec. 2) assumes two countably infinite, disjoint domains:

* ``Consts`` — ordinary constants.  We represent constants with plain Python
  values (strings, ints, floats, ...), i.e. anything hashable that is not a
  :class:`LabeledNull`.
* ``Vars`` — labeled nulls ``N0, N1, ...``.  We represent these with the
  dedicated :class:`LabeledNull` type.

Two labeled nulls are equal iff they carry the same label; the *identity* of a
label has no semantics beyond equality within one instance (renaming nulls
yields an isomorphic instance).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Hashable, Iterable, Iterator

Value = Hashable
"""Type alias for a cell value: a constant or a :class:`LabeledNull`."""


class LabeledNull:
    """A labeled null (a member of ``Vars``).

    Parameters
    ----------
    label:
        The null's label, e.g. ``"N1"``.  Labels are compared with ``==``;
        nulls with equal labels denote the same unknown value *within one
        instance*.

    Examples
    --------
    >>> LabeledNull("N1") == LabeledNull("N1")
    True
    >>> LabeledNull("N1") == LabeledNull("N2")
    False
    >>> LabeledNull("N1") == "N1"
    False
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: str) -> None:
        if not isinstance(label, str) or not label:
            raise ValueError(f"null label must be a non-empty string, got {label!r}")
        self.label = label
        self._hash = hash(("repro.LabeledNull", label))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabeledNull):
            return self.label == other.label
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, LabeledNull):
            return self.label != other.label
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle by label only: the cached ``_hash`` is derived from the
        # process-local string hash (PYTHONHASHSEED) and must be recomputed
        # on unpickle, or nulls shipped across worker processes would break
        # dictionary lookups in the receiving process.
        return (LabeledNull, (self.label,))

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def renamed(self, new_label: str) -> "LabeledNull":
        """Return a null with ``new_label`` (used by renaming utilities)."""
        return LabeledNull(new_label)


def is_null(value: Any) -> bool:
    """Return ``True`` iff ``value`` is a labeled null (member of ``Vars``)."""
    return isinstance(value, LabeledNull)


def is_constant(value: Any) -> bool:
    """Return ``True`` iff ``value`` is a constant (member of ``Consts``)."""
    return not isinstance(value, LabeledNull)


class NullFactory:
    """Factory producing fresh labeled nulls with a common prefix.

    The factory guarantees that labels it hands out never repeat, which is how
    the library maintains the paper's assumption ``Vars(I) ∩ Vars(I') = ∅``
    when it invents nulls (chase, perturbation, schema padding).

    The factory is thread-safe; the chase and the perturbation framework may
    share one.

    Examples
    --------
    >>> fresh = NullFactory(prefix="N")
    >>> fresh(), fresh()
    (Null(N0), Null(N1))
    """

    def __init__(self, prefix: str = "N", start: int = 0) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def __call__(self) -> LabeledNull:
        """Return a labeled null with a never-before-issued label."""
        with self._lock:
            index = next(self._counter)
        return LabeledNull(f"{self.prefix}{index}")

    def many(self, count: int) -> list[LabeledNull]:
        """Return ``count`` fresh nulls."""
        return [self() for _ in range(count)]


def nulls_in(values: Iterable[Value]) -> Iterator[LabeledNull]:
    """Yield the labeled nulls among ``values`` (with repetitions)."""
    for value in values:
        if isinstance(value, LabeledNull):
            yield value


def constants_in(values: Iterable[Value]) -> Iterator[Value]:
    """Yield the constants among ``values`` (with repetitions)."""
    for value in values:
        if not isinstance(value, LabeledNull):
            yield value


def rename_disjoint(
    values: Iterable[Value], taken_labels: set[str], prefix: str = "R"
) -> dict[LabeledNull, LabeledNull]:
    """Build a renaming of the nulls in ``values`` away from ``taken_labels``.

    Returns a dictionary mapping each null whose label collides with
    ``taken_labels`` to a fresh null whose label is outside both
    ``taken_labels`` and the labels already used by ``values``.

    This implements the paper's remark that nulls can always be renamed to
    make two instances var-disjoint without changing their semantics.
    """
    own_labels = {v.label for v in values if isinstance(v, LabeledNull)}
    renaming: dict[LabeledNull, LabeledNull] = {}
    counter = itertools.count()
    for label in sorted(own_labels & taken_labels):
        while True:
            candidate = f"{prefix}{next(counter)}"
            if candidate not in taken_labels and candidate not in own_labels:
                break
        renaming[LabeledNull(label)] = LabeledNull(candidate)
        own_labels.add(candidate)
    return renaming
