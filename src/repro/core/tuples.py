"""Tuples and cells.

A tuple (paper Sec. 2) is a sequence of values over the attributes of one
relation, carrying a unique *tuple identifier*.  Identifiers are **not**
semantic keys — they only let the library reference tuples, address cells
(``t_id.A``), and report tuple mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .errors import SchemaError
from .schema import RelationSchema
from .values import LabeledNull, Value, is_constant, is_null


@dataclass(frozen=True)
class Cell:
    """Address of a cell: tuple identifier, relation, and attribute.

    A cell is a *location* in an instance (paper Sec. 2: ``t_id.A_i``), not a
    value.  Cells are the unit of accounting for the data-cleaning metrics
    (Table 5) and for the perturbation framework (Tables 2–3).
    """

    tuple_id: str
    relation: str
    attribute: str

    def __repr__(self) -> str:
        return f"{self.tuple_id}.{self.attribute}"


class Tuple:
    """An immutable tuple with a unique identifier.

    Parameters
    ----------
    tuple_id:
        Unique identifier within an instance (and across two instances being
        compared; :class:`repro.core.instance.Instance` enforces this).
    relation:
        Schema of the relation this tuple belongs to.
    values:
        The cell values, positionally aligned with ``relation.attributes``.

    Examples
    --------
    >>> from repro.core.values import LabeledNull
    >>> schema = RelationSchema("Conf", ("Name", "Year"))
    >>> t = Tuple("t1", schema, ("VLDB", LabeledNull("N1")))
    >>> t["Name"]
    'VLDB'
    >>> t.null_attributes()
    ('Year',)
    """

    __slots__ = ("tuple_id", "relation", "values", "_hash")

    def __init__(
        self, tuple_id: str, relation: RelationSchema, values: Sequence[Value]
    ) -> None:
        values = tuple(values)
        if len(values) != relation.arity:
            raise SchemaError(
                f"tuple {tuple_id!r} has {len(values)} values but relation "
                f"{relation.name!r} has arity {relation.arity}"
            )
        self.tuple_id = str(tuple_id)
        self.relation = relation
        self.values = values
        self._hash = hash((self.tuple_id, relation.name, values))

    # -- value access -----------------------------------------------------

    def __getitem__(self, attribute: str) -> Value:
        return self.values[self.relation.position(attribute)]

    def value_at(self, position: int) -> Value:
        """Return the value at 0-based ``position``."""
        return self.values[position]

    def items(self) -> Iterator[tuple[str, Value]]:
        """Yield ``(attribute, value)`` pairs in schema order."""
        return zip(self.relation.attributes, self.values)

    def cells(self) -> Iterator[tuple[Cell, Value]]:
        """Yield ``(cell, value)`` pairs in schema order."""
        for attribute, value in self.items():
            yield Cell(self.tuple_id, self.relation.name, attribute), value

    # -- null / constant structure ----------------------------------------

    def null_attributes(self) -> tuple[str, ...]:
        """Attributes whose value is a labeled null."""
        return tuple(a for a, v in self.items() if is_null(v))

    def constant_attributes(self) -> tuple[str, ...]:
        """Attributes whose value is a constant (``A_ground`` in Alg. 4)."""
        return tuple(a for a, v in self.items() if is_constant(v))

    def nulls(self) -> tuple[LabeledNull, ...]:
        """The labeled nulls appearing in this tuple (with repetitions)."""
        return tuple(v for v in self.values if is_null(v))

    def constants(self) -> tuple[Value, ...]:
        """The constants appearing in this tuple (with repetitions)."""
        return tuple(v for v in self.values if is_constant(v))

    def is_ground(self) -> bool:
        """Whether the tuple contains no nulls."""
        return not any(is_null(v) for v in self.values)

    def constant_count(self) -> int:
        """Number of constant-valued cells (used to order greedy matching)."""
        return sum(1 for v in self.values if is_constant(v))

    # -- derivation ---------------------------------------------------------

    def with_values(self, values: Sequence[Value]) -> "Tuple":
        """Return a tuple with the same id/relation but new ``values``."""
        return Tuple(self.tuple_id, self.relation, values)

    def with_id(self, tuple_id: str) -> "Tuple":
        """Return a tuple with the same relation/values but a new id."""
        return Tuple(tuple_id, self.relation, self.values)

    def substituted(self, mapping: Mapping[Value, Value]) -> "Tuple":
        """Apply a value substitution to every cell.

        Values absent from ``mapping`` are kept unchanged.  This is the
        workhorse behind applying value mappings and null renamings.
        """
        return self.with_values(tuple(mapping.get(v, v) for v in self.values))

    def content(self) -> tuple[str, tuple[Value, ...]]:
        """Identity-free content: ``(relation name, values)``.

        Two tuples with equal content are equal *as facts* regardless of
        their identifiers — the notion the symmetric difference (Sec. 3)
        and the ground PTIME algorithm operate on.
        """
        return (self.relation.name, self.values)

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.tuple_id == other.tuple_id
            and self.relation.name == other.relation.name
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle by construction arguments: ``_hash`` caches process-local
        # string hashes and must be recomputed when a tuple is shipped to or
        # from a worker process.
        return (Tuple, (self.tuple_id, self.relation, self.values))

    def __repr__(self) -> str:
        rendered = ", ".join(
            f"{a}={v.label if is_null(v) else v!r}" for a, v in self.items()
        )
        return f"<{self.tuple_id}: {self.relation.name}({rendered})>"

    def __len__(self) -> int:
        return len(self.values)
