"""Core relational model: values, schemas, tuples, and instances."""

from .errors import (
    ChaseError,
    InstanceError,
    MappingError,
    RepairError,
    ReproError,
    SchemaError,
    ScoringError,
    UnificationConflict,
)
from .instance import Instance, RelationInstance, prepare_for_comparison
from .schema import RelationSchema, Schema
from .tuples import Cell, Tuple
from .values import (
    LabeledNull,
    NullFactory,
    Value,
    constants_in,
    is_constant,
    is_null,
    nulls_in,
)

__all__ = [
    "Cell",
    "ChaseError",
    "Instance",
    "InstanceError",
    "LabeledNull",
    "MappingError",
    "NullFactory",
    "RelationInstance",
    "RelationSchema",
    "RepairError",
    "ReproError",
    "Schema",
    "SchemaError",
    "ScoringError",
    "Tuple",
    "UnificationConflict",
    "Value",
    "constants_in",
    "is_constant",
    "is_null",
    "nulls_in",
    "prepare_for_comparison",
]
