"""The naive chase for source-to-target tgds.

Given a source instance and a schema mapping (a set of s-t tgds), the chase
materializes a canonical *universal solution*: for every homomorphic match of
a tgd body in the source, the head atoms are instantiated, with existential
variables replaced by Skolem-derived labeled nulls.

The Skolem *scope* controls how nulls are shared across firings:

* ``"head"`` — the null for existential ``y`` is keyed by the universal
  variables that co-occur with ``y``'s atoms in the head.  This merges
  logically-identical existentials and produces compact (often core)
  solutions.
* ``"body"`` — keyed by the full body binding: every distinct source binding
  gets its own nulls, yielding the redundant canonical solution that the
  Table 6 user mappings (U1/U2) exhibit.

Target tuples are deduplicated by content (set semantics).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.errors import ChaseError
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.values import LabeledNull, Value
from ..obs.metrics import active_metrics
from ..obs.profile import active_profiler
from ..obs.trace import span
from ..runtime.faults import fault_checkpoint
from .tgds import TGD, Atom, Var, mapping_labels_unique

SKOLEM_SCOPE_HEAD = "head"
SKOLEM_SCOPE_BODY = "body"


class SkolemFactory:
    """Memoized Skolem nulls: one null per (tgd, variable, key values)."""

    def __init__(self, prefix: str = "Sk") -> None:
        self._memo: dict[tuple, LabeledNull] = {}
        self._counter = itertools.count()
        self.prefix = prefix

    def null_for(self, tgd_label: str, var_name: str, key: tuple) -> LabeledNull:
        """The null for Skolem term ``f_{tgd,var}(key)`` (memoized)."""
        memo_key = (tgd_label, var_name, key)
        if memo_key not in self._memo:
            self._memo[memo_key] = LabeledNull(
                f"{self.prefix}{next(self._counter)}"
            )
        return self._memo[memo_key]


def _match_body(
    source: Instance, atoms: tuple[Atom, ...]
) -> Iterator[dict[Var, Value]]:
    """Enumerate all homomorphic matches of the body in the source.

    Straightforward backtracking join: atoms are matched left to right, each
    against the tuples of its relation, extending the binding.
    """

    def extend(index: int, binding: dict[Var, Value]) -> Iterator[dict[Var, Value]]:
        if index == len(atoms):
            yield dict(binding)
            return
        atom = atoms[index]
        relation = source.relation(atom.relation)
        arity = relation.schema.arity
        if len(atom.terms) != arity:
            raise ChaseError(
                f"atom {atom!r} arity mismatch with relation "
                f"{atom.relation!r} (arity {arity})"
            )
        for t in relation:
            added: list[Var] = []
            ok = True
            for term, value in zip(atom.terms, t.values):
                if isinstance(term, Var):
                    bound = binding.get(term)
                    if bound is None:
                        binding[term] = value
                        added.append(term)
                    elif bound != value:
                        ok = False
                        break
                elif term != value:
                    ok = False
                    break
            if ok:
                yield from extend(index + 1, binding)
            for var in added:
                del binding[var]

    yield from extend(0, {})


def _skolem_key(
    tgd: TGD, var: Var, binding: dict[Var, Value], scope: str
) -> tuple:
    if scope == SKOLEM_SCOPE_BODY:
        universals = sorted(tgd.universal_variables(), key=lambda v: v.name)
        return tuple(binding[v] for v in universals)
    # head scope: universal variables co-occurring with `var` in head atoms.
    co_vars: set[Var] = set()
    for atom in tgd.head:
        if var in atom.variables():
            co_vars |= atom.variables()
    universals = sorted(
        co_vars & tgd.universal_variables(), key=lambda v: v.name
    )
    return tuple(binding[v] for v in universals)


def chase(
    source: Instance,
    tgds: list[TGD],
    target_schema: Schema,
    skolem_scope: str = SKOLEM_SCOPE_HEAD,
    name: str = "J",
    id_prefix: str = "j",
) -> Instance:
    """Chase ``source`` with the mapping and return the target instance.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> from repro.core.schema import Schema
    >>> from repro.dataexchange.tgds import Atom, TGD, Var
    >>> src = Instance.from_rows("D", ("Name", "Hosp"), [("ann", "h1")])
    >>> n, h, e = Var("n"), Var("h"), Var("e")
    >>> tgd = TGD("m1", (Atom("D", (n, h)),),
    ...           (Atom("W", (n, e)), Atom("H", (e, h))))
    >>> from repro.core.schema import RelationSchema
    >>> target = Schema([RelationSchema("W", ("Name", "HId")),
    ...                  RelationSchema("H", ("HId", "Hosp"))])
    >>> result = chase(src, [tgd], target)
    >>> len(result)
    2
    """
    mapping_labels_unique(tgds)
    if skolem_scope not in (SKOLEM_SCOPE_HEAD, SKOLEM_SCOPE_BODY):
        raise ChaseError(f"unknown skolem scope {skolem_scope!r}")
    skolems = SkolemFactory()
    target = Instance(target_schema, name=name)
    seen_contents: set[tuple] = set()
    tuple_counter = itertools.count(1)
    firings = 0
    emitted = 0
    duplicates = 0
    profiler = active_profiler()

    with span("chase.run", tgds=len(tgds), scope=skolem_scope) as chase_span:
        for tgd in tgds:
            existentials = tgd.existential_variables()
            scope = tgd.skolem_scope or skolem_scope
            if scope not in (SKOLEM_SCOPE_HEAD, SKOLEM_SCOPE_BODY):
                raise ChaseError(
                    f"unknown skolem scope {scope!r} on tgd {tgd.label!r}"
                )
            tgd_firings = 0
            for binding in _match_body(source, tgd.body):
                # Fault-injection site: one "chase" checkpoint per tgd firing
                # (no-op without an installed FaultPlan).
                fault_checkpoint("chase")
                firings += 1
                tgd_firings += 1
                null_binding: dict[Var, LabeledNull] = {
                    var: skolems.null_for(
                        tgd.label, var.name,
                        _skolem_key(tgd, var, binding, scope),
                    )
                    for var in existentials
                }
                for atom in tgd.head:
                    values: list[Value] = []
                    for term in atom.terms:
                        if isinstance(term, Var):
                            if term in binding:
                                values.append(binding[term])
                            elif term in null_binding:
                                values.append(null_binding[term])
                            else:
                                raise ChaseError(
                                    f"unbound variable {term!r} in head of "
                                    f"{tgd.label!r}"
                                )
                        else:
                            values.append(term)
                    content = (atom.relation, tuple(values))
                    if content in seen_contents:
                        duplicates += 1
                        continue
                    seen_contents.add(content)
                    emitted += 1
                    target.add_row(
                        atom.relation,
                        f"{id_prefix}{next(tuple_counter)}",
                        values,
                    )
            if profiler is not None:
                profiler.observe("chase.firings_per_tgd", tgd_firings, tgd.label)
        chase_span.set(
            firings=firings, tuples_emitted=emitted, duplicates=duplicates
        )

    registry = active_metrics()
    if registry is not None:
        registry.counter("chase.runs")
        registry.counter("chase.firings", firings)
        registry.counter("chase.tuples_emitted", emitted)
        registry.counter("chase.duplicates_skipped", duplicates)
    return target
