"""Data-exchange substrate: tgds, the chase, and the Table 6 scenario."""

from .chase import (
    SKOLEM_SCOPE_BODY,
    SKOLEM_SCOPE_HEAD,
    SkolemFactory,
    chase,
)
from .scenarios import (
    SOURCE_SCHEMA,
    TARGET_SCHEMA,
    ExchangeScenario,
    generate_exchange_scenario,
    generate_source,
    masked_content_multiset,
    missing_rows,
    row_score,
)
from .tgds import TGD, Atom, Var, mapping_labels_unique

__all__ = [
    "Atom",
    "ExchangeScenario",
    "SKOLEM_SCOPE_BODY",
    "SKOLEM_SCOPE_HEAD",
    "SOURCE_SCHEMA",
    "SkolemFactory",
    "TARGET_SCHEMA",
    "TGD",
    "Var",
    "chase",
    "generate_exchange_scenario",
    "generate_source",
    "mapping_labels_unique",
    "masked_content_multiset",
    "missing_rows",
    "row_score",
]
