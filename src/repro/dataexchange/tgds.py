"""Source-to-target tuple-generating dependencies (s-t tgds).

A tgd ``∀x̄ φ(x̄) → ∃ȳ ψ(x̄, ȳ)`` relates a source schema to a target schema
(Fagin et al., "Data Exchange: Semantics and Query Answering").  Atoms use
:class:`Var` terms and constants; variables occurring only in the head are
existential and materialize as labeled nulls during the chase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.errors import ChaseError


@dataclass(frozen=True)
class Var:
    """A tgd variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Term = Union[Var, object]
"""An atom argument: a variable or a constant."""


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t_1, ..., t_n)``."""

    relation: str
    terms: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    def variables(self) -> set[Var]:
        """Variables appearing in this atom."""
        return {t for t in self.terms if isinstance(t, Var)}

    def __repr__(self) -> str:
        rendered = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({rendered})"


@dataclass(frozen=True)
class TGD:
    """A source-to-target tgd: ``body → head``.

    Attributes
    ----------
    label:
        Name used for Skolem functions and reports; labels must be unique
        within a mapping.
    body, head:
        Conjunctions of atoms over the source / target schema.
    skolem_scope:
        Optional per-tgd override of the chase's Skolemization scope
        (``"head"`` or ``"body"``); ``None`` inherits the chase-level
        setting.  Mixing scopes is how user mappings with different
        Skolemization strategies (paper Sec. 7.2) are modelled.
    """

    label: str
    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    skolem_scope: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "head", tuple(self.head))
        if not self.body or not self.head:
            raise ChaseError(f"tgd {self.label!r} needs body and head atoms")

    def universal_variables(self) -> set[Var]:
        """Variables bound by the body (∀-quantified)."""
        variables: set[Var] = set()
        for atom in self.body:
            variables |= atom.variables()
        return variables

    def existential_variables(self) -> set[Var]:
        """Head-only variables (∃-quantified — become labeled nulls)."""
        head_vars: set[Var] = set()
        for atom in self.head:
            head_vars |= atom.variables()
        return head_vars - self.universal_variables()

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body)
        head = " ∧ ".join(repr(a) for a in self.head)
        return f"[{self.label}] {body} → {head}"


def mapping_labels_unique(tgds: list[TGD]) -> None:
    """Validate that a schema mapping has unique tgd labels."""
    labels = [tgd.label for tgd in tgds]
    if len(set(labels)) != len(labels):
        raise ChaseError(f"duplicate tgd labels in mapping: {labels}")
