"""The Doctors data-exchange scenario of Table 6.

Source schema: ``Doctor(Name, Spec, Hospital, City)`` plus a staging table
``Person`` with the same shape but a disjoint vocabulary (the table the
*wrong* mapping reads).  Target schema: a vertical partition
``DoctorInfo(Name, Spec, HId)`` / ``HospitalInfo(HId, Hospital, City)`` with
an existential hospital identifier — the classic surrogate-key exchange of
the paper's Fig. 4.

Four mappings are compared against the **core gold solution**:

* **gold** — the correct mapping chased with Skolemized existentials; the
  shared surrogate ``HId`` is pinned by each doctor's name, so the chase
  result *is* the core (verified by ``compute_core`` in the tests).
* **U1** — the correct mapping plus two redundant tgds re-deriving
  ``DoctorInfo`` and ``HospitalInfo`` separately with per-row existentials:
  a heavily redundant universal solution (≈ 2× the core size, matching the
  paper's U1/gold ratio of ~0.6).
* **U2** — the correct mapping plus only the redundant ``HospitalInfo``
  tgd — a mildly redundant universal solution (paper ratio ~0.8).
* **wrong (W)** — the gold tgd applied to the ``Person`` table: same
  cardinality profile as the gold, but every constant is alien to the core —
  a non-universal solution that row-count metrics cannot distinguish from a
  perfect one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.schema import RelationSchema, Schema
from ..utils.rand import make_rng, zipf_index
from .chase import SKOLEM_SCOPE_BODY, SKOLEM_SCOPE_HEAD, chase
from .tgds import TGD, Atom, Var

SOURCE_SCHEMA = Schema(
    [
        RelationSchema("Doctor", ("Name", "Spec", "Hospital", "City")),
        RelationSchema("Person", ("Name", "Spec", "Hospital", "City")),
    ]
)

TARGET_SCHEMA = Schema(
    [
        RelationSchema("DoctorInfo", ("Name", "Spec", "HId")),
        RelationSchema("HospitalInfo", ("HId", "Hospital", "City")),
    ]
)


def _doctor_tgd(label: str, relation: str) -> TGD:
    n, s, h, c, e = Var("n"), Var("s"), Var("h"), Var("c"), Var("e")
    return TGD(
        label,
        body=(Atom(relation, (n, s, h, c)),),
        head=(
            Atom("DoctorInfo", (n, s, e)),
            Atom("HospitalInfo", (e, h, c)),
        ),
    )


def _redundant_doctorinfo_tgd(label: str) -> TGD:
    n, s, h, c, e2 = Var("n"), Var("s"), Var("h"), Var("c"), Var("e2")
    return TGD(
        label,
        body=(Atom("Doctor", (n, s, h, c)),),
        head=(Atom("DoctorInfo", (n, s, e2)),),
        skolem_scope="body",
    )


def _redundant_hospitalinfo_tgd(label: str) -> TGD:
    n, s, h, c, e3 = Var("n"), Var("s"), Var("h"), Var("c"), Var("e3")
    return TGD(
        label,
        body=(Atom("Doctor", (n, s, h, c)),),
        head=(Atom("HospitalInfo", (e3, h, c)),),
        skolem_scope="body",
    )


@dataclass
class ExchangeScenario:
    """A generated Table 6 scenario: source plus the four target solutions."""

    source: Instance
    gold: Instance
    u1: Instance
    u2: Instance
    wrong: Instance

    def solutions(self) -> dict[str, Instance]:
        """The three evaluated solutions keyed by their Table 6 names."""
        return {"W": self.wrong, "U1": self.u1, "U2": self.u2}


def generate_source(
    doctors: int, seed: int = 0, hospitals: int | None = None
) -> Instance:
    """A random Doctors source with a same-shape disjoint Person table."""
    rng = make_rng(seed)
    hospitals = hospitals if hospitals is not None else max(1, doctors // 10)
    source = Instance(SOURCE_SCHEMA, name="source")
    for relation, prefix in (("Doctor", "doc"), ("Person", "per")):
        for index in range(doctors):
            hospital = zipf_index(rng, hospitals, skew=1.3)
            source.add_row(
                relation,
                f"{prefix}{index}",
                (
                    f"{prefix}_name{index}",
                    f"{prefix}_spec{rng.randrange(25)}",
                    f"{prefix}_hosp{hospital}",
                    f"{prefix}_city{hospital % max(1, hospitals // 2)}",
                ),
            )
    return source


def generate_exchange_scenario(
    doctors: int = 200, seed: int = 0
) -> ExchangeScenario:
    """Chase all four Table 6 mappings over one random source.

    Examples
    --------
    >>> scenario = generate_exchange_scenario(doctors=20, seed=1)
    >>> len(scenario.u1) > len(scenario.gold)
    True
    """
    source = generate_source(doctors, seed=seed)
    gold_tgd = _doctor_tgd("gold", "Doctor")
    wrong_tgd = _doctor_tgd("wrong", "Person")

    gold = chase(
        source, [gold_tgd], TARGET_SCHEMA,
        skolem_scope=SKOLEM_SCOPE_HEAD, name="gold", id_prefix="g",
    )
    u1 = chase(
        source,
        [
            gold_tgd,
            _redundant_doctorinfo_tgd("extra_doc"),
            _redundant_hospitalinfo_tgd("extra_hosp"),
        ],
        TARGET_SCHEMA,
        skolem_scope=SKOLEM_SCOPE_HEAD,
        name="U1",
        id_prefix="a",
    )
    u2 = chase(
        source,
        [gold_tgd, _redundant_hospitalinfo_tgd("extra_hosp")],
        TARGET_SCHEMA,
        skolem_scope=SKOLEM_SCOPE_HEAD,
        name="U2",
        id_prefix="b",
    )
    wrong = chase(
        source, [wrong_tgd], TARGET_SCHEMA,
        skolem_scope=SKOLEM_SCOPE_HEAD, name="W", id_prefix="w",
    )
    return ExchangeScenario(
        source=source, gold=gold, u1=u1, u2=u2, wrong=wrong
    )


def masked_content_multiset(instance: Instance):
    """Tuple contents with nulls masked to ``*`` (row-level comparison).

    Two tuples that differ only in null labels/identities collapse to the
    same masked content — the granularity at which the Table 6 "Missing
    Rows" baseline counts.
    """
    from collections import Counter

    from ..core.values import is_null

    return Counter(
        (
            t.relation.name,
            tuple("*" if is_null(v) else v for v in t.values),
        )
        for t in instance.tuples()
    )


def missing_rows(solution: Instance, gold: Instance) -> int:
    """Rows of ``solution`` whose masked content never occurs in the gold.

    Redundant duplicates of gold rows (differing only in their nulls) are
    *not* missing — they fold onto gold rows homomorphically.  A row counts
    as missing only when no gold row shares its constant pattern, which is
    what happens when a mapping read the wrong source data.
    """
    gold_contents = set(masked_content_multiset(gold))
    missing = 0
    for content, count in masked_content_multiset(solution).items():
        if content not in gold_contents:
            missing += count
    return missing


def row_score(solution: Instance, gold: Instance) -> float:
    """The Table 6 baseline: the row-count ratio ``min/max``.

    This metric is deliberately naive — it is blind to *which* rows were
    produced, which is exactly the failure mode the wrong mapping exposes.
    """
    a, b = len(solution), len(gold)
    if a == 0 and b == 0:
        return 1.0
    if max(a, b) == 0:
        return 0.0
    return min(a, b) / max(a, b)
