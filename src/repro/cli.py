"""Command-line interface: compare two CSV files with labeled nulls.

Usage::

    python -m repro compare left.csv right.csv \
        --preset versioning --lam 0.5 --algorithm signature --explain

    python -m repro similarity left.csv right.csv

    python -m repro diff old.csv new.csv    # structured version delta

    python -m repro index build lake.idx a.csv b.csv   # persistent index
    python -m repro index search lake.idx query.csv --top-k 3
    python -m repro index dedup lake.idx --threshold 0.8 --clusters

    python -m repro serve --store lake.idx --port 8645   # HTTP service

Labeled nulls are encoded in the CSV cells with the ``_N:`` prefix
(``_N:N1``); see :mod:`repro.io_.csvio`.  The exit code is 0 on success,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import compare
from .algorithms.options import Algorithm
from .core.errors import ReproError
from .io_.csvio import NULL_PREFIX, read_csv
from .io_.serialization import result_to_dict
from .mappings.constraints import MatchOptions
from .parallel import compare_many
from .runtime import Executor, FaultPlan, RetryPolicy, WorkerLimits

PRESETS = {
    "general": MatchOptions.general,
    "versioning": MatchOptions.versioning,
    "record-merging": MatchOptions.record_merging,
    "universal-vs-core": MatchOptions.universal_vs_core,
    "universal-vs-universal": MatchOptions.universal_vs_universal,
    "data-repair": MatchOptions.data_repair,
}


ALGORITHMS = (
    "signature", "assignment", "exact", "ground", "partial", "anytime"
)
"""The ``--algorithm`` vocabulary, shared by every command that compares."""


def _add_algorithm_flag(sub) -> None:
    """The one ``--algorithm`` flag definition (compare *and* index)."""
    sub.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="signature",
        help=(
            "comparison algorithm; the same vocabulary everywhere "
            "(default: signature)"
        ),
    )


def _add_match_flags(
    sub, default_preset: str, preset_help: str | None = None
) -> None:
    """The one ``--preset``/``--lam`` flags definition."""
    sub.add_argument(
        "--preset", choices=sorted(PRESETS), default=default_preset,
        help=preset_help or "match-constraint preset (paper Sec. 4.3)",
    )
    sub.add_argument(
        "--lam", type=float, default=0.5,
        help="null-to-constant penalty λ in [0, 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Similarity of incomplete database instances (EDBT 2024). "
            "Cells starting with the null prefix are labeled nulls."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    helps = {
        "compare": "full comparison with match and stats",
        "similarity": "print only the similarity score",
        "diff": "structured version delta (updates / inserts / deletes)",
        "compare-many": "batch comparison over a worker pool with caching",
    }
    for command in ("compare", "similarity", "diff", "compare-many"):
        sub = subparsers.add_parser(command, help=helps[command])
        if command == "compare-many":
            sub.add_argument(
                "inputs", nargs="+", metavar="CSV",
                help=(
                    "with --baseline: variant files, each compared against "
                    "the baseline; without: an even count consumed as "
                    "consecutive (left, right) pairs"
                ),
            )
            sub.add_argument(
                "--baseline", default=None, metavar="CSV",
                help="compare this file against every input file",
            )
            sub.add_argument(
                "--jobs", type=int, default=1, metavar="N",
                help=(
                    "worker fan-out: 1 (default) runs in-process, N > 1 "
                    "fans pairs over N fork workers"
                ),
            )
            sub.add_argument(
                "--json", action="store_true",
                help="emit all results (and cache stats) as JSON",
            )
        else:
            sub.add_argument("left", help="left CSV file")
            sub.add_argument("right", help="right CSV file")
        _add_algorithm_flag(sub)
        _add_match_flags(sub, "general")
        sub.add_argument(
            "--relation", default="R",
            help="relation name used for both CSVs",
        )
        sub.add_argument(
            "--null-prefix", default=NULL_PREFIX,
            help=f"cell prefix marking labeled nulls (default {NULL_PREFIX!r})",
        )
        if command != "compare-many":
            sub.add_argument(
                "--align-schemas", action="store_true",
                help="pad differing columns with fresh nulls (Sec. 4.3)",
            )
        if command == "compare-many":
            sub.add_argument(
                "--deadline", type=float, default=None, metavar="SECONDS",
                help="per-pair wall-clock allowance",
            )
            sub.add_argument(
                "--max-memory", type=float, default=None, metavar="MB",
                help="address-space cap per worker, in MiB (forces workers)",
            )
            sub.add_argument(
                "--retries", type=int, default=0, metavar="N",
                help=(
                    "retry a dead pair up to N times before degrading it "
                    "to the signature floor"
                ),
            )
            sub.add_argument(
                "--fault-plan", default=None, metavar="SPEC",
                help="inject deterministic faults into every pair's worker",
            )
        if command in ("compare", "similarity"):
            sub.add_argument(
                "--deadline", type=float, default=None, metavar="SECONDS",
                help=(
                    "wall-clock allowance; supported by signature, exact, "
                    "and anytime"
                ),
            )
            sub.add_argument(
                "--on-budget-exhausted",
                choices=("fail", "degrade"),
                default="degrade",
                help=(
                    "when a budget or deadline cuts the search short — or "
                    "the exact stage dies hard (oom/killed/crashed) under "
                    "--isolate/--retries: 'degrade' (default) reports the "
                    "lower-bound score with a warning, 'fail' exits with "
                    "status 3"
                ),
            )
            sub.add_argument(
                "--isolate", action="store_true",
                help=(
                    "run the exponential stage in a worker subprocess with "
                    "hard resource caps; its death degrades the comparison "
                    "to the signature tier instead of crashing (exact and "
                    "anytime only)"
                ),
            )
            sub.add_argument(
                "--max-memory", type=float, default=None, metavar="MB",
                help=(
                    "address-space cap for the isolated worker, in MiB "
                    "(implies --isolate)"
                ),
            )
            sub.add_argument(
                "--retries", type=int, default=0, metavar="N",
                help=(
                    "retry a dead exponential stage up to N times with "
                    "exponential backoff before degrading"
                ),
            )
            sub.add_argument(
                "--fault-plan", default=None, metavar="SPEC",
                help=(
                    "inject deterministic faults for testing degradation "
                    "paths: comma-separated kind@site:N[#attempt], e.g. "
                    "'memory-error@budget:3' (kinds: memory-error, "
                    "timeout-error, crash, transient-error, garbage-result; "
                    "sites: budget, chase, io, worker, *)"
                ),
            )
        if command == "compare":
            sub.add_argument(
                "--explain", action="store_true",
                help="print the instance match explanation",
            )
            sub.add_argument(
                "--json", action="store_true",
                help="emit the full result as JSON",
            )
        _add_obs_flags(sub)

    _add_index_parser(subparsers)
    _add_obs_parser(subparsers)
    _add_serve_parser(subparsers)
    return parser


def _add_obs_flags(sub) -> None:
    """Observability output flags, shared by every comparison command."""
    sub.add_argument(
        "--metrics", default=None, metavar="OUT.json",
        help=(
            "collect per-layer counters/gauges/histograms during the run "
            "and write the aggregated snapshot as JSON"
        ),
    )
    sub.add_argument(
        "--trace", default=None, metavar="OUT.jsonl",
        help="trace the run and write one span per line (JSON Lines)",
    )
    sub.add_argument(
        "--profile", default=None, metavar="OUT.json",
        help="sample hotspot sites and write the top-K summary as JSON",
    )


def _add_index_parser(subparsers) -> None:
    """The ``index`` command family: persistent sketch-based retrieval."""
    index_parser = subparsers.add_parser(
        "index",
        help="build, maintain, and query a persistent similarity index",
        description=(
            "Sub-linear dataset search and dedup over a persisted sketch "
            "index (see docs/INDEX.md). Match options and sketch params "
            "are fixed at build time and stored in the index manifest."
        ),
    )
    actions = index_parser.add_subparsers(dest="index_command", required=True)

    build = actions.add_parser(
        "build", help="create a store and index one or more CSV tables"
    )
    build.add_argument("store", help="index store directory (created)")
    build.add_argument(
        "inputs", nargs="+", metavar="CSV",
        help="tables to index; each is registered under its file path",
    )
    _add_match_flags(
        build, "versioning",
        preset_help="match-constraint preset baked into the index",
    )
    build.add_argument(
        "--perms", type=int, default=64, metavar="N",
        help="min-hash signature length",
    )
    build.add_argument(
        "--bands", type=int, default=16, metavar="N",
        help="LSH band count",
    )
    build.add_argument(
        "--rows-per-band", type=int, default=4, metavar="N",
        help="signature rows per LSH band (bands*rows <= perms)",
    )
    build.add_argument(
        "--seed", type=int, default=0,
        help="min-hash permutation seed (part of the index identity)",
    )

    add = actions.add_parser(
        "add", help="incrementally add tables to an existing store"
    )
    add.add_argument("store", help="existing index store directory")
    add.add_argument("inputs", nargs="+", metavar="CSV", help="tables to add")
    add.add_argument(
        "--update", action="store_true",
        help=(
            "allow re-adding known table names: the new content is "
            "diffed against the stored instance and the sketch/LSH "
            "state is repaired in place (delta maintenance)"
        ),
    )
    add.add_argument(
        "--json", action="store_true",
        help=(
            "emit one update report per table as JSON (what was "
            "inserted/deleted/updated, sketch columns repaired vs "
            "rebuilt, min-hash slots patched, LSH buckets moved)"
        ),
    )

    search = actions.add_parser(
        "search", help="rank indexed tables against a query CSV"
    )
    search.add_argument("store", help="existing index store directory")
    search.add_argument("query", help="query CSV file")
    search.add_argument(
        "--top-k", type=int, default=5, metavar="K",
        help="number of hits to return",
    )
    _add_algorithm_flag(search)
    search.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan refinement over N fork workers (1 = in-process)",
    )
    search.add_argument(
        "--brute-force", action="store_true",
        help=(
            "bypass the sketch index and compare against every table "
            "(same results by construction; used by CI to verify parity)"
        ),
    )
    search.add_argument(
        "--json", action="store_true",
        help="emit hits plus the refinement report as JSON",
    )

    dedup = actions.add_parser(
        "dedup", help="find near-duplicate table pairs in the index"
    )
    dedup.add_argument("store", help="existing index store directory")
    dedup.add_argument(
        "--threshold", type=float, default=0.8,
        help="minimum similarity for a duplicate pair",
    )
    _add_algorithm_flag(dedup)
    dedup.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan refinement over N fork workers (1 = in-process)",
    )
    dedup.add_argument(
        "--clusters", action="store_true",
        help="also report connected duplicate clusters",
    )
    dedup.add_argument(
        "--brute-force", action="store_true",
        help="compare every pair without bound pruning (parity checks)",
    )
    dedup.add_argument(
        "--json", action="store_true",
        help="emit pairs (and clusters) plus the report as JSON",
    )

    recover = actions.add_parser(
        "recover",
        help="replay the store's write-ahead log and report what recovery did",
        description=(
            "Open the store exactly as any reader would: scan the WAL "
            "segment to its last valid record, truncate a torn tail left "
            "by a power cut, replay the log, and print the recovery "
            "report. Exit 0 means the store is consistent and open-able."
        ),
    )
    verify = actions.add_parser(
        "verify",
        help="audit manifest, tables, and WAL; report every corruption",
        description=(
            "Read-only integrity audit: checks the manifest, every table "
            "file's fingerprints, and the WAL checksums without modifying "
            "anything, and reports every finding (not just the first). "
            "Exits non-zero if any error-severity corruption is found."
        ),
    )
    compact = actions.add_parser(
        "compact",
        help="fold the write-ahead log into a new snapshot generation",
        description=(
            "Rewrites logged mutations as snapshot table files, starts a "
            "fresh WAL segment, and atomically switches the manifest; "
            "reclaims removed tables' files and bounds future recovery "
            "time. Safe against crashes at any point."
        ),
    )
    for sub in (recover, verify, compact):
        sub.add_argument("store", help="existing index store directory")
        sub.add_argument(
            "--json", action="store_true",
            help="emit the report as JSON",
        )
    for sub in (build, add, search):
        sub.add_argument(
            "--relation", default="R",
            help="relation name used for every CSV",
        )
        sub.add_argument(
            "--null-prefix", default=NULL_PREFIX,
            help=f"cell prefix marking labeled nulls (default {NULL_PREFIX!r})",
        )


def _add_serve_parser(subparsers) -> None:
    """The ``serve`` command: run the similarity service (docs/SERVE.md)."""
    serve_parser = subparsers.add_parser(
        "serve",
        help="run the resilient similarity HTTP server",
        description=(
            "Serve search/compare/dedup/ingest over HTTP/JSON with "
            "per-request deadlines, bounded admission, load shedding down "
            "the anytime ladder, supervised fork workers, and graceful "
            "drain on SIGTERM (see docs/SERVE.md)."
        ),
    )
    serve_parser.add_argument(
        "inputs", nargs="*", metavar="CSV",
        help="tables to serve; each is registered under its file path",
    )
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="serve an existing index store instead of loose CSVs",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="bind port (0 = ephemeral; default 8645)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker slots (max concurrently forked compute workers)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="max waiting requests before arrivals shed with 429",
    )
    serve_parser.add_argument(
        "--timeout-ms", type=int, default=2000, metavar="MS",
        help="default per-request deadline",
    )
    serve_parser.add_argument(
        "--max-timeout-ms", type=int, default=30000, metavar="MS",
        help="ceiling a request's timeout_ms is clamped to",
    )
    serve_parser.add_argument(
        "--kill-grace-ms", type=int, default=1000, metavar="MS",
        help="grace past the deadline before the worker is hard-killed",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retries per request after a crashed worker attempt",
    )
    serve_parser.add_argument(
        "--no-exact-pressure", type=float, default=0.5, metavar="P",
        help="queue pressure at which the exact rung is dropped",
    )
    serve_parser.add_argument(
        "--signature-only-pressure", type=float, default=0.85, metavar="P",
        help="queue pressure at which answers become signature-only",
    )
    serve_parser.add_argument(
        "--drain-deadline", type=float, default=5.0, metavar="S",
        help="seconds in-flight requests get to finish on SIGTERM",
    )
    serve_parser.add_argument(
        "--max-memory-mb", type=float, default=None, metavar="MB",
        help="per-worker address-space cap (deaths classify as oom)",
    )
    serve_parser.add_argument(
        "--metrics", default=None, metavar="OUT.json",
        help="flush the aggregated metrics snapshot here on drain",
    )
    _add_match_flags(
        serve_parser, "versioning",
        preset_help="match-constraint preset (CSV mode; stores bake in their own)",
    )
    serve_parser.add_argument(
        "--relation", default="R", help="relation name used for every CSV",
    )
    serve_parser.add_argument(
        "--null-prefix", default=NULL_PREFIX,
        help=f"cell prefix marking labeled nulls (default {NULL_PREFIX!r})",
    )


def _run_serve(args, parser) -> int:
    """The ``serve`` command: build/load the index, run the server."""
    import asyncio

    from .index import SimilarityIndex
    from .obs.metrics import MetricsRegistry, set_metrics
    from .serve import DEFAULT_PORT, ServerConfig
    from .serve.app import serve as serve_app

    index = index_loader = None
    try:
        if args.store is not None:
            if args.inputs:
                parser.error("pass either --store or loose CSVs, not both")
            # Recovery (WAL replay, torn-tail repair) happens *behind* the
            # listener: the loader runs after the port is bound, /readyz
            # answers {"status": "recovering"} (503) until it finishes.
            store_path = args.store
            index_loader = lambda: SimilarityIndex.load(store_path)  # noqa: E731
        else:
            index = SimilarityIndex(options=PRESETS[args.preset](lam=args.lam))
            for path in args.inputs:
                index.add(path, _read_index_table(args, path, path))
        config = ServerConfig(
            host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
            jobs=args.jobs,
            max_queue=args.max_queue,
            default_timeout_ms=args.timeout_ms,
            max_timeout_ms=args.max_timeout_ms,
            kill_grace_ms=args.kill_grace_ms,
            no_exact_pressure=args.no_exact_pressure,
            signature_only_pressure=args.signature_only_pressure,
            retries=args.retries,
            drain_deadline_seconds=args.drain_deadline,
            max_memory_mb=args.max_memory_mb,
            metrics_path=args.metrics,
        )
    except (OSError, ValueError, ReproError) as error:
        parser.error(str(error))
    registry = MetricsRegistry()
    set_metrics(registry)
    try:
        return asyncio.run(serve_app(
            config, index, metrics=registry, index_loader=index_loader
        ))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 0
    finally:
        set_metrics(None)


def _add_obs_parser(subparsers) -> None:
    """The ``obs`` command family: inspect exported observability artifacts."""
    obs_parser = subparsers.add_parser(
        "obs",
        help="render reports from --metrics/--trace/--profile artifacts",
        description=(
            "Offline inspection of observability artifacts written by the "
            "comparison commands (see docs/OBSERVABILITY.md). Artifacts "
            "are validated against their schemas before rendering."
        ),
    )
    actions = obs_parser.add_subparsers(dest="obs_command", required=True)
    report = actions.add_parser(
        "report", help="render a plain-text summary grouped by layer"
    )
    report.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="metrics snapshot JSON written by --metrics",
    )
    report.add_argument(
        "--trace", default=None, metavar="FILE",
        help="span JSONL written by --trace",
    )
    report.add_argument(
        "--profile", default=None, metavar="FILE",
        help="profile summary JSON written by --profile",
    )


def _run_obs(args, parser) -> int:
    """The ``obs report`` command: validate artifacts and print the report."""
    from .obs import SchemaError, Tracer, render_report

    if not (args.metrics or args.trace or args.profile):
        parser.error(
            "obs report needs at least one of --metrics / --trace / --profile"
        )
    metrics = spans = profile = None
    try:
        if args.metrics:
            with open(args.metrics, encoding="utf-8") as handle:
                metrics = json.load(handle)
        if args.trace:
            with open(args.trace, encoding="utf-8") as handle:
                spans = Tracer.import_jsonl(handle)
        if args.profile:
            with open(args.profile, encoding="utf-8") as handle:
                profile = json.load(handle)
        print(
            render_report(metrics=metrics, spans=spans, profile=profile),
            end="",
        )
    except (OSError, ValueError, SchemaError) as error:
        parser.error(str(error))
    return 0


class _ObsSession:
    """Metrics/trace/profile collection scopes driven by the CLI flags.

    Enters a collection scope for each requested artifact, and writes the
    files on exit *even when the command fails partway* — a budget-tripped
    or degraded run is exactly when the artifacts matter most.
    """

    def __init__(self, args) -> None:
        self.metrics_path = getattr(args, "metrics", None)
        self.trace_path = getattr(args, "trace", None)
        self.profile_path = getattr(args, "profile", None)
        self._scopes: list = []
        self._registry = None
        self._tracer = None
        self._profiler = None

    def __enter__(self) -> "_ObsSession":
        from .obs import collect_metrics, collect_profile, collect_trace

        if self.metrics_path:
            scope = collect_metrics()
            self._registry = scope.__enter__()
            self._scopes.append(scope)
        if self.trace_path:
            scope = collect_trace()
            self._tracer = scope.__enter__()
            self._scopes.append(scope)
        if self.profile_path:
            scope = collect_profile()
            self._profiler = scope.__enter__()
            self._scopes.append(scope)
        return self

    def __exit__(self, *exc_info) -> None:
        while self._scopes:
            self._scopes.pop().__exit__(*exc_info)
        if self._registry is not None:
            with open(self.metrics_path, "w", encoding="utf-8") as handle:
                json.dump(
                    self._registry.snapshot().as_dict(),
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
        if self._tracer is not None:
            self._tracer.export_path(self.trace_path)
        if self._profiler is not None:
            with open(self.profile_path, "w", encoding="utf-8") as handle:
                json.dump(
                    self._profiler.as_dict(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        return None


def _build_executor(args, parser) -> Executor | None:
    """Assemble the fault-tolerance policy from the CLI flags (or ``None``).

    Any of ``--isolate`` / ``--max-memory`` / ``--retries`` /
    ``--fault-plan`` activates the executor; it requires the ``exact`` or
    ``anytime`` algorithm (the stages with a degradation tier below them).
    Retry/degradation progress is logged to stderr as it happens.
    """
    isolate = getattr(args, "isolate", False)
    max_memory = getattr(args, "max_memory", None)
    retries = getattr(args, "retries", 0)
    fault_plan_text = getattr(args, "fault_plan", None)
    if not (isolate or max_memory is not None or retries or fault_plan_text):
        return None
    if args.algorithm not in ("exact", "anytime"):
        parser.error(
            "--isolate/--max-memory/--retries/--fault-plan require "
            "--algorithm exact or anytime"
        )
    if retries < 0:
        parser.error(f"--retries must be >= 0, got {retries}")
    plan = None
    if fault_plan_text:
        try:
            plan = FaultPlan.parse(fault_plan_text)
        except ValueError as error:
            parser.error(str(error))
    return Executor(
        isolate=isolate or max_memory is not None,
        limits=WorkerLimits(max_memory_mb=max_memory),
        retry=RetryPolicy(retries=retries),
        fault_plan=plan,
        out=lambda line: print(line, file=sys.stderr),
    )


def _run_compare_many(args, parser) -> int:
    """The ``compare-many`` command: batch comparison over the engine."""
    read = lambda path, name: read_csv(  # noqa: E731
        path, relation_name=args.relation,
        null_prefix=args.null_prefix, name=name,
    )
    try:
        if args.baseline is not None:
            baseline = read(args.baseline, "baseline")
            pairs = [(baseline, read(path, path)) for path in args.inputs]
            labels = [(args.baseline, path) for path in args.inputs]
        else:
            if len(args.inputs) % 2:
                parser.error(
                    "compare-many without --baseline needs an even number "
                    "of files (consecutive left/right pairs)"
                )
            pairs = [
                (read(left, left), read(right, right))
                for left, right in zip(args.inputs[::2], args.inputs[1::2])
            ]
            labels = list(zip(args.inputs[::2], args.inputs[1::2]))
    except (OSError, ValueError, ReproError) as error:
        parser.error(str(error))

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    plan = None
    if args.fault_plan:
        try:
            plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            parser.error(str(error))
    limits = (
        WorkerLimits(max_memory_mb=args.max_memory)
        if args.max_memory is not None
        else None
    )

    try:
        results = compare_many(
            pairs,
            Algorithm(args.algorithm),
            PRESETS[args.preset](lam=args.lam),
            jobs=args.jobs,
            deadline=args.deadline,
            limits=limits,
            retry=RetryPolicy(retries=args.retries),
            fault_plan=plan,
            out=lambda line: print(line, file=sys.stderr),
        )
    except ValueError as error:
        parser.error(str(error))

    cache_stats = results[0].stats["cache"] if results else {}
    if args.json:
        payload = {
            "pairs": [
                {
                    "left": left,
                    "right": right,
                    **result_to_dict(result),
                }
                for (left, right), result in zip(labels, results)
            ],
            "cache": cache_stats,
            "jobs": args.jobs,
        }
        print(json.dumps(payload, indent=2, default=str))
        return 0

    for (left, right), result in zip(labels, results):
        marker = "" if result.outcome.is_complete else f" {result.outcome.marker}"
        print(
            f"{left} vs {right}: {result.similarity:.6f} "
            f"[{result.algorithm}]{marker}"
        )
    print(
        f"cache: {cache_stats.get('hits', 0)} hits / "
        f"{cache_stats.get('misses', 0)} misses "
        f"(hit rate {cache_stats.get('hit_rate', 0.0):.2f})",
        file=sys.stderr,
    )
    return 0


def _read_index_table(args, path: str, name: str):
    return read_csv(
        path, relation_name=args.relation,
        null_prefix=args.null_prefix, name=name,
    )


def _run_index(args, parser) -> int:
    """The ``index`` command family: build / add / search / dedup."""
    from .discovery.lake import DataLake
    from .index import IndexParams, RefinePolicy, SimilarityIndex

    if args.index_command in ("recover", "verify", "compact"):
        return _run_index_maintenance(args, parser)

    try:
        if args.index_command == "build":
            try:
                params = IndexParams(
                    num_perms=args.perms,
                    bands=args.bands,
                    rows=args.rows_per_band,
                    seed=args.seed,
                )
            except ValueError as error:
                parser.error(str(error))
            index = SimilarityIndex(
                params=params, options=PRESETS[args.preset](lam=args.lam)
            )
            for path in args.inputs:
                index.add(path, _read_index_table(args, path, path))
            index.save(args.store)
            print(f"indexed {len(index)} tables -> {args.store}")
            return 0

        if args.index_command == "add":
            index = SimilarityIndex.load(args.store)
            reports = []
            for path in args.inputs:
                table = _read_index_table(args, path, path)
                if args.update and path in index:
                    reports.append(index.update(path, table))
                else:
                    reports.append(index.add(path, table))
            if args.json:
                print(json.dumps(
                    {
                        "store": args.store,
                        "tables": len(index),
                        "updates": [report.as_dict() for report in reports],
                    },
                    indent=2, sort_keys=True,
                ))
            else:
                print(
                    f"added {len(args.inputs)} tables "
                    f"({len(index)} total) -> {args.store}"
                )
            return 0

        index = SimilarityIndex.load(args.store)
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        if args.brute_force and args.algorithm != "signature":
            parser.error(
                "--brute-force always refines with the signature "
                "algorithm; drop --algorithm or the parity flag"
            )
        policy = RefinePolicy(
            jobs=args.jobs,
            algorithm=Algorithm(args.algorithm),
            out=lambda line: print(line, file=sys.stderr),
        )

        if args.index_command == "search":
            query = _read_index_table(args, args.query, "query")
            if args.brute_force:
                lake = DataLake.from_index(index)
                lake.use_index = False
                hits = lake.search(query, top_k=args.top_k)
                report = None
            else:
                hits = index.search(query, top_k=args.top_k, policy=policy)
                report = index.last_report
            if args.json:
                payload = {
                    "hits": [
                        {
                            "name": h.name,
                            "similarity": h.similarity,
                            "matched_tuples": h.matched_tuples,
                        }
                        for h in hits
                    ],
                    "report": report.as_dict() if report else None,
                }
                print(json.dumps(payload, indent=2))
                return 0
            for h in hits:
                print(f"{h.similarity:.6f}  {h.name}  ({h.matched_tuples} matched)")
            if report is not None:
                print(
                    f"refined {report.refined}/{report.candidates} candidates "
                    f"(pruned {report.pruned} by bound)",
                    file=sys.stderr,
                )
            return 0

        # dedup
        if args.brute_force:
            lake = DataLake.from_index(index)
            lake.use_index = False
            pairs = lake.near_duplicates(threshold=args.threshold)
            clusters = (
                lake.duplicate_clusters(threshold=args.threshold)
                if args.clusters else None
            )
            report = None
        else:
            pairs = index.near_duplicates(
                threshold=args.threshold, policy=policy
            )
            report = index.last_report
            clusters = (
                index.duplicate_clusters(
                    threshold=args.threshold, policy=policy
                )
                if args.clusters else None
            )
        if args.json:
            payload = {
                "pairs": [
                    {
                        "first": p.first,
                        "second": p.second,
                        "similarity": p.similarity,
                    }
                    for p in pairs
                ],
                "clusters": (
                    [sorted(c) for c in clusters]
                    if clusters is not None else None
                ),
                "report": report.as_dict() if report else None,
            }
            print(json.dumps(payload, indent=2))
            return 0
        for p in pairs:
            print(f"{p.similarity:.6f}  {p.first} ~ {p.second}")
        if clusters is not None:
            for cluster in clusters:
                print("cluster: " + ", ".join(sorted(cluster)))
        if report is not None:
            print(
                f"refined {report.refined} pairs "
                f"(pruned {report.pruned} by bound)",
                file=sys.stderr,
            )
        return 0
    except (OSError, ValueError, ReproError) as error:
        parser.error(str(error))
    raise AssertionError("unreachable")  # pragma: no cover


def _run_index_maintenance(args, parser) -> int:
    """The ``index recover|verify|compact`` verbs (docs/STORE.md)."""
    from .index import IndexStore

    store = IndexStore(args.store)

    if args.index_command == "verify":
        try:
            findings = store.verify()
        except OSError as error:
            parser.error(str(error))
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        if args.json:
            print(json.dumps(
                {
                    "store": args.store,
                    "ok": errors == 0,
                    "errors": errors,
                    "warnings": warnings,
                    "findings": [f.as_dict() for f in findings],
                },
                indent=2, default=str,
            ))
        else:
            for f in findings:
                where = f" [table {f.table}]" if f.table else ""
                print(f"{f.severity}: {f.kind}{where}: {f.message}")
            if errors:
                print(
                    f"{args.store}: CORRUPT — {errors} error(s), "
                    f"{warnings} warning(s)"
                )
            else:
                print(f"{args.store}: ok ({warnings} warning(s))")
        return 1 if errors else 0

    try:
        report = store.open()
        if args.index_command == "recover":
            payload = {"store": args.store, **report.as_dict()}
            store.close()
            if args.json:
                print(json.dumps(payload, indent=2, default=str))
                return 0
            print(
                f"generation {report.generation}: "
                f"{report.snapshot_tables} snapshot table(s), "
                f"{report.wal_records} log record(s) replayed"
            )
            if report.was_torn:
                print(
                    f"torn tail truncated at byte {report.torn_offset}: "
                    f"{report.torn_reason} "
                    f"({report.torn_bytes_dropped} byte(s) dropped)"
                )
            return 0

        # compact
        folded = store.compact()
        store.close()
        if args.json:
            print(json.dumps(
                {"store": args.store, **folded.as_dict()},
                indent=2, default=str,
            ))
            return 0
        if folded.records_folded == 0:
            print(
                f"{args.store}: log is empty "
                f"(generation {folded.new_generation}); nothing to compact"
            )
            return 0
        print(
            f"compacted generation {folded.old_generation} -> "
            f"{folded.new_generation}: folded {folded.records_folded} "
            f"record(s), rewrote {folded.tables_rewritten} table(s), "
            f"dropped {folded.tables_dropped}, removed "
            f"{folded.files_removed} file(s)"
        )
        return 0
    except (OSError, ValueError, ReproError) as error:
        parser.error(str(error))
    raise AssertionError("unreachable")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "index":
        return _run_index(args, parser)

    if args.command == "obs":
        return _run_obs(args, parser)

    if args.command == "serve":
        return _run_serve(args, parser)

    with _ObsSession(args):
        if args.command == "compare-many":
            return _run_compare_many(args, parser)
        return _run_single(args, parser)


def _run_single(args, parser) -> int:
    """The ``compare`` / ``similarity`` / ``diff`` commands."""
    try:
        left = read_csv(
            args.left, relation_name=args.relation,
            null_prefix=args.null_prefix, name="left",
        )
        right = read_csv(
            args.right, relation_name=args.relation,
            null_prefix=args.null_prefix, name="right",
        )
    except (OSError, ValueError, ReproError) as error:
        parser.error(str(error))

    executor = _build_executor(args, parser)

    options = PRESETS[args.preset](lam=args.lam)

    if args.command == "diff":
        from .versioning.delta import diff_versions

        delta = diff_versions(left, right, options=options)
        print(delta.render())
        return 0

    try:
        result = compare(
            left,
            right,
            algorithm=Algorithm(args.algorithm),
            options=options,
            align_schemas=args.align_schemas,
            deadline=getattr(args, "deadline", None),
            executor=executor,
        )
    except ValueError as error:
        parser.error(str(error))

    if not result.outcome.is_complete:
        if result.outcome.value in ("oom", "killed", "crashed"):
            detail = (
                f"the exponential stage died ({result.outcome}) and the "
                "comparison degraded to the approximate tier"
            )
        else:
            detail = f"comparison did not complete ({result.outcome})"
        if getattr(args, "on_budget_exhausted", "degrade") == "fail":
            print(
                f"error: {detail}; score {result.similarity:.6f} is only "
                "a lower bound",
                file=sys.stderr,
            )
            return 3
        print(
            f"warning: {detail}; the score is a lower bound",
            file=sys.stderr,
        )

    if args.command == "similarity":
        print(f"{result.similarity:.6f}")
        return 0

    if getattr(args, "json", False):
        print(json.dumps(result_to_dict(result), indent=2, default=str))
        return 0

    print(f"similarity: {result.similarity:.6f}")
    print(f"algorithm:  {result.algorithm} ({options.describe()})")
    stats = result.statistics()
    print(
        f"matched: {stats.matched_pairs}  "
        f"unmatched left: {stats.left_non_matching}  "
        f"unmatched right: {stats.right_non_matching}"
    )
    violations = result.constraint_violations()
    for violation in violations:
        print(f"warning: {violation}")
    if getattr(args, "explain", False):
        print()
        print(result.explain())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
