"""Deterministic crash-injection filesystem shim for the index store.

The store's durability claims ("acked ingests survive any crash",
"recovery lands on a consistent prefix") are only worth something if we
can *enumerate every crash point and check them*.  This module provides
the seam that makes that possible:

* An **IO layer** — :class:`RealIO` — through which :mod:`repro.index.store`
  and :mod:`repro.index.wal` route every state-changing filesystem
  operation (``write``/``fsync``/``replace``/``fsync_dir``/``unlink``/
  ``truncate``).  In production this is a zero-cost passthrough to ``os``.

* A **crash simulator** — :class:`CrashFS` — that can be installed in
  place of the passthrough.  It numbers every IO step, raises
  :class:`PowerCut` at a chosen step, and — crucially — maintains a model
  of the *durable* disk image alongside the live one: which bytes were
  fsync'd, which renames were pinned by a directory fsync, and which
  writes were still sitting in the page cache when the power died.

After the simulated cut, :meth:`CrashFS.materialize` produces the
directory as a real power cut could have left it, under one of several
adversarial cache-flush modes (:data:`CRASH_MODES`):

``lost``
    Nothing unsynced survived: files hold exactly their last-fsync'd
    contents and unsynced renames/unlinks never happened.  (The minimum
    state a correct fsync discipline guarantees.)
``flushed``
    Everything issued before the cut survived, even without fsync (the
    kernel flushed opportunistically).  (The maximum state.)
``torn``
    Like ``flushed`` but the write in flight at the cut hit the platter
    only partially — a torn write, half its bytes present.
``reordered``
    Later unsynced writes survived while an earlier one was zeroed out —
    blocks hit the disk out of order, leaving a hole of zeros inside
    otherwise-present data (the classic unsynced-reorder failure).

Recovery invariants are then asserted by re-opening the materialized
store with the passthrough layer installed.  The matrix of (every step ×
every mode) is deterministic: the same mutation replays the same steps in
the same order on every run.

The shim also participates in the :mod:`repro.runtime.faults` checkpoint
vocabulary: the store and WAL call ``fault_checkpoint("storage")`` on
their mutation paths, so seeded :class:`~repro.runtime.faults.FaultPlan`
triggers (``transient-error@storage:2``) compose with deterministic
crash-point enumeration.
"""

from __future__ import annotations

import os
from pathlib import Path

CRASH_MODES = ("lost", "flushed", "torn", "reordered")
"""Cache-flush adversary modes a :class:`CrashFS` can materialize."""


class PowerCut(BaseException):
    """The simulated power cut.

    A ``BaseException`` on purpose: recovery code under test must never be
    able to swallow it with ``except Exception`` — a real power cut gives
    no such chance.
    """


class FileHandle:
    """A writable file plus the path it was opened at (layer bookkeeping)."""

    __slots__ = ("file", "path")

    def __init__(self, file, path: Path) -> None:
        self.file = file
        self.path = Path(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileHandle({self.path})"


class RealIO:
    """The production layer: a thin, uncounted passthrough to ``os``.

    Directory fsync policy (EINVAL/ENOTSUP tolerance) lives in the
    *store*, not here — this layer reports failures faithfully.
    """

    label = "real"

    def open_fresh(self, path) -> FileHandle:
        """Open ``path`` for writing, created or truncated to empty."""
        return FileHandle(open(path, "wb"), path)

    def open_append(self, path) -> FileHandle:
        """Open ``path`` for appending at its current end."""
        return FileHandle(open(path, "ab"), path)

    def write(self, handle: FileHandle, data: bytes) -> None:
        handle.file.write(data)

    def fsync(self, handle: FileHandle) -> None:
        handle.file.flush()
        os.fsync(handle.file.fileno())

    def close(self, handle: FileHandle) -> None:
        handle.file.close()

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path) -> None:
        """fsync a directory; raises ``OSError`` as the kernel reports it."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def unlink(self, path) -> None:
        os.unlink(path)

    def truncate(self, path, size: int) -> None:
        """Truncate ``path`` to ``size`` bytes, durably."""
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())


_REAL = RealIO()
_ACTIVE = _REAL


def io_layer():
    """The installed IO layer (the store and WAL call this per operation)."""
    return _ACTIVE


def install(layer) -> None:
    """Install ``layer`` as the process-wide IO layer."""
    global _ACTIVE
    _ACTIVE = layer


def uninstall(layer=None) -> None:
    """Restore the passthrough layer (only if ``layer`` is still active)."""
    global _ACTIVE
    if layer is None or _ACTIVE is layer:
        _ACTIVE = _REAL


class _FileModel:
    """Durability model of one file: fsync'd prefix + unsynced appends."""

    __slots__ = ("synced", "pending", "existed_durably", "creation_pinned")

    def __init__(
        self, synced: bytes, existed_durably: bool, creation_pinned: bool
    ) -> None:
        self.synced = synced
        self.pending: list[bytes] = []
        # Visible after a crash at all?  True once the file either existed
        # before the simulation began or its directory entry was pinned by
        # a parent-directory fsync (or it arrived via a pinned rename).
        self.existed_durably = existed_durably
        self.creation_pinned = creation_pinned


class CrashFS:
    """An IO layer that cuts the power at a chosen step.

    Parameters
    ----------
    root:
        Directory under which operations are modeled.  Operations outside
        ``root`` pass through uncounted (nothing in the store writes
        outside its own directory; the guard keeps stray paths honest).
    crash_at:
        1-based IO step at which :class:`PowerCut` fires, *before* the
        step's effect reaches the live filesystem.  ``None`` = never crash
        (counting mode — run once to learn the step count).
    mode:
        One of :data:`CRASH_MODES`; decides what :meth:`materialize`
        reconstructs.

    Use as a context manager; it installs itself as the process IO layer
    and restores the passthrough on exit.
    """

    def __init__(self, root, crash_at: int | None = None, mode: str = "lost"):
        if mode not in CRASH_MODES:
            raise ValueError(
                f"unknown crash mode {mode!r}; choose from {CRASH_MODES}"
            )
        self.root = Path(root).resolve()
        self.crash_at = crash_at
        self.mode = mode
        self.steps = 0
        self.step_log: list[str] = []
        self.crashed = False
        self._crash_op: tuple[str, Path, bytes] | None = None
        self._files: dict[Path, _FileModel] = {}
        # Unsynced directory-entry ops, in issue order: ("rename", src,
        # dst, content) | ("unlink", path).  Pinned (dropped from here)
        # by fsync_dir on the parent.
        self._dirops: dict[Path, list[tuple]] = {}
        self._seed_from_disk()

    # -- lifecycle -------------------------------------------------------

    def _seed_from_disk(self) -> None:
        """Everything already on disk at install is durable by definition."""
        if not self.root.exists():
            return
        for path in sorted(self.root.rglob("*")):
            if path.is_file():
                self._files[path] = _FileModel(
                    path.read_bytes(),
                    existed_durably=True,
                    creation_pinned=True,
                )

    def __enter__(self) -> "CrashFS":
        install(self)
        return self

    def __exit__(self, *_exc) -> None:
        uninstall(self)

    # -- step accounting -------------------------------------------------

    def _in_scope(self, path) -> bool:
        try:
            Path(path).resolve().relative_to(self.root)
        except ValueError:
            return False
        return True

    def _step(self, op: str, path, data: bytes = b"") -> None:
        """Count one IO step; cut the power if this is the chosen one."""
        if self.crashed:
            raise PowerCut("machine already powered off")
        self.steps += 1
        self.step_log.append(f"{op}:{Path(path).name}")
        if self.crash_at is not None and self.steps == self.crash_at:
            self.crashed = True
            self._crash_op = (op, Path(path).resolve(), data)
            raise PowerCut(
                f"power cut at step {self.steps} ({op} on {path})"
            )

    def _model(self, path: Path) -> _FileModel:
        path = Path(path).resolve()
        model = self._files.get(path)
        if model is None:
            model = _FileModel(
                b"", existed_durably=False, creation_pinned=False
            )
            self._files[path] = model
        return model

    # -- the layer interface --------------------------------------------

    def open_fresh(self, path) -> FileHandle:
        if not self._in_scope(path):
            return _REAL.open_fresh(path)
        if self.crashed:
            raise PowerCut("machine already powered off")
        resolved = Path(path).resolve()
        # O_TRUNC is volatile too, but the store only opens *new* tmp
        # paths fresh; model a fresh, empty, unpinned file.
        self._files[resolved] = _FileModel(
            b"", existed_durably=False, creation_pinned=False
        )
        return FileHandle(open(path, "wb"), path)

    def open_append(self, path) -> FileHandle:
        if not self._in_scope(path):
            return _REAL.open_append(path)
        if self.crashed:
            raise PowerCut("machine already powered off")
        self._model(path)
        return FileHandle(open(path, "ab"), path)

    def write(self, handle: FileHandle, data: bytes) -> None:
        if not self._in_scope(handle.path):
            return _REAL.write(handle, data)
        self._step("write", handle.path, data)
        self._model(handle.path).pending.append(bytes(data))
        handle.file.write(data)

    def fsync(self, handle: FileHandle) -> None:
        if not self._in_scope(handle.path):
            return _REAL.fsync(handle)
        self._step("fsync", handle.path)
        model = self._model(handle.path)
        model.synced += b"".join(model.pending)
        model.pending.clear()
        handle.file.flush()
        os.fsync(handle.file.fileno())

    def close(self, handle: FileHandle) -> None:
        # Closing is not a durability event and not a step; it must work
        # even "after" the cut so the process under test can unwind.
        try:
            handle.file.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def replace(self, src, dst) -> None:
        if not self._in_scope(dst):
            return _REAL.replace(src, dst)
        self._step("replace", dst)
        src_model = self._model(src)
        # The store always fsyncs the source before renaming; what the
        # rename can make durable is the source's *synced* content.
        self._dirops.setdefault(Path(dst).resolve().parent, []).append(
            ("rename", Path(src).resolve(), Path(dst).resolve(),
             src_model.synced)
        )
        os.replace(src, dst)
        # Live view: dst now holds src's full content.
        full = src_model.synced + b"".join(src_model.pending)
        dst_model = self._model(dst)
        dst_model.pending = [full]  # volatile until the dir fsync pins it

    def fsync_dir(self, path) -> None:
        if not self._in_scope(path):
            return _REAL.fsync_dir(path)
        self._step("fsync_dir", path)
        resolved = Path(path).resolve()
        for op in self._dirops.pop(resolved, []):
            if op[0] == "rename":
                _, src, dst, content = op
                model = self._model(dst)
                model.synced = content
                model.pending.clear()
                model.existed_durably = True
                model.creation_pinned = True
                self._files.pop(src, None)
            else:  # unlink
                self._files.pop(op[1], None)
        # Pin the creation of every file opened fresh in this directory:
        # a directory fsync makes all its current entries durable, not
        # just renamed ones.
        for file_path, model in self._files.items():
            if file_path.parent == resolved and os.path.exists(file_path):
                model.creation_pinned = True
        _REAL.fsync_dir(path)

    def unlink(self, path) -> None:
        if not self._in_scope(path):
            return _REAL.unlink(path)
        self._step("unlink", path)
        self._dirops.setdefault(Path(path).resolve().parent, []).append(
            ("unlink", Path(path).resolve())
        )
        os.unlink(path)

    def truncate(self, path, size: int) -> None:
        if not self._in_scope(path):
            return _REAL.truncate(path, size)
        self._step("truncate", path)
        model = self._model(path)
        full = model.synced + b"".join(model.pending)
        model.synced = full[:size]
        model.pending.clear()
        _REAL.truncate(path, size)

    # -- post-crash reconstruction --------------------------------------

    def materialize(self, into) -> Path:
        """Write the post-cut durable image of ``root`` into ``into``.

        What survives depends on :attr:`mode` (see the module docstring).
        Returns ``into`` as a :class:`~pathlib.Path`.
        """
        target = Path(into)
        target.mkdir(parents=True, exist_ok=True)
        pessimistic = self.mode == "lost"
        for path, model in sorted(self._files.items()):
            visible = model.existed_durably or model.creation_pinned
            if pessimistic:
                if not visible:
                    continue
                content = model.synced
            else:
                content = model.synced + b"".join(model.pending)
                if self.mode == "reordered" and model.pending:
                    # The first unsynced write never hit the disk; later
                    # ones did, leaving a hole of zeros.
                    hole = len(model.pending[0])
                    keep = b"".join(model.pending[1:])
                    content = (
                        model.synced + b"\x00" * hole + keep
                    )
            rel = path.relative_to(self.root)
            out = target / rel
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_bytes(content)
        if self.mode in ("flushed", "torn", "reordered"):
            self._apply_pending_dirops(target)
        if self.mode == "torn" and self._crash_op is not None:
            op, path, data = self._crash_op
            if op == "write" and data:
                out = target / path.relative_to(self.root)
                out.parent.mkdir(parents=True, exist_ok=True)
                prior = out.read_bytes() if out.exists() else b""
                out.write_bytes(prior + data[: len(data) // 2])
        return target

    def _apply_pending_dirops(self, target: Path) -> None:
        for ops in sorted(self._dirops.items()):
            for op in ops[1]:
                if op[0] == "rename":
                    _, src, dst, _content = op
                    src_out = target / src.relative_to(self.root)
                    dst_out = target / dst.relative_to(self.root)
                    if src_out.exists():
                        dst_out.parent.mkdir(parents=True, exist_ok=True)
                        os.replace(src_out, dst_out)
                else:
                    out = target / op[1].relative_to(self.root)
                    if out.exists():
                        out.unlink()


def count_io_steps(root, operation) -> int:
    """Run ``operation()`` under a counting-only :class:`CrashFS`.

    Returns the number of IO steps the operation performed — the size of
    one axis of the crash matrix.
    """
    fs = CrashFS(root, crash_at=None)
    with fs:
        operation()
    return fs.steps


__all__ = [
    "CRASH_MODES",
    "CrashFS",
    "FileHandle",
    "PowerCut",
    "RealIO",
    "count_io_steps",
    "install",
    "io_layer",
    "uninstall",
]
