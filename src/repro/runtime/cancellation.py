"""Cooperative cancellation for long-running searches.

A :class:`CancellationToken` is handed to a :class:`~repro.runtime.budget
.Budget`; the search polls the budget (amortized, every ``check_interval``
steps), so after :meth:`CancellationToken.cancel` is called — typically from
another thread, a signal handler, or a server request-abort hook — the
search returns its best-so-far state within one check interval.
"""

from __future__ import annotations

import threading


class CancellationToken:
    """Thread-safe one-shot cancellation flag.

    Examples
    --------
    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation.  Idempotent; safe from any thread."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def cancel_after(self, seconds: float) -> threading.Timer:
        """Schedule :meth:`cancel` on a daemon timer thread; returns the timer.

        A convenience for tests and ad-hoc timeouts; prefer a ``deadline``
        on the :class:`~repro.runtime.budget.Budget` for plain wall-clock
        limits (no extra thread).
        """
        timer = threading.Timer(seconds, self.cancel)
        timer.daemon = True
        timer.start()
        return timer

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"
