"""Cooperative cancellation for long-running searches.

A :class:`CancellationToken` is handed to a :class:`~repro.runtime.budget
.Budget`; the search polls the budget (amortized, every ``check_interval``
steps), so after :meth:`CancellationToken.cancel` is called — typically from
another thread, a signal handler, or a server request-abort hook — the
search returns its best-so-far state within one check interval.
"""

from __future__ import annotations

import threading

from ..core.errors import ReproError


class OperationCancelled(ReproError):
    """Raised by :meth:`CancellationToken.raise_if_cancelled`.

    A distinct type (rather than a bare ``RuntimeError``) so checkpointing
    layers — :func:`repro.experiments.harness.run_cells`, the retry
    decision table — can *re-raise* cancellation instead of recording it as
    just another cell error: a cancelled run must stop, not limp on.
    """


class CancellationToken:
    """Thread-safe one-shot cancellation flag.

    Examples
    --------
    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation.  Idempotent; safe from any thread."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`OperationCancelled` if cancellation was requested.

        For code that prefers exception-style propagation over the
        cooperative ``spend() -> False`` protocol (e.g. experiment cells
        that must abort a whole table run, not checkpoint the cancellation
        as a cell failure).
        """
        if self._event.is_set():
            raise OperationCancelled("operation cancelled")

    def cancel_after(self, seconds: float) -> threading.Timer:
        """Schedule :meth:`cancel` on a daemon timer thread; returns the timer.

        A convenience for tests and ad-hoc timeouts; prefer a ``deadline``
        on the :class:`~repro.runtime.budget.Budget` for plain wall-clock
        limits (no extra thread).
        """
        timer = threading.Timer(seconds, self.cancel)
        timer.daemon = True
        timer.start()
        return timer

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"
