"""Process isolation: run a job in a worker with hard resource guards.

The cooperative :class:`~repro.runtime.budget.Budget` handles the *polite*
ways an exponential search can overrun — too many nodes, too long on the
clock.  This module handles the impolite ones: ``MemoryError`` mid-
backtrack, a ``RecursionError`` ten thousand frames into a homomorphism
search, a genuine interpreter crash.  A job submitted through
:func:`run_isolated` executes in a **worker subprocess** under

* a hard address-space cap (``resource.setrlimit(RLIMIT_AS)``) — the soft
  limit is the cap; the hard limit stays unlimited so the worker can lift
  the cap *after* catching ``MemoryError`` and still report it cleanly;
* a recursion-depth guard (``sys.setrecursionlimit``);
* a wall-clock kill — the parent terminates a worker that overruns.

Whatever happens in the worker comes back as a ``(status, payload)`` pair —
``"ok"``, ``"oom"``, ``"killed"``, ``"crashed"``, ``"fatal"`` (a
:class:`~repro.core.errors.ReproError` to re-raise), or ``"interrupt"`` —
so the caller's process never dies with the job.  The in-process fallback
:func:`run_guarded` applies the same classification without the subprocess
(no hard memory cap or wall kill, but injected and organic
``MemoryError`` / ``RecursionError`` / :class:`InjectedCrash` are still
contained), which keeps the retry/degrade machinery testable and usable on
platforms where ``fork`` is unavailable.

Jobs may be passed as callables (``fork`` start method: nothing needs to be
picklable except the *result*) or as registered job names
(:data:`JOB_REGISTRY`), which also work under ``spawn``.
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..core.errors import ReproError
from .cancellation import OperationCancelled
from .faults import GARBAGE_RESULT, FaultPlan, InjectedCrash, fault_checkpoint
from .outcome import Outcome

_MEMORY_HEADROOM_BYTES = 0  # soft cap only; hard limit stays unlimited

_CRASH_EXIT_CODE = 70  # EX_SOFTWARE: what an InjectedCrash worker exits with

JOB_REGISTRY: dict[str, str] = {
    "exact_compare": "repro.algorithms.exact:exact_compare",
    "signature_compare": "repro.algorithms.signature:signature_compare",
    "compare_anytime": "repro.runtime.anytime:compare_anytime",
    "chase": "repro.dataexchange.chase:chase",
    "compute_core": "repro.homomorphism.core:compute_core",
    "find_homomorphism": "repro.homomorphism.homomorphism:find_homomorphism",
    "compare_pair": "repro.parallel.engine:compare_pair_job",
}
"""Registered job names → ``module:callable`` import paths.

Every potentially-exponential entry point is pre-registered so callers (and
future sharding/serving layers) can submit work by name across process
boundaries without shipping code objects.
"""


def register_job(name: str, target: str) -> None:
    """Register ``name`` → ``"module:callable"`` for isolated execution."""
    if ":" not in target:
        raise ValueError(
            f"job target must be 'module:callable', got {target!r}"
        )
    JOB_REGISTRY[name] = target


def resolve_job(job: str | Callable) -> Callable:
    """Resolve a job name (via :data:`JOB_REGISTRY`) or pass a callable through."""
    if callable(job):
        return job
    try:
        target = JOB_REGISTRY[job]
    except KeyError:
        raise ReproError(
            f"unknown job {job!r}; registered jobs: {sorted(JOB_REGISTRY)}"
        ) from None
    module_name, _, attribute = target.partition(":")
    return getattr(importlib.import_module(module_name), attribute)


class WorkerFailure(ReproError):
    """A job died in a worker and no degradation path was available.

    Carries the structured :attr:`outcome` (``oom`` / ``killed`` /
    ``crashed``) so callers that *do* want to handle it can branch on the
    failure class rather than parse the message.
    """

    def __init__(self, outcome: Outcome, detail: str) -> None:
        super().__init__(f"worker {outcome.value}: {detail}")
        self.outcome = outcome
        self.detail = detail


@dataclass(frozen=True)
class WorkerLimits:
    """Hard resource caps applied inside a worker.

    Parameters
    ----------
    max_memory_mb:
        Address-space cap in MiB (``RLIMIT_AS`` soft limit).  Note this
        bounds the whole interpreter, not just the job's data — caps below
        the interpreter's resident footprint (a few tens of MiB) kill the
        worker on its first allocation, which is still a graceful ``oom``.
    wall_timeout:
        Seconds before the parent terminates the worker (``killed``).
    recursion_limit:
        ``sys.setrecursionlimit`` value inside the worker; bounds runaway
        recursive searches with a catchable ``RecursionError`` instead of a
        stack overflow.
    """

    max_memory_mb: float | None = None
    wall_timeout: float | None = None
    recursion_limit: int | None = None

    @property
    def max_memory_bytes(self) -> int | None:
        if self.max_memory_mb is None:
            return None
        return int(self.max_memory_mb * 1024 * 1024)


def _apply_limits(limits: WorkerLimits) -> None:
    """Apply the caps inside the worker (best-effort on exotic platforms)."""
    if limits.recursion_limit is not None:
        sys.setrecursionlimit(limits.recursion_limit)
    cap = limits.max_memory_bytes
    if cap is not None:
        try:
            import resource

            _, hard = resource.getrlimit(resource.RLIMIT_AS)
            resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
        except (ImportError, OSError, ValueError):  # pragma: no cover
            pass  # platform without RLIMIT_AS: the wall kill still guards


def _lift_memory_cap() -> None:
    """Raise the soft memory cap back to the hard limit.

    Called from the worker's ``MemoryError`` handler so that *reporting*
    the failure (pickling a small tuple through the pipe) does not itself
    die of the cap that caused it.
    """
    try:
        import resource

        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (hard, hard))
    except (ImportError, OSError, ValueError):  # pragma: no cover
        pass


def _worker_main(
    conn,
    job: str | Callable,
    args: tuple,
    kwargs: dict,
    limits: WorkerLimits,
    plan: FaultPlan | None,
) -> None:
    """Worker-side job runner; always reports through ``conn`` or exits."""
    try:
        _apply_limits(limits)
        if plan is not None:
            plan.install()
        try:
            fault_checkpoint("worker")
            fn = resolve_job(job)
            value = fn(*args, **kwargs)
            if plan is not None and plan.should_garble():
                value = GARBAGE_RESULT
        finally:
            if plan is not None:
                plan.uninstall()
        conn.send(("ok", value))
    except MemoryError as error:
        _lift_memory_cap()
        conn.send(("oom", f"MemoryError: {error}"))
    except RecursionError as error:
        conn.send(("oom", f"RecursionError: {error}"))
    except TimeoutError as error:
        conn.send(("killed", f"TimeoutError: {error}"))
    except InjectedCrash:
        # Simulate a hard crash faithfully: no report, nonzero exit.
        conn.close()
        os._exit(_CRASH_EXIT_CODE)
    except (KeyboardInterrupt, SystemExit, OperationCancelled) as error:
        conn.send(("interrupt", type(error).__name__))
    except SystemError as error:
        # CPython reports failed C-level allocations as SystemError
        # ("error return without exception set"); under an active memory
        # cap that is the cap at work, not a crash.
        if limits.max_memory_bytes is not None:
            _lift_memory_cap()
            conn.send(("oom", f"SystemError under memory cap: {error}"))
        else:
            conn.send(("crashed", f"SystemError: {error}"))
    except ReproError as error:
        try:
            conn.send(("fatal", error))
        except Exception:  # unpicklable exception payload
            conn.send(("fatal", ReproError(f"{type(error).__name__}: {error}")))
    except BaseException as error:  # noqa: BLE001 - the whole point
        conn.send(("crashed", f"{type(error).__name__}: {error}"))
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


class WorkerHandle:
    """A running worker subprocess started by :func:`start_worker`.

    Exposes the receiver :class:`~multiprocessing.connection.Connection`
    (whose readiness — a report *or* pipe EOF on worker death — is what a
    scheduler waits on, e.g. via ``multiprocessing.connection.wait``) and
    the absolute wall-clock deadline derived from the worker's limits.
    """

    __slots__ = ("process", "receiver", "limits", "deadline")

    def __init__(self, process, receiver, limits: WorkerLimits) -> None:
        self.process = process
        self.receiver = receiver
        self.limits = limits
        self.deadline = (
            None
            if limits.wall_timeout is None
            else time.monotonic() + limits.wall_timeout
        )

    def remaining(self) -> float | None:
        """Seconds until the wall kill is due (``None`` = no wall limit)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


def start_worker(
    job: str | Callable,
    args: tuple = (),
    kwargs: dict | None = None,
    limits: WorkerLimits | None = None,
    plan: FaultPlan | None = None,
) -> WorkerHandle:
    """Fork a worker subprocess running ``job``; returns without blocking.

    The returned :class:`WorkerHandle` must eventually be passed to
    :func:`reap_worker` (once its receiver is readable, or its wall
    deadline has passed) to collect the ``(status, payload)`` pair and
    release the process.  :func:`run_isolated` is the blocking composition
    of the two; the parallel engine's pool multiplexes many handles.
    """
    import multiprocessing

    limits = limits or WorkerLimits()
    kwargs = kwargs or {}
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context("spawn")
        if callable(job):
            raise ReproError(
                "isolated execution of bare callables requires the 'fork' "
                "start method; register the job and submit it by name"
            ) from None
    receiver, sender = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_main,
        args=(sender, job, args, kwargs, limits, plan),
        daemon=True,
    )
    process.start()
    sender.close()
    return WorkerHandle(process, receiver, limits)


def reap_worker(
    handle: WorkerHandle, timed_out: bool = False
) -> tuple[str, Any]:
    """Collect a worker's ``(status, payload)``; never raises for deaths.

    Call with ``timed_out=True`` when the worker's wall deadline passed
    without its receiver becoming readable — the worker is then terminated
    (escalating to ``kill``) and reported as ``("killed", ...)``.
    Otherwise the receiver must be readable: either the worker's report or
    the pipe EOF left by its death, which is classified by exit code.
    """
    process, receiver = handle.process, handle.receiver
    limits = handle.limits

    if timed_out:
        # Wall-clock overrun: escalate terminate → kill.  (A worker that
        # merely *died* does not land here: its pipe EOF wakes the poll, so
        # the death is classified by exit code below.)
        receiver.close()
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(1.0)
        return (
            "killed",
            f"worker exceeded wall timeout of {limits.wall_timeout}s",
        )

    message: tuple[str, Any] | None = None
    broken_report: str | None = None
    try:
        if receiver.poll(0):
            message = receiver.recv()
    except (EOFError, OSError):
        message = None  # worker died before/while reporting
    except Exception as error:  # noqa: BLE001 - corrupt/truncated payload
        # The worker died (or misbehaved) mid-send: the pipe carried a
        # partial or unpicklable report.  That is a worker death, not a
        # caller error — classify it below instead of raising here.
        broken_report = f"{type(error).__name__}: {error}"
    finally:
        receiver.close()

    process.join(5.0 if message is not None else 1.0)
    if message is not None:
        return message
    if process.is_alive():
        # The report pipe is dead but the process is not (e.g. the worker
        # closed its end and hung).  Reap it hard so the slot can restart —
        # returning while it still runs would leak a live subprocess.
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - stuck in kernel
            process.kill()
            process.join(1.0)
        detail = broken_report or "closed its result pipe"
        return (
            "crashed",
            f"worker broke its result pipe while still running ({detail})",
        )
    code = process.exitcode
    if code is not None and code < 0 and limits.max_memory_bytes is not None:
        # Died on a signal with a memory cap in force: overwhelmingly the
        # kernel OOM killer / allocation failure the cap is there to cause.
        return ("oom", f"worker killed by signal {-code} under memory cap")
    if code is not None and code < 0:
        return ("crashed", f"worker killed by signal {-code}")
    if (
        code not in (0, _CRASH_EXIT_CODE)
        and limits.max_memory_bytes is not None
    ):
        # A nonzero exit without a report under a memory cap: the cap hit
        # before the worker's own MemoryError handler could run (e.g.
        # during interpreter bootstrap).
        return ("oom", f"worker exited with status {code} under memory cap")
    if broken_report is not None:
        return (
            "crashed",
            f"worker died mid-result with an unreadable report "
            f"({broken_report}); exit status {code}",
        )
    return ("crashed", f"worker exited with status {code} without a result")


def run_isolated(
    job: str | Callable,
    args: tuple = (),
    kwargs: dict | None = None,
    limits: WorkerLimits | None = None,
    plan: FaultPlan | None = None,
) -> tuple[str, Any]:
    """Run ``job`` in a worker subprocess; never raises for worker deaths.

    Returns a ``(status, payload)`` pair:

    * ``("ok", value)`` — the job finished; ``value`` is its result;
    * ``("oom", detail)`` — memory cap or recursion guard killed it;
    * ``("killed", detail)`` — the wall-clock kill fired;
    * ``("crashed", detail)`` — nonzero exit, fatal signal, or an
      unclassified exception;
    * ``("fatal", error)`` — the job raised a :class:`ReproError`
      (``error`` is the exception object, for the caller to re-raise);
    * ``("interrupt", name)`` — ``KeyboardInterrupt`` / ``SystemExit``
      inside the worker (the caller should re-raise).

    Examples
    --------
    >>> status, value = run_isolated(len, args=([1, 2, 3],))
    >>> status, value
    ('ok', 3)
    """
    limits = limits or WorkerLimits()
    handle = start_worker(job, args=args, kwargs=kwargs, limits=limits, plan=plan)
    try:
        ready = handle.receiver.poll(limits.wall_timeout)
    except (EOFError, OSError):  # pragma: no cover - poll on a broken pipe
        ready = True  # reap_worker classifies the death by exit code
    return reap_worker(handle, timed_out=not ready)


def run_guarded(
    job: str | Callable,
    args: tuple = (),
    kwargs: dict | None = None,
    limits: WorkerLimits | None = None,
    plan: FaultPlan | None = None,
) -> tuple[str, Any]:
    """In-process counterpart of :func:`run_isolated` (same status pairs).

    Applies the recursion guard and catches resource deaths and injected
    crashes, but cannot enforce a hard memory cap or wall kill — those need
    the subprocess.  Used when isolation is disabled (the default for
    library calls) and by the retry layer's tests.
    """
    limits = limits or WorkerLimits()
    kwargs = kwargs or {}
    saved_recursion = sys.getrecursionlimit()
    if limits.recursion_limit is not None:
        sys.setrecursionlimit(limits.recursion_limit)
    try:
        if plan is not None:
            plan.install()
        try:
            fault_checkpoint("worker")
            fn = resolve_job(job)
            value = fn(*args, **kwargs)
            if plan is not None and plan.should_garble():
                value = GARBAGE_RESULT
        finally:
            if plan is not None:
                plan.uninstall()
        return ("ok", value)
    except MemoryError as error:
        return ("oom", f"MemoryError: {error}")
    except RecursionError as error:
        return ("oom", f"RecursionError: {error}")
    except TimeoutError as error:
        return ("killed", f"TimeoutError: {error}")
    except InjectedCrash as error:
        return ("crashed", f"InjectedCrash: {error}")
    except (KeyboardInterrupt, SystemExit, OperationCancelled) as error:
        return ("interrupt", type(error).__name__)
    except ReproError as error:
        return ("fatal", error)
    except Exception as error:  # noqa: BLE001 - classified for the caller
        return ("crashed", f"{type(error).__name__}: {error}")
    finally:
        sys.setrecursionlimit(saved_recursion)


STATUS_OUTCOMES = {
    "ok": Outcome.COMPLETED,
    "oom": Outcome.OOM,
    "killed": Outcome.KILLED,
    "crashed": Outcome.CRASHED,
}
"""Map from worker status strings to structured outcomes.

``"fatal"`` and ``"interrupt"`` are deliberately absent: they re-raise in
the caller instead of becoming outcomes.
"""
