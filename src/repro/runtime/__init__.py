"""Unified execution control for the exponential searches.

The comparison problem is NP-hard (Theorem 5.11), and so are the
homomorphism, isomorphism, and core computations the substrates rely on.
This package gives all of them one resource-control vocabulary:

* :class:`Budget` — node limit + wall-clock deadline + cancellation token,
  polled cheaply (amortized every ``check_interval`` nodes) inside every
  search loop;
* :class:`Outcome` — why a computation stopped (``COMPLETED`` /
  ``BUDGET_EXHAUSTED`` / ``DEADLINE_EXCEEDED`` / ``CANCELLED``, plus the
  hard-failure classes ``OOM`` / ``KILLED`` / ``CRASHED``), carried on
  :class:`~repro.algorithms.result.ComparisonResult` and the search objects
  so "proved optimal" is distinguishable from "gave up";
* :class:`CancellationToken` — cooperative external kill switch;
* :func:`compare_anytime` — the graceful-degradation ladder
  (signature → refine → exact) returning the best result the budget allows.

On top of the cooperative layer sits the **fault-tolerant execution
layer** (see ``docs/ROBUSTNESS.md``):

* :class:`Executor` / :class:`RetryPolicy` — retry with exponential
  backoff + jitter and a per-failure-class decision table (retry
  transient, degrade on resource death, fail fast on
  :class:`~repro.core.errors.ReproError`);
* :func:`run_isolated` / :class:`WorkerLimits` — worker-subprocess
  execution under hard ``setrlimit`` memory caps, a recursion guard, and a
  wall-clock kill; deaths come back as structured outcomes, never as a
  dead caller;
* :class:`FaultPlan` — deterministic, replayable fault injection
  (``MemoryError`` / ``TimeoutError`` / crash / garbage at the Nth budget
  checkpoint, chase step, or IO row) so every degradation path is
  exercised by tests rather than trusted.

See ``docs/RUNTIME.md`` for the budget design.
"""

from .budget import DEFAULT_CHECK_INTERVAL, Budget, resolve_control
from .cancellation import CancellationToken, OperationCancelled
from .crashfs import (
    CRASH_MODES,
    CrashFS,
    PowerCut,
    RealIO,
    count_io_steps,
)
from .faults import (
    FAULT_KINDS,
    FAULT_SITES,
    GARBAGE_RESULT,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    fault_checkpoint,
)
from .isolation import (
    JOB_REGISTRY,
    STATUS_OUTCOMES,
    WorkerFailure,
    WorkerHandle,
    WorkerLimits,
    reap_worker,
    register_job,
    resolve_job,
    run_guarded,
    run_isolated,
    start_worker,
)
from .outcome import Outcome
from .retry import (
    DEFAULT_DECISIONS,
    AttemptRecord,
    Decision,
    ExecutionReport,
    Executor,
    FailureClass,
    RetryPolicy,
    classify_failure,
)
from .anytime import DEFAULT_ANYTIME_NODE_BUDGET, compare_anytime

__all__ = [
    "AttemptRecord",
    "Budget",
    "CRASH_MODES",
    "CancellationToken",
    "CrashFS",
    "DEFAULT_ANYTIME_NODE_BUDGET",
    "DEFAULT_CHECK_INTERVAL",
    "DEFAULT_DECISIONS",
    "Decision",
    "ExecutionReport",
    "Executor",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FailureClass",
    "FaultPlan",
    "FaultSpec",
    "GARBAGE_RESULT",
    "InjectedCrash",
    "InjectedFault",
    "JOB_REGISTRY",
    "OperationCancelled",
    "Outcome",
    "PowerCut",
    "RealIO",
    "RetryPolicy",
    "STATUS_OUTCOMES",
    "WorkerFailure",
    "WorkerHandle",
    "WorkerLimits",
    "classify_failure",
    "compare_anytime",
    "count_io_steps",
    "fault_checkpoint",
    "reap_worker",
    "register_job",
    "resolve_control",
    "resolve_job",
    "run_guarded",
    "run_isolated",
    "start_worker",
]
