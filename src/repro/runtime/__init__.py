"""Unified execution control for the exponential searches.

The comparison problem is NP-hard (Theorem 5.11), and so are the
homomorphism, isomorphism, and core computations the substrates rely on.
This package gives all of them one resource-control vocabulary:

* :class:`Budget` — node limit + wall-clock deadline + cancellation token,
  polled cheaply (amortized every ``check_interval`` nodes) inside every
  search loop;
* :class:`Outcome` — why a computation stopped (``COMPLETED`` /
  ``BUDGET_EXHAUSTED`` / ``DEADLINE_EXCEEDED`` / ``CANCELLED``), carried on
  :class:`~repro.algorithms.result.ComparisonResult` and the search objects
  so "proved optimal" is distinguishable from "gave up";
* :class:`CancellationToken` — cooperative external kill switch;
* :func:`compare_anytime` — the graceful-degradation ladder
  (signature → refine → exact) returning the best result the budget allows.

See ``docs/RUNTIME.md`` for the full design.
"""

from .budget import DEFAULT_CHECK_INTERVAL, Budget, resolve_control
from .cancellation import CancellationToken
from .outcome import Outcome
from .anytime import DEFAULT_ANYTIME_NODE_BUDGET, compare_anytime

__all__ = [
    "Budget",
    "CancellationToken",
    "DEFAULT_ANYTIME_NODE_BUDGET",
    "DEFAULT_CHECK_INTERVAL",
    "Outcome",
    "compare_anytime",
    "resolve_control",
]
