"""Deterministic fault injection for the robustness test surface.

The exact comparison algorithm is NP-hard, and in practice it dies in ways
cooperative budgets cannot catch — ``MemoryError`` mid-backtrack,
``RecursionError`` deep in a homomorphism search, a chase run that explodes
on a pathological scenario.  The degradation paths that handle those deaths
(:mod:`repro.runtime.isolation`, :mod:`repro.runtime.retry`) must themselves
be *tested*, not trusted, so this module provides a seeded, replayable way
to make any of them happen on demand.

A :class:`FaultPlan` is a set of :class:`FaultSpec` triggers.  Production
code calls :func:`fault_checkpoint` at well-known **sites** —
``"budget"`` (every amortized :meth:`~repro.runtime.budget.Budget.check`),
``"chase"`` (every tgd firing), ``"io"`` (every CSV row), ``"worker"``
(worker-job entry) — which is a no-op unless a plan is installed.  When the
Nth checkpoint of a matching site is hit, the planned fault fires:

* ``memory-error`` — raises :class:`MemoryError` (simulated OOM);
* ``timeout-error`` — raises :class:`TimeoutError` (simulated hang/kill);
* ``crash`` — raises :class:`InjectedCrash`, a ``BaseException`` that no
  ``except Exception`` handler can swallow (in an isolated worker it turns
  into a nonzero process exit, exactly like a real interpreter crash);
* ``transient-error`` — raises :class:`InjectedFault` (a retriable
  ``RuntimeError`` standing in for flaky infrastructure);
* ``garbage-result`` — does not raise; instead the executor consults
  :meth:`FaultPlan.should_garble` after the job returns and replaces the
  result with the :data:`GARBAGE_RESULT` sentinel.

Plans are deterministic: checkpoint counters reset on every install, so the
same plan replayed over the same computation fires at exactly the same
step.  A spec may be pinned to a specific retry attempt (``attempt=1``
models a transient fault that a retry genuinely recovers from; the default
``attempt=None`` fires on every attempt, modelling a persistent resource
death).  A seeded ``probability`` mode exists for randomized soak tests and
replays identically for a given plan seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

FAULT_KINDS = (
    "memory-error",
    "timeout-error",
    "crash",
    "transient-error",
    "garbage-result",
)

FAULT_SITES = ("budget", "chase", "io", "worker", "storage")
"""Well-known checkpoint sites (a spec may also name ``"*"`` for any site).

``"storage"`` checkpoints fire on index-store mutation paths (WAL appends,
group-commit fsyncs, compaction) — see :mod:`repro.index.wal` and
:mod:`repro.runtime.crashfs` for the deterministic power-cut counterpart.
"""


class InjectedCrash(BaseException):
    """A simulated hard crash.

    Deliberately a ``BaseException``: ordinary ``except Exception`` recovery
    code must *not* be able to swallow it, mirroring a segfault or an
    ``os._exit`` in a C extension.  Only the isolation layer catches it (and
    converts it into a nonzero worker exit / a ``crashed`` outcome).
    """


class InjectedFault(RuntimeError):
    """A simulated transient infrastructure failure (retriable)."""


class _GarbageResult:
    """Singleton sentinel an injected worker returns instead of its result."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):  # pickles back to the singleton across processes
        return (_GarbageResult, ())

    def __repr__(self) -> str:
        return "<garbage-result>"


GARBAGE_RESULT = _GarbageResult()
"""What a garbage-injected job returns; executors must never trust it."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``kind`` at the ``at``-th hit of ``site``.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    site:
        A checkpoint site (:data:`FAULT_SITES`) or ``"*"`` for any site.
    at:
        1-based checkpoint index at which the fault fires (counted per
        site, reset on every plan install).  Ignored when ``probability``
        is set.
    attempt:
        Fire only on this 1-based retry attempt (``None`` = every attempt).
        ``attempt=1`` models a transient fault: the first try dies, the
        retry succeeds.
    probability:
        When set, fire at each checkpoint with this probability using the
        plan's seeded RNG instead of the deterministic ``at`` counter.
    """

    kind: str
    site: str = "*"
    at: int = 1
    attempt: int | None = None
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.site != "*" and self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from "
                f"{FAULT_SITES} or '*'"
            )
        if self.at < 1:
            raise ValueError(f"at must be a 1-based index, got {self.at}")
        if self.probability is not None and not 0 <= self.probability <= 1:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def matches_site(self, site: str) -> bool:
        """Whether this spec watches checkpoints of ``site``."""
        return self.site in ("*", site)

    def describe(self) -> str:
        """The compact ``kind@site:at[#attempt]`` form (see :func:`parse_fault_plan`)."""
        text = f"{self.kind}@{self.site}:{self.at}"
        if self.attempt is not None:
            text += f"#{self.attempt}"
        return text


@dataclass
class FaultEvent:
    """A fault that actually fired (recorded for assertions and logs)."""

    kind: str
    site: str
    checkpoint: int
    attempt: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "checkpoint": self.checkpoint,
            "attempt": self.attempt,
        }


class FaultPlan:
    """A replayable set of fault triggers, installable as a context manager.

    Examples
    --------
    >>> from repro.runtime.faults import FaultPlan, fault_checkpoint
    >>> plan = FaultPlan.single("memory-error", site="budget", at=2)
    >>> with plan:
    ...     fault_checkpoint("budget")      # checkpoint 1: no fault
    ...     fault_checkpoint("budget")      # checkpoint 2: boom
    Traceback (most recent call last):
        ...
    MemoryError: injected memory-error at budget checkpoint 2
    >>> [e.kind for e in plan.events]
    ['memory-error']
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int = 0):
        self.specs: list[FaultSpec] = list(specs or [])
        self.seed = seed
        self.attempt = 1
        self.events: list[FaultEvent] = []
        self._counters: dict[str, int] = {}
        self._rng = random.Random(seed)
        self._garble_armed = False

    # -- construction ----------------------------------------------------------

    @classmethod
    def single(
        cls,
        kind: str,
        site: str = "*",
        at: int = 1,
        attempt: int | None = None,
        seed: int = 0,
    ) -> FaultPlan:
        """A plan with one spec (the common test-fixture case)."""
        return cls([FaultSpec(kind, site=site, at=at, attempt=attempt)], seed=seed)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> FaultPlan:
        """Parse the CLI form: comma-separated ``kind@site:at[#attempt]``.

        ``site`` defaults to ``"*"`` and ``at`` to 1, so ``"memory-error"``
        alone is valid.  Examples: ``"memory-error@budget:3"``,
        ``"crash@worker:1#1,transient-error@io:2"``.
        """
        specs = []
        for part in filter(None, (p.strip() for p in text.split(","))):
            attempt = None
            if "#" in part:
                part, _, attempt_text = part.rpartition("#")
                attempt = _parse_int(attempt_text, "attempt", text)
            site, at = "*", 1
            if "@" in part:
                part, _, location = part.partition("@")
                site = location
                if ":" in location:
                    site, _, at_text = location.partition(":")
                    at = _parse_int(at_text, "checkpoint index", text)
            try:
                specs.append(
                    FaultSpec(part, site=site, at=at, attempt=attempt)
                )
            except ValueError as error:
                raise ValueError(f"bad fault plan {text!r}: {error}") from None
        if not specs:
            raise ValueError(f"fault plan {text!r} contains no faults")
        return cls(specs, seed=seed)

    def describe(self) -> str:
        """The plan in its parseable CLI form."""
        return ",".join(spec.describe() for spec in self.specs)

    # -- installation ----------------------------------------------------------

    def install(self) -> FaultPlan:
        """Make this the process-wide active plan; counters reset.

        Prefer the context-manager form (``with plan: ...``), which also
        deactivates on exit.
        """
        global _ACTIVE
        _ACTIVE = self
        self._counters.clear()
        self._rng = random.Random(self.seed)
        self._garble_armed = False
        return self

    def uninstall(self) -> None:
        """Deactivate (only if currently active)."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> FaultPlan:
        return self.install()

    def __exit__(self, *_exc) -> None:
        self.uninstall()

    # -- firing ----------------------------------------------------------------

    def hit(self, site: str) -> None:
        """Record one checkpoint of ``site``; raise if a spec fires here."""
        count = self._counters.get(site, 0) + 1
        self._counters[site] = count
        for spec in self.specs:
            if not spec.matches_site(site):
                continue
            if spec.attempt is not None and spec.attempt != self.attempt:
                continue
            if spec.probability is not None:
                if self._rng.random() >= spec.probability:
                    continue
            elif spec.at != count:
                continue
            self._fire(spec, site, count)

    def _fire(self, spec: FaultSpec, site: str, count: int) -> None:
        self.events.append(FaultEvent(spec.kind, site, count, self.attempt))
        message = f"injected {spec.kind} at {site} checkpoint {count}"
        if spec.kind == "memory-error":
            raise MemoryError(message)
        if spec.kind == "timeout-error":
            raise TimeoutError(message)
        if spec.kind == "crash":
            raise InjectedCrash(message)
        if spec.kind == "transient-error":
            raise InjectedFault(message)
        # garbage-result: no exception — arm the flag the executor polls
        # after the job returns.
        self._garble_armed = True

    def should_garble(self) -> bool:
        """Whether a fired ``garbage-result`` spec wants the result replaced.

        One-shot per install: polling consumes the armed flag.
        """
        armed = self._garble_armed
        self._garble_armed = False
        return armed


def _parse_int(text: str, what: str, plan_text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"bad fault plan {plan_text!r}: {what} {text!r} is not an integer"
        ) from None


_ACTIVE: FaultPlan | None = None


def fault_checkpoint(site: str) -> None:
    """Hook production code calls at an injection site (no-op when inactive).

    The fast path is one global read and a ``None`` comparison, so leaving
    these hooks in hot-adjacent paths (budget checks, chase firings, CSV
    rows) costs nothing in normal operation.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.hit(site)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any (for executor result-garbling)."""
    return _ACTIVE
