"""Structured outcomes of resource-controlled computations.

Every potentially-exponential search in this repository (exact comparison,
homomorphism/isomorphism search, core folding, match refinement) runs under
a :class:`~repro.runtime.budget.Budget` and finishes with an
:class:`Outcome` saying *why* it stopped.  This replaces the lone
``exhausted`` bool the modules used to carry, which conflated "proved
optimal / proved absent" with "gave up" — the silent-wrong-answer failure
mode the paper works around with its 8-hour timeout and starred table
entries.
"""

from __future__ import annotations

from enum import Enum


class Outcome(str, Enum):
    """Why a resource-controlled computation stopped.

    * ``COMPLETED`` — the search ran to natural completion; its answer is
      definitive (an exact score is optimal, a "no homomorphism" is a proof).
    * ``BUDGET_EXHAUSTED`` — the node/step budget ran out; the answer is a
      lower bound / inconclusive.
    * ``DEADLINE_EXCEEDED`` — the wall-clock deadline passed; ditto.
    * ``CANCELLED`` — a :class:`~repro.runtime.cancellation
      .CancellationToken` was triggered; ditto.

    The remaining members are *hard* failures reported by the fault-tolerant
    execution layer (:mod:`repro.runtime.isolation`) — the computation did
    not stop cooperatively, it died and was caught:

    * ``OOM`` — the memory cap killed it (``MemoryError`` under
      ``resource.setrlimit``, a recursion-depth blowup, or an OOM-killed
      worker process).
    * ``KILLED`` — the wall-clock kill fired (the worker overran its hard
      timeout and was terminated, or a simulated ``TimeoutError``).
    * ``CRASHED`` — the worker died with a nonzero exit / signal, raised an
      unclassified exception, or returned a garbage result.

    The enum derives from ``str`` so outcomes serialize directly to JSON and
    compare equal to their wire values (``Outcome.COMPLETED == "completed"``).
    """

    COMPLETED = "completed"
    BUDGET_EXHAUSTED = "budget-exhausted"
    DEADLINE_EXCEEDED = "deadline-exceeded"
    CANCELLED = "cancelled"
    OOM = "oom"
    KILLED = "killed"
    CRASHED = "crashed"

    @property
    def is_complete(self) -> bool:
        """Whether the computation ran to natural completion."""
        return self is Outcome.COMPLETED

    @property
    def is_resource_death(self) -> bool:
        """Whether a hard resource guard (memory cap / wall kill) fired.

        The retry layer's decision table degrades these to the approximate
        tier instead of retrying forever: a computation that OOM-ed once
        will OOM again on the same input.
        """
        return self in (Outcome.OOM, Outcome.KILLED)

    @property
    def marker(self) -> str:
        """The paper's table annotation: ``"†"`` for any cut-short run."""
        return "" if self.is_complete else "†"

    def __str__(self) -> str:  # str(Outcome.COMPLETED) == "completed"
        return self.value
