"""Structured outcomes of resource-controlled computations.

Every potentially-exponential search in this repository (exact comparison,
homomorphism/isomorphism search, core folding, match refinement) runs under
a :class:`~repro.runtime.budget.Budget` and finishes with an
:class:`Outcome` saying *why* it stopped.  This replaces the lone
``exhausted`` bool the modules used to carry, which conflated "proved
optimal / proved absent" with "gave up" — the silent-wrong-answer failure
mode the paper works around with its 8-hour timeout and starred table
entries.
"""

from __future__ import annotations

from enum import Enum


class Outcome(str, Enum):
    """Why a resource-controlled computation stopped.

    * ``COMPLETED`` — the search ran to natural completion; its answer is
      definitive (an exact score is optimal, a "no homomorphism" is a proof).
    * ``BUDGET_EXHAUSTED`` — the node/step budget ran out; the answer is a
      lower bound / inconclusive.
    * ``DEADLINE_EXCEEDED`` — the wall-clock deadline passed; ditto.
    * ``CANCELLED`` — a :class:`~repro.runtime.cancellation
      .CancellationToken` was triggered; ditto.

    The enum derives from ``str`` so outcomes serialize directly to JSON and
    compare equal to their wire values (``Outcome.COMPLETED == "completed"``).
    """

    COMPLETED = "completed"
    BUDGET_EXHAUSTED = "budget-exhausted"
    DEADLINE_EXCEEDED = "deadline-exceeded"
    CANCELLED = "cancelled"

    @property
    def is_complete(self) -> bool:
        """Whether the computation ran to natural completion."""
        return self is Outcome.COMPLETED

    @property
    def marker(self) -> str:
        """The paper's table annotation: ``"†"`` for any cut-short run."""
        return "" if self.is_complete else "†"

    def __str__(self) -> str:  # str(Outcome.COMPLETED) == "completed"
        return self.value
