"""The unified execution budget.

A :class:`Budget` combines the three resource controls every exponential
search in this repository needs:

* a **node limit** — the classic search-node cap (the paper's stand-in for
  its 8-hour exact-algorithm timeout);
* a wall-clock **deadline** — seconds from :meth:`Budget.start`;
* a cooperative **cancellation token** — external kill switch.

Searches call :meth:`Budget.spend` once per node.  The node limit is a
single integer comparison per call; the clock and the token are consulted
only every ``check_interval`` nodes, so the control adds no measurable cost
to the hot search loops while guaranteeing a cut-short search returns
within one check interval of the triggering event.

The first limit to trip wins and is recorded as the budget's
:class:`~repro.runtime.outcome.Outcome`; subsequent ``spend`` calls return
``False`` immediately without reclassifying the cause.
"""

from __future__ import annotations

import time

from ..obs.metrics import counter_inc
from .cancellation import CancellationToken
from .faults import fault_checkpoint
from .outcome import Outcome

DEFAULT_CHECK_INTERVAL = 256
"""How many spent nodes between wall-clock / cancellation checks."""


class Budget:
    """Node-count, deadline, and cancellation control for one computation.

    Parameters
    ----------
    node_limit:
        Maximum search nodes, or ``None`` for unlimited.  Must be positive —
        a non-positive limit is a configuration error, not a request for an
        empty search, and raises :class:`ValueError`.
    deadline:
        Wall-clock allowance in seconds, measured from :meth:`start`
        (implicitly the first check), or ``None`` for no deadline.  A
        deadline of ``0`` trips on the very first check.
    token:
        Optional :class:`~repro.runtime.cancellation.CancellationToken`.
    check_interval:
        Nodes between clock/token polls (amortization factor).

    Examples
    --------
    >>> budget = Budget(node_limit=2)
    >>> budget.spend(), budget.spend(), budget.spend()
    (True, True, False)
    >>> budget.outcome
    <Outcome.BUDGET_EXHAUSTED: 'budget-exhausted'>
    """

    __slots__ = (
        "node_limit",
        "deadline",
        "token",
        "check_interval",
        "nodes",
        "_outcome",
        "_started_at",
        "_expires_at",
        "_next_check",
    )

    def __init__(
        self,
        node_limit: int | None = None,
        deadline: float | None = None,
        token: CancellationToken | None = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        if node_limit is not None and node_limit <= 0:
            raise ValueError(
                f"node_limit must be positive, got {node_limit} "
                "(pass None for an unlimited budget)"
            )
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {deadline}")
        if check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {check_interval}"
            )
        self.node_limit = node_limit
        self.deadline = deadline
        self.token = token
        self.check_interval = check_interval
        self.nodes = 0
        self._outcome = Outcome.COMPLETED
        self._started_at: float | None = None
        self._expires_at: float | None = None
        self._next_check = check_interval

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def unlimited(cls) -> Budget:
        """A budget with no limits (still cancellable if a token is shared)."""
        return cls()

    def start(self) -> Budget:
        """Anchor the deadline clock.  Idempotent; returns ``self``."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.deadline is not None:
                self._expires_at = self._started_at + self.deadline
        return self

    def child(
        self,
        node_limit: int | None = None,
        check_interval: int | None = None,
    ) -> Budget:
        """A budget with its own node limit sharing this deadline and token.

        The child expires at the *same absolute instant* as the parent (the
        anytime ladder hands each rung the remaining wall clock this way)
        but counts its own nodes, so a per-rung node cap composes with the
        overall deadline.
        """
        self.start()
        sub = Budget(
            node_limit=node_limit,
            token=self.token,
            check_interval=check_interval or self.check_interval,
        )
        sub._started_at = self._started_at
        sub._expires_at = self._expires_at
        sub.deadline = self.deadline
        return sub

    # -- spending --------------------------------------------------------------

    def spend(self, n: int = 1) -> bool:
        """Account ``n`` search nodes; ``False`` once any limit has tripped.

        Hot-loop contract: searches call this once per node and unwind
        (keeping their best-so-far state consistent) as soon as it returns
        ``False``.
        """
        if self._outcome is not Outcome.COMPLETED:
            return False
        self.nodes += n
        if self.node_limit is not None and self.nodes > self.node_limit:
            self._outcome = Outcome.BUDGET_EXHAUSTED
            counter_inc("runtime.budget.trips", 1, outcome=self._outcome.value)
            return False
        if self.nodes >= self._next_check:
            self._next_check = self.nodes + self.check_interval
            return self.check()
        return True

    def check(self) -> bool:
        """Consult the token and the clock *now* (no amortization).

        Used at phase boundaries (e.g. between anytime-ladder rungs) where
        an immediate answer matters — a deadline of ``0`` trips here before
        any work is done.
        """
        if self._outcome is not Outcome.COMPLETED:
            return False
        # Fault-injection site: every un-amortized budget check is one
        # "budget" checkpoint (no-op without an installed FaultPlan).
        fault_checkpoint("budget")
        if self.token is not None and self.token.cancelled:
            self._outcome = Outcome.CANCELLED
            counter_inc("runtime.budget.trips", 1, outcome=self._outcome.value)
            return False
        if self._started_at is None:
            self.start()
        if (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        ):
            self._outcome = Outcome.DEADLINE_EXCEEDED
            counter_inc("runtime.budget.trips", 1, outcome=self._outcome.value)
            return False
        return True

    def trip(self, outcome: Outcome) -> None:
        """Force a non-complete outcome (first cause wins, like any limit).

        Used by guards that catch a hard failure *around* a search — e.g.
        the homomorphism engine converting a ``RecursionError`` into a
        structured ``CRASHED`` outcome — so the death is recorded with the
        same first-trip-wins semantics as the cooperative limits.
        """
        if outcome.is_complete:
            raise ValueError("trip() requires a non-complete outcome")
        if self._outcome is Outcome.COMPLETED:
            self._outcome = outcome
            counter_inc("runtime.budget.trips", 1, outcome=outcome.value)

    # -- inspection ------------------------------------------------------------

    @property
    def outcome(self) -> Outcome:
        """``COMPLETED`` while running / finished clean, else the first cause."""
        return self._outcome

    @property
    def interrupted(self) -> bool:
        """Whether any limit has tripped."""
        return self._outcome is not Outcome.COMPLETED

    def elapsed_seconds(self) -> float:
        """Seconds since :meth:`start` (``0.0`` if never started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_seconds(self) -> float | None:
        """Wall clock left before the deadline; ``None`` without a deadline."""
        if self._expires_at is None:
            return None if self.deadline is None else self.deadline
        return max(0.0, self._expires_at - time.monotonic())

    def __repr__(self) -> str:
        parts = [f"nodes={self.nodes}"]
        if self.node_limit is not None:
            parts.append(f"limit={self.node_limit}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline}s")
        if self.token is not None:
            parts.append(repr(self.token))
        parts.append(f"outcome={self._outcome.value}")
        return f"Budget({', '.join(parts)})"


def resolve_control(
    control: Budget | None,
    node_limit: int | None = None,
    deadline: float | None = None,
    token: CancellationToken | None = None,
    check_interval: int = DEFAULT_CHECK_INTERVAL,
) -> Budget:
    """Normalize an algorithm's legacy budget kwargs into one started Budget.

    Every search entry point accepts either a shared ``control`` budget
    (which wins, enabling one budget to govern a whole pipeline) or the
    individual ``node_limit`` / ``deadline`` / ``token`` knobs.
    """
    if control is not None:
        return control.start()
    return Budget(
        node_limit=node_limit,
        deadline=deadline,
        token=token,
        check_interval=check_interval,
    ).start()
