"""The anytime comparison ladder: signature → refine → assignment → exact.

The exact comparison algorithm is NP-hard (Theorem 5.11), so any caller
with a latency requirement faces the choice the paper resolves with an
8-hour timeout and starred table entries.  :func:`compare_anytime`
systematizes that: it always produces *some* valid score, spends whatever
budget remains improving it, and reports which rung of the ladder the
returned score came from and whether it is exact or a lower bound.

Rungs, cheapest first:

1. **signature** — the scalable greedy algorithm; near-instant, provides
   the floor.  Runs even under a 0-second deadline (it still honors the
   cancellation token).
2. **refine** — hill-climbing over the signature match; never lowers the
   score, stops at the shared deadline.
3. **assignment** — globally-optimal 1:1 completion over the candidate
   matrix (polynomial); never lowers the score, degrades back to the
   floor under the shared budget.
4. **exact** — the optimal search with the remaining wall clock (and a
   node cap); if it completes, the returned score is provably optimal.

Every rung's result is a complete, scoreable instance match, so whichever
rung the budget cuts, the caller holds a usable explanation — the anytime
property.
"""

from __future__ import annotations

import time

from ..core.instance import Instance, prepare_for_comparison
from ..mappings.constraints import MatchOptions
from ..obs.metrics import active_metrics
from ..obs.trace import span
from .budget import DEFAULT_CHECK_INTERVAL, Budget
from .cancellation import CancellationToken
from .outcome import Outcome

#: Default node cap for the exact rung (matches ``exact_compare``'s default).
DEFAULT_ANYTIME_NODE_BUDGET = 2_000_000


def compare_anytime(
    left: Instance,
    right: Instance,
    deadline: float | None = None,
    options: MatchOptions | None = None,
    token: CancellationToken | None = None,
    prepare: bool = True,
    node_budget: int = DEFAULT_ANYTIME_NODE_BUDGET,
    refine_move_budget: int | None = None,
    check_interval: int = DEFAULT_CHECK_INTERVAL,
    executor=None,
    assignment: bool = True,
):
    """Best similarity obtainable within ``deadline`` seconds.

    Parameters
    ----------
    left, right:
        The instances to compare (prepared automatically unless
        ``prepare=False``).
    deadline:
        Wall-clock allowance in seconds for the whole ladder; ``None``
        runs every rung to completion.  ``deadline=0`` returns the
        signature floor immediately.
    options:
        Match constraints and λ; defaults to :meth:`MatchOptions.general`.
    token:
        Cooperative cancellation; trips every rung within one check
        interval.
    node_budget:
        Node cap for the exact rung (composes with the deadline).
    refine_move_budget:
        Move cap for the refine rung; ``None`` uses the refine default.
    assignment:
        Run the globally-optimal assignment rung between refine and exact
        (disable to reproduce the pre-assignment three-rung ladder).
    executor:
        Optional :class:`~repro.runtime.retry.Executor`.  When given, the
        exact rung runs under its fault-tolerance policy — optionally in a
        memory-capped worker subprocess, with retry/backoff — and a rung
        that dies hard (``oom`` / ``killed`` / ``crashed``) *degrades*: the
        signature/refine floor stands, the result's outcome reports the
        death, and ``stats["fault_log"]`` carries the structured attempt
        log.  Each retry attempt gets a fresh child budget, so a partly
        spent node cap never leaks across attempts.

    Returns
    -------
    ComparisonResult
        ``result.similarity`` is the best score found (≥ the signature
        floor).  ``result.outcome`` says whether the ladder completed;
        ``result.stats["anytime_rung"]`` names the rung that produced the
        score and ``result.stats["anytime_score_is_exact"]`` is ``True``
        exactly when the exact rung finished, i.e. the score is provably
        optimal rather than a lower bound.

    Examples
    --------
    >>> from repro.core.instance import Instance
    >>> I = Instance.from_rows("R", ("A",), [("x",)], id_prefix="l")
    >>> J = Instance.from_rows("R", ("A",), [("x",)], id_prefix="r")
    >>> result = compare_anytime(I, J, deadline=5.0)
    >>> result.similarity
    1.0
    >>> result.stats["anytime_score_is_exact"]
    True
    """
    # Imported here, not at module top: algorithms/ itself imports the
    # runtime primitives, and a top-level import would be circular.
    from ..algorithms.assignment import assignment_compare
    from ..algorithms.exact import exact_compare
    from ..algorithms.refine import DEFAULT_MOVE_BUDGET, refine_match
    from ..algorithms.result import ComparisonResult
    from ..algorithms.signature import signature_compare

    if options is None:
        options = MatchOptions.general()
    if prepare:
        left, right = prepare_for_comparison(left, right)
    started = time.perf_counter()
    control = Budget(
        deadline=deadline, token=token, check_interval=check_interval
    ).start()

    with span("anytime.ladder", deadline=deadline) as ladder_span:
        # Rung 1 — signature floor.  Deliberately *not* under the deadline
        # (it must run even with deadline=0 so there is always a result),
        # but under the token so cancellation still stops it.
        floor_control = Budget(token=token, check_interval=check_interval)
        best = signature_compare(
            left, right, options=options, control=floor_control
        )
        best_rung = "signature"
        rungs_run = ["signature"]
        score_is_exact = False

        # Rung 2 — refinement under the shared budget.
        if control.check():
            rungs_run.append("refine")
            refined = refine_match(
                best,
                move_budget=(
                    DEFAULT_MOVE_BUDGET
                    if refine_move_budget is None
                    else refine_move_budget
                ),
                control=control,
            )
            if refined.similarity > best.similarity:
                best, best_rung = refined, "refine"

        # Rung 3 — globally-optimal assignment completion.  Seeded with
        # the current best so the greedy floor is not recomputed; under a
        # tripped budget it returns the seed unchanged (degrade-to-greedy),
        # so the ladder's floor guarantee is preserved.
        if assignment and control.check():
            rungs_run.append("assignment")
            assigned = assignment_compare(
                left,
                right,
                options=options,
                control=control,
                seed_result=best,
            )
            if assigned.similarity > best.similarity:
                best, best_rung = assigned, "assignment"

        # Rung 4 — exact search with the remaining wall clock and a node cap.
        exact_outcome: Outcome | None = None
        fault_log: list[dict] | None = None
        if control.check():
            rungs_run.append("exact")

            def attempt_exact() -> "ComparisonResult":
                # Fresh child budget per attempt: a retried attempt must not
                # inherit the nodes its dead predecessor already spent.
                return exact_compare(
                    left,
                    right,
                    options=options,
                    control=control.child(node_limit=node_budget),
                )

            if executor is not None:
                report = executor.run(
                    attempt_exact, degrade=lambda: None, label="exact-rung"
                )
                fault_log = report.log_dicts()
                exact = report.value
                if report.degraded or exact is None:
                    # The exact rung died hard; the signature/refine floor
                    # stands and the death is the ladder's outcome.
                    exact_outcome = report.outcome
                    exact = None
            else:
                exact = attempt_exact()
            if exact is not None:
                exact_outcome = exact.outcome
                if exact.outcome.is_complete:
                    # Completed exact search dominates: its score is the
                    # optimum.
                    best, best_rung, score_is_exact = exact, "exact", True
                elif exact.similarity > best.similarity:
                    best, best_rung = exact, "exact"

        if exact_outcome is not None:
            overall = exact_outcome
        else:
            control.check()  # classify why the ladder stopped early
            overall = control.outcome
        ladder_span.set(
            rung=best_rung,
            rungs_run=",".join(rungs_run),
            score_is_exact=score_is_exact,
        )
        ladder_span.set_status(overall.value)

    registry = active_metrics()
    if registry is not None:
        registry.counter("anytime.ladders")
        registry.counter("anytime.rung", 1, rung=best_rung)
        registry.counter("anytime.outcome", 1, outcome=overall.value)

    stats = {
        **best.stats,
        "anytime_rung": best_rung,
        "anytime_rungs_run": ",".join(rungs_run),
        "anytime_score_is_exact": score_is_exact,
        "outcome": overall.value,
    }
    if fault_log is not None:
        stats["fault_log"] = fault_log
        stats["anytime_degraded"] = overall.value in (
            "oom", "killed", "crashed"
        )
    return ComparisonResult(
        similarity=best.similarity,
        match=best.match,
        options=options,
        algorithm=f"anytime({best_rung})",
        outcome=overall,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
    )
