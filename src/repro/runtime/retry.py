"""Retry with exponential backoff and a per-failure-class decision table.

When a job dies in a worker (:mod:`repro.runtime.isolation`), three things
can reasonably happen, and which one is correct depends on *how* it died:

=============  ==========================================  ==============
failure class  examples                                    policy
=============  ==========================================  ==============
``transient``  worker crash, garbage result, ``OSError``   retry with
               flaky infrastructure                        backoff, then
                                                           degrade
``resource``   memory-cap ``MemoryError``, recursion       retry with
               blowup, wall-clock kill                     backoff, then
                                                           degrade
``fatal``      any :class:`~repro.core.errors.ReproError`  fail fast —
               (bad input, schema mismatch)                retrying cannot
                                                           help
``interrupt``  ``KeyboardInterrupt``, ``SystemExit``,      re-raise
               cooperative cancellation                    immediately
=============  ==========================================  ==============

Resource deaths are retried (bounded) before degrading because in a shared
serving environment they are frequently co-tenancy artifacts, not intrinsic
to the input; the bound keeps a genuinely-too-big input from looping.
Degrading means returning the caller-supplied ``degrade()`` fallback — for
comparisons, the signature-tier score, realizing the paper's approximate
floor as the answer of last resort.

Backoff is exponential with multiplicative seeded jitter, so retry storms
decorrelate across workers while individual schedules stay replayable.
:class:`Executor` bundles the whole stack — isolation on/off, limits,
retry policy, optional fault plan — behind one ``run()`` call and keeps a
structured per-attempt log.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from ..core.errors import ReproError
from .cancellation import OperationCancelled
from .faults import GARBAGE_RESULT, FaultPlan
from .isolation import (
    STATUS_OUTCOMES,
    WorkerFailure,
    WorkerLimits,
    run_guarded,
    run_isolated,
)
from .outcome import Outcome


class FailureClass(str, Enum):
    """How a failure should be treated by the decision table."""

    TRANSIENT = "transient"
    RESOURCE = "resource"
    FATAL = "fatal"
    INTERRUPT = "interrupt"


_STATUS_CLASSES = {
    "oom": FailureClass.RESOURCE,
    "killed": FailureClass.RESOURCE,
    "crashed": FailureClass.TRANSIENT,
    "garbage": FailureClass.TRANSIENT,
}


def classify_failure(error: BaseException) -> FailureClass:
    """Classify a raised exception for the decision table.

    Examples
    --------
    >>> classify_failure(MemoryError())
    <FailureClass.RESOURCE: 'resource'>
    >>> from repro.core.errors import SchemaError
    >>> classify_failure(SchemaError("bad"))
    <FailureClass.FATAL: 'fatal'>
    >>> classify_failure(KeyboardInterrupt())
    <FailureClass.INTERRUPT: 'interrupt'>
    """
    if isinstance(error, (KeyboardInterrupt, SystemExit, OperationCancelled)):
        return FailureClass.INTERRUPT
    if isinstance(error, (MemoryError, RecursionError, TimeoutError)):
        return FailureClass.RESOURCE
    if isinstance(error, ReproError):
        return FailureClass.FATAL
    return FailureClass.TRANSIENT


@dataclass(frozen=True)
class Decision:
    """What to do with one failure class."""

    retry: bool
    on_exhausted: str  # "degrade" | "fail"


DEFAULT_DECISIONS: dict[FailureClass, Decision] = {
    FailureClass.TRANSIENT: Decision(retry=True, on_exhausted="degrade"),
    FailureClass.RESOURCE: Decision(retry=True, on_exhausted="degrade"),
    FailureClass.FATAL: Decision(retry=False, on_exhausted="fail"),
    FailureClass.INTERRUPT: Decision(retry=False, on_exhausted="fail"),
}
"""The default decision table (see the module docstring's rationale)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``delay(attempt)`` for attempts 1, 2, 3… is ``base_delay *
    multiplier**(attempt-1)``, capped at ``max_delay``, then scaled by a
    uniform jitter factor in ``[1-jitter, 1+jitter]`` drawn from a seeded
    RNG — decorrelated across workers (different seeds) yet replayable.

    Examples
    --------
    >>> policy = RetryPolicy(retries=2, base_delay=0.1, jitter=0.0)
    >>> policy.delay(1, random.Random(0)), policy.delay(2, random.Random(0))
    (0.1, 0.2)
    """

    retries: int = 0
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter:
            raw *= rng.uniform(1 - self.jitter, 1 + self.jitter)
        return raw

    def delay_for(self, attempt: int, salt: object = None) -> float:
        """Decorrelated backoff: deterministic per ``(seed, salt, attempt)``.

        :meth:`delay` draws jitter from a caller-owned RNG, which makes the
        sequence depend on *draw order* — and synchronized clients sharing
        the default seed retry in lockstep, the thundering-herd pattern
        jitter exists to break.  This variant instead derives the jitter
        factor from a stable hash of ``(seed, salt, attempt)`` (stable
        across processes — not Python's randomized ``hash``), so:

        * two callers with different salts (task index, request id,
          worker slot) are decorrelated;
        * the same caller replays the identical schedule on every run;
        * completion order cannot change anyone's delay.

        The result stays within ``[raw * (1 - jitter), raw * (1 + jitter)]``
        of the un-jittered exponential ``raw``.
        """
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if not self.jitter:
            return raw
        digest = hashlib.blake2b(
            f"{self.seed}|{salt}|{attempt}".encode(), digest_size=8
        ).digest()
        rng = random.Random(int.from_bytes(digest, "big"))
        return raw * rng.uniform(1 - self.jitter, 1 + self.jitter)


@dataclass
class AttemptRecord:
    """One line of the executor's structured log."""

    attempt: int
    status: str  # "ok" | "oom" | "killed" | "crashed" | "garbage"
    failure_class: str | None = None
    error: str | None = None
    backoff_seconds: float | None = None
    elapsed_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "status": self.status,
            "failure_class": self.failure_class,
            "error": self.error,
            "backoff_seconds": self.backoff_seconds,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class ExecutionReport:
    """The result of :meth:`Executor.run`: value + provenance.

    ``outcome`` is ``COMPLETED`` when an attempt succeeded, otherwise the
    structured failure outcome of the *last* attempt (``oom`` / ``killed``
    / ``crashed``).  ``degraded`` is true when ``value`` came from the
    caller's fallback rather than the job.
    """

    outcome: Outcome
    value: Any
    attempts: list[AttemptRecord] = field(default_factory=list)
    degraded: bool = False
    error: str | None = None

    @property
    def completed(self) -> bool:
        return self.outcome.is_complete

    def log_dicts(self) -> list[dict]:
        """The attempt log as JSON-ready dictionaries."""
        return [record.as_dict() for record in self.attempts]


class Executor:
    """Fault-tolerant job runner: isolation + retry/backoff + degradation.

    Parameters
    ----------
    isolate:
        Run jobs in worker subprocesses (hard memory cap and wall kill).
        When false, jobs run in-process with soft guards only.
    limits:
        Resource caps applied to every job.
    retry:
        Backoff schedule and retry count.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` installed around
        every attempt (deterministic fault injection; the plan's
        ``attempt`` field is set to the 1-based attempt number so specs can
        target "first attempt only").
    sleep:
        Injectable sleep (tests pass a recorder to avoid real waiting).
    out:
        Optional sink for human-readable retry/degradation log lines.

    Examples
    --------
    >>> executor = Executor(retry=RetryPolicy(retries=1, base_delay=0.0))
    >>> report = executor.run(lambda: 42)
    >>> report.value, report.outcome.value, report.degraded
    (42, 'completed', False)
    """

    def __init__(
        self,
        isolate: bool = False,
        limits: WorkerLimits | None = None,
        retry: RetryPolicy | None = None,
        decisions: dict[FailureClass, Decision] | None = None,
        fault_plan: FaultPlan | None = None,
        sleep: Callable[[float], None] = time.sleep,
        out: Callable[[str], None] | None = None,
    ) -> None:
        self.isolate = isolate
        self.limits = limits or WorkerLimits()
        self.retry = retry or RetryPolicy()
        self.decisions = dict(DEFAULT_DECISIONS)
        if decisions:
            self.decisions.update(decisions)
        self.fault_plan = fault_plan
        self.sleep = sleep
        self.out = out or (lambda _line: None)

    def run(
        self,
        job: str | Callable,
        *args: Any,
        degrade: Callable[[], Any] | None = None,
        validate: Callable[[Any], bool] | None = None,
        label: str = "job",
        **kwargs: Any,
    ) -> ExecutionReport:
        """Run ``job`` under the full policy; return an :class:`ExecutionReport`.

        ``degrade`` supplies the fallback value once retries are exhausted
        on a degradable failure; without it the failure raises
        :class:`~repro.runtime.isolation.WorkerFailure`.  ``validate``
        (when given) must return truthy for a result to count as success —
        a falsy validation is treated as a transient ``garbage`` failure,
        which also catches injected garbage results.
        """
        attempts: list[AttemptRecord] = []
        total_attempts = 1 + self.retry.retries
        last_status = "crashed"
        last_detail = "no attempt ran"

        for attempt in range(1, total_attempts + 1):
            if self.fault_plan is not None:
                self.fault_plan.attempt = attempt
            started = time.perf_counter()
            runner = run_isolated if self.isolate else run_guarded
            status, payload = runner(
                job, args=args, kwargs=kwargs,
                limits=self.limits, plan=self.fault_plan,
            )
            elapsed = time.perf_counter() - started

            if status == "interrupt":
                raise KeyboardInterrupt(
                    f"{label} interrupted in worker ({payload})"
                )
            if status == "fatal":
                attempts.append(AttemptRecord(
                    attempt, "fatal", FailureClass.FATAL.value,
                    f"{type(payload).__name__}: {payload}",
                    elapsed_seconds=elapsed,
                ))
                self._log_attempts(label, attempts[-1:])
                raise payload
            if status == "ok":
                garbage = payload is GARBAGE_RESULT or (
                    validate is not None and not validate(payload)
                )
                if not garbage:
                    attempts.append(AttemptRecord(
                        attempt, "ok", elapsed_seconds=elapsed
                    ))
                    return ExecutionReport(
                        Outcome.COMPLETED, payload, attempts
                    )
                status, payload = "garbage", "result failed validation"

            failure_class = _STATUS_CLASSES[status]
            decision = self.decisions[failure_class]
            record = AttemptRecord(
                attempt, status, failure_class.value, str(payload),
                elapsed_seconds=elapsed,
            )
            attempts.append(record)
            last_status, last_detail = status, str(payload)

            if decision.retry and attempt < total_attempts:
                record.backoff_seconds = self.retry.delay_for(
                    attempt, salt=label
                )
                self.out(
                    f"[{label}] attempt {attempt}/{total_attempts} "
                    f"{status} ({payload}); backing off "
                    f"{record.backoff_seconds:.3f}s"
                )
                self.sleep(record.backoff_seconds)
                continue
            break

        outcome = STATUS_OUTCOMES.get(last_status, Outcome.CRASHED)
        decision = self.decisions[_STATUS_CLASSES[last_status]]
        if decision.on_exhausted == "degrade" and degrade is not None:
            self.out(
                f"[{label}] {last_status} after {len(attempts)} attempt(s); "
                f"degrading to fallback"
            )
            return ExecutionReport(
                outcome, degrade(), attempts, degraded=True,
                error=last_detail,
            )
        raise WorkerFailure(outcome, f"{label}: {last_detail}")

    def _log_attempts(self, label: str, records: list[AttemptRecord]) -> None:
        for record in records:
            self.out(
                f"[{label}] attempt {record.attempt} {record.status}: "
                f"{record.error}"
            )
