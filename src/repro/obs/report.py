"""Render a human-readable summary of exported observability artifacts.

Backs the ``obs report`` CLI subcommand: reads a ``--metrics`` JSON file
(and optionally a ``--trace`` JSONL file), validates both against the
documented schemas, and renders a plain-text table grouped by layer —
the at-a-glance "where did the work go" view of one run.
"""

from __future__ import annotations

from .metrics import split_metric_key
from .schema import validate_metrics, validate_profile


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def _layer_of(key: str) -> str:
    name, _ = split_metric_key(key)
    return name.split(".", 1)[0]


def render_report(
    metrics: dict | None = None,
    spans: list | None = None,
    profile: dict | None = None,
) -> str:
    """Render a text report from exported artifacts.

    ``metrics`` is a snapshot dict (``MetricsSnapshot.as_dict`` shape),
    ``spans`` a list of span dicts or :class:`~repro.obs.trace.Span`
    objects, ``profile`` a :meth:`ProfileCollector.as_dict` summary.
    All parts are optional; absent parts are skipped.
    """
    lines: list[str] = []

    if metrics is not None:
        validate_metrics(metrics)
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
        histograms = metrics.get("histograms", {})
        lines.append("== Counters ==")
        if counters:
            width = max(len(k) for k in counters)
            current_layer = None
            for key in sorted(counters):
                layer = _layer_of(key)
                if layer != current_layer:
                    if current_layer is not None:
                        lines.append("")
                    lines.append(f"[{layer}]")
                    current_layer = layer
                lines.append(
                    f"  {key:<{width}}  {_format_value(counters[key])}"
                )
        else:
            lines.append("  (none)")
        if gauges:
            lines.append("")
            lines.append("== Gauges ==")
            width = max(len(k) for k in gauges)
            for key in sorted(gauges):
                lines.append(f"  {key:<{width}}  {_format_value(gauges[key])}")
        if histograms:
            lines.append("")
            lines.append("== Histograms ==")
            for key in sorted(histograms):
                h = histograms[key]
                count = h["count"]
                mean = h["sum"] / count if count else 0.0
                lines.append(
                    f"  {key}: count={count} mean={mean:.2f} "
                    f"min={_format_value(h['min'])} "
                    f"max={_format_value(h['max'])}"
                )

    if profile is not None:
        validate_profile(profile)
        sites = profile.get("sites", {})
        if sites:
            if lines:
                lines.append("")
            lines.append("== Profile (top-K per site) ==")
            for site in sorted(sites):
                summary = sites[site]
                count = summary["count"]
                mean = summary["sum"] / count if count else 0.0
                lines.append(
                    f"  {site}: count={count} mean={mean:.2f} "
                    f"max={_format_value(summary['max'])}"
                )
                for entry in summary["top"]:
                    label = entry["label"] or "-"
                    lines.append(
                        f"    {_format_value(entry['value']):>8}  {label}"
                    )

    if spans:
        if lines:
            lines.append("")
        lines.append("== Spans ==")
        records = [
            s.as_dict() if hasattr(s, "as_dict") else s for s in spans
        ]
        records.sort(key=lambda s: (s["start"], s["span_id"]))
        by_name: dict[str, list[dict]] = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        for name in sorted(by_name):
            group = by_name[name]
            total = sum(r["duration"] for r in group)
            statuses = sorted({r["status"] for r in group})
            lines.append(
                f"  {name}: n={len(group)} total={total * 1000:.2f}ms "
                f"status={','.join(statuses)}"
            )
        slowest = sorted(
            records, key=lambda r: (-r["duration"], r["span_id"])
        )[:5]
        lines.append("  slowest:")
        for record in slowest:
            lines.append(
                f"    {record['duration'] * 1000:>9.2f}ms  "
                f"{record['name']} [{record['status']}]"
            )

    if not lines:
        return "(no observability artifacts)\n"
    return "\n".join(lines) + "\n"


__all__ = ["render_report"]
