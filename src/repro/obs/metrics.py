"""Process-local metrics: counters, gauges, histograms, exact aggregation.

Design constraints, in priority order:

1. **Free when disabled.**  The registry is opt-in; every instrumentation
   site does ``reg = active_metrics()`` followed by an ``is None`` check.
   No decorator magic, no dummy objects on the hot path.
2. **Deterministic.**  Counter values are exact integers (or exact float
   sums of deterministic quantities); snapshot keys are sorted; histogram
   buckets are fixed powers of two.  Two runs doing the same work produce
   byte-identical snapshots, which is what the serial-vs-parallel
   differential tests compare.
3. **Exact merge.**  :meth:`MetricsSnapshot.merge` is associative and
   commutative on counters and histograms (integer addition), so per-worker
   snapshots shipped back by the :class:`~repro.parallel.pool.WorkerPool`
   aggregate to exactly the serial totals regardless of completion order.

Labels are keyword arguments folded into the metric key at record time
(``exact.outcome{outcome=completed}``), keeping the storage a flat
``dict[str, number]`` that serializes without any custom encoder.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical storage key: ``name`` or ``name{k1=v1,k2=v2}`` (sorted).

    Examples
    --------
    >>> metric_key("exact.nodes")
    'exact.nodes'
    >>> metric_key("exact.outcome", {"outcome": "completed"})
    'exact.outcome{outcome=completed}'
    """
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for item in rest[:-1].split(","):
        label, _, value = item.partition("=")
        labels[label] = value
    return name, labels


def _bucket_of(value: float) -> int:
    """Histogram bucket exponent: smallest ``e`` with ``value <= 2**e``.

    Negative values all land in bucket 0 together with zero — histogram
    sites record sizes and counts, which are never negative.
    """
    exponent = 0
    bound = 1
    while value > bound:
        bound <<= 1
        exponent += 1
    return exponent


class MetricsSnapshot:
    """An immutable-by-convention, JSON-ready view of a registry's state.

    Attributes
    ----------
    counters:
        ``key -> total`` monotonic totals.
    gauges:
        ``key -> last value`` point-in-time readings.
    histograms:
        ``key -> {"count", "sum", "min", "max", "buckets"}`` where
        ``buckets`` maps the stringified bucket exponent ``e`` to the
        number of observations with ``value <= 2**e`` (and above the
        previous bucket).
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: dict[str, float] | None = None,
        gauges: dict[str, float] | None = None,
        histograms: dict[str, dict] | None = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = {
            key: {
                "count": h["count"],
                "sum": h["sum"],
                "min": h["min"],
                "max": h["max"],
                "buckets": dict(h["buckets"]),
            }
            for key, h in (histograms or {}).items()
        }

    def as_dict(self) -> dict:
        """Deterministically ordered plain-dict form (the export schema)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                key: {
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                    "buckets": {
                        b: h["buckets"][b]
                        for b in sorted(h["buckets"], key=int)
                    },
                }
                for key, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`as_dict` output (round-trip safe)."""
        return cls(
            counters=payload.get("counters", {}),
            gauges=payload.get("gauges", {}),
            histograms=payload.get("histograms", {}),
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot with ``other`` folded in.

        Counters and histogram buckets add; gauges take ``other``'s value
        (last writer wins, matching what a single process would have seen);
        histogram min/max combine.  Addition on integers is exact, so
        ``a.merge(b).merge(c)`` equals ``a.merge(c).merge(b)`` on every
        counter — the property the parallel engine relies on.
        """
        merged = MetricsSnapshot(self.counters, self.gauges, self.histograms)
        for key, value in other.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + value
        merged.gauges.update(other.gauges)
        for key, histogram in other.histograms.items():
            if key not in merged.histograms:
                merged.histograms[key] = {
                    "count": histogram["count"],
                    "sum": histogram["sum"],
                    "min": histogram["min"],
                    "max": histogram["max"],
                    "buckets": dict(histogram["buckets"]),
                }
                continue
            mine = merged.histograms[key]
            mine["count"] += histogram["count"]
            mine["sum"] += histogram["sum"]
            mine["min"] = min(mine["min"], histogram["min"])
            mine["max"] = max(mine["max"], histogram["max"])
            for bucket, count in histogram["buckets"].items():
                mine["buckets"][bucket] = (
                    mine["buckets"].get(bucket, 0) + count
                )
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"MetricsSnapshot({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )


class MetricsRegistry:
    """Collects counters, gauges, and histograms for one run.

    Not thread-safe by design: the repository's execution model is
    single-threaded per process (the pool forks), so locking would be pure
    overhead.  Per-worker registries are merged through snapshots.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("exact.nodes", 41)
    >>> registry.counter("exact.nodes")
    >>> registry.snapshot().counters["exact.nodes"]
    42
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}

    def counter(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to the counter ``name`` (with optional labels)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record ``value`` into the histogram ``name``."""
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = {
                "count": 0,
                "sum": 0,
                "min": value,
                "max": value,
                "buckets": {},
            }
            self._histograms[key] = histogram
        histogram["count"] += 1
        histogram["sum"] += value
        if value < histogram["min"]:
            histogram["min"] = value
        if value > histogram["max"]:
            histogram["max"] = value
        bucket = str(_bucket_of(value))
        histogram["buckets"][bucket] = histogram["buckets"].get(bucket, 0) + 1

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (possibly remote) snapshot into this registry in place."""
        merged = self.snapshot().merge(snapshot)
        self._counters = dict(merged.counters)
        self._gauges = dict(merged.gauges)
        self._histograms = merged.snapshot_histograms()

    def snapshot(self) -> MetricsSnapshot:
        """A detached copy of the current state."""
        return MetricsSnapshot(self._counters, self._gauges, self._histograms)

    def clear(self) -> None:
        """Drop every recorded metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )


# MetricsSnapshot helper used by merge_snapshot (kept off the public surface).
def _snapshot_histograms(self: MetricsSnapshot) -> dict[str, dict]:
    return {
        key: {
            "count": h["count"],
            "sum": h["sum"],
            "min": h["min"],
            "max": h["max"],
            "buckets": dict(h["buckets"]),
        }
        for key, h in self.histograms.items()
    }


MetricsSnapshot.snapshot_histograms = _snapshot_histograms  # type: ignore[attr-defined]


_ACTIVE: MetricsRegistry | None = None


def active_metrics() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when metrics are disabled.

    This is *the* hot-path guard: instrumentation sites call it once per
    search/run (never per node) and skip all recording when it returns
    ``None``.
    """
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the process-wide sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def collect_metrics(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable metrics for the duration of the block.

    Examples
    --------
    >>> import repro
    >>> from repro.obs import collect_metrics
    >>> I = repro.Instance.from_rows("R", ("A",), [("x",)], id_prefix="l")
    >>> J = repro.Instance.from_rows("R", ("A",), [("x",)], id_prefix="r")
    >>> with collect_metrics() as reg:
    ...     _ = repro.compare(I, J, repro.Algorithm.EXACT)
    >>> reg.snapshot().counters["exact.searches"]
    1
    """
    own = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(own)
    try:
        yield own
    finally:
        set_metrics(previous)


def counter_inc(name: str, value: float = 1, **labels) -> None:
    """Convenience: increment a counter iff metrics are enabled.

    For single-shot sites (CLI entry points, batch boundaries).  Hot loops
    should hold the ``active_metrics()`` result in a local instead.
    """
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name, value, **labels)


__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "active_metrics",
    "collect_metrics",
    "counter_inc",
    "metric_key",
    "set_metrics",
    "split_metric_key",
]
