"""Observability: structured metrics, tracing, and profiling hooks.

The paper's evaluation is all about *where the work goes* — exact-search
node expansions, signature map construction, chase firings, index
refinement counts — but a score alone cannot explain why a cell hit its
budget or why a query refined 40 candidates instead of 4.  This package is
the zero-dependency instrumentation substrate threaded through every
execution layer:

* :mod:`~repro.obs.metrics` — process-local counters / gauges / histograms
  behind a :class:`MetricsRegistry`.  Disabled by default: every
  instrumentation site guards on :func:`active_metrics` returning ``None``,
  so the cost of the disabled path is one module-global read.  Snapshots
  are deterministic (sorted keys, integer counters) and **merge exactly**,
  which is what lets per-worker registries from the parallel engine
  aggregate to the same totals as a serial run.
* :mod:`~repro.obs.trace` — structured span tracing
  (``with span("exact.search", pairs=12):``) with monotonic timings,
  budget/outcome annotations, and JSONL export/import.
* :mod:`~repro.obs.profile` — opt-in sampling collectors for the hot loops
  (exact-search fan-out, signature bucket build, chase firings, index
  refinement bounds) recording count/sum/max plus a top-K table per site.
* :mod:`~repro.obs.schema` — the documented JSON schemas every exported
  snapshot and span validates against (tested round-trip in
  ``tests/obs/test_export.py``).
* :mod:`~repro.obs.report` — renders a run summary table; the CLI front
  end is ``python -m repro obs report metrics.json [--trace run.jsonl]``.

Instrumentation contract (see ``docs/OBSERVABILITY.md`` for the counter
catalog):

1. hot loops count into plain local variables and record **once** per
   search/run — never per node — so enabling metrics costs one dict update
   per comparison and disabling them costs one ``is None`` check;
2. counters carry only deterministic quantities (node counts, pair counts,
   cache hits); wall-clock durations live on spans and are excluded from
   the serial-vs-parallel differential equality that CI gates on;
3. metric names are dotted ``layer.noun[.verb]`` paths; labels are a small
   closed set rendered ``name{key=value}``.
"""

from .metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    active_metrics,
    collect_metrics,
    counter_inc,
    metric_key,
    set_metrics,
)
from .profile import (
    ProfileCollector,
    active_profiler,
    collect_profile,
    profile_observe,
    set_profiler,
)
from .schema import (
    METRICS_SCHEMA,
    PROFILE_SCHEMA,
    SPAN_SCHEMA,
    SchemaError,
    validate_metrics,
    validate_profile,
    validate_span,
)
from .trace import (
    Span,
    Tracer,
    active_tracer,
    annotate_budget,
    collect_trace,
    set_tracer,
    span,
)
from .report import render_report

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PROFILE_SCHEMA",
    "ProfileCollector",
    "SPAN_SCHEMA",
    "SchemaError",
    "Span",
    "Tracer",
    "active_metrics",
    "active_profiler",
    "active_tracer",
    "annotate_budget",
    "collect_metrics",
    "collect_profile",
    "collect_trace",
    "counter_inc",
    "metric_key",
    "profile_observe",
    "render_report",
    "set_metrics",
    "set_profiler",
    "set_tracer",
    "span",
    "validate_metrics",
    "validate_profile",
    "validate_span",
]
