"""Opt-in profiling hooks for the hot loops.

Metrics answer "how much in total"; the profiler answers "how is the work
*distributed*".  Each :class:`ProfileCollector` site accumulates count /
sum / max over observed values (exact-search fan-out per node, signature
bucket sizes, chase firings per tgd, index refinement bounds) plus a
bounded top-K table of the largest observations with their labels — enough
to point at the one pathological bucket or pair without storing every
sample.

Like metrics and tracing, profiling is disabled by default behind a single
module-global; hot loops that observe per-iteration values should grab
``active_profiler()`` once into a local before the loop.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Iterator

DEFAULT_TOP_K = 8


class _Site:
    """Aggregate state for one profile site (internal)."""

    __slots__ = ("count", "total", "maximum", "top", "_seq")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0
        # Min-heap of (value, -seq, label): smallest of the kept top-K at
        # the root; -seq breaks value ties deterministically (keep oldest).
        self.top: list[tuple[float, int, str]] = []
        self._seq = 0


class ProfileCollector:
    """Collects per-site observation summaries with a bounded top-K table.

    Examples
    --------
    >>> prof = ProfileCollector(top_k=2)
    >>> for size, label in [(3, "a"), (9, "b"), (5, "c")]:
    ...     prof.observe("signature.bucket", size, label)
    >>> site = prof.as_dict()["sites"]["signature.bucket"]
    >>> site["count"], site["max"], [t["label"] for t in site["top"]]
    (3, 9, ['b', 'c'])
    """

    __slots__ = ("top_k", "_sites")

    def __init__(self, top_k: int = DEFAULT_TOP_K) -> None:
        self.top_k = top_k
        self._sites: dict[str, _Site] = {}

    def observe(self, site: str, value: float, label: str = "") -> None:
        """Record one observation at ``site`` (``label`` names the sample)."""
        state = self._sites.get(site)
        if state is None:
            state = _Site()
            self._sites[site] = state
        state.count += 1
        state.total += value
        if value > state.maximum:
            state.maximum = value
        entry = (value, -state._seq, label)
        state._seq += 1
        if len(state.top) < self.top_k:
            heapq.heappush(state.top, entry)
        elif entry > state.top[0]:
            heapq.heapreplace(state.top, entry)

    def as_dict(self) -> dict:
        """JSON-ready summary: per-site count/sum/max and top-K samples."""
        sites = {}
        for name in sorted(self._sites):
            state = self._sites[name]
            top = sorted(state.top, key=lambda t: (-t[0], -t[1]))
            sites[name] = {
                "count": state.count,
                "sum": state.total,
                "max": state.maximum,
                "top": [
                    {"value": value, "label": label}
                    for value, _neg_seq, label in top
                ],
            }
        return {"top_k": self.top_k, "sites": sites}

    def clear(self) -> None:
        self._sites.clear()

    def __repr__(self) -> str:
        return f"ProfileCollector({len(self._sites)} sites, top_k={self.top_k})"


_ACTIVE: ProfileCollector | None = None


def active_profiler() -> ProfileCollector | None:
    """The installed collector, or ``None`` when profiling is disabled."""
    return _ACTIVE


def set_profiler(
    collector: ProfileCollector | None,
) -> ProfileCollector | None:
    """Install ``collector`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    return previous


@contextmanager
def collect_profile(
    collector: ProfileCollector | None = None,
) -> Iterator[ProfileCollector]:
    """Enable profiling for the duration of the block."""
    own = collector if collector is not None else ProfileCollector()
    previous = set_profiler(own)
    try:
        yield own
    finally:
        set_profiler(previous)


def profile_observe(site: str, value: float, label: str = "") -> None:
    """Record one observation iff profiling is enabled.

    For one-shot sites.  Per-iteration loops should hold the
    :func:`active_profiler` result in a local instead.
    """
    collector = _ACTIVE
    if collector is not None:
        collector.observe(site, value, label)


__all__ = [
    "DEFAULT_TOP_K",
    "ProfileCollector",
    "active_profiler",
    "collect_profile",
    "profile_observe",
    "set_profiler",
]
