"""Structured span tracing with monotonic timings and JSONL export.

A *span* is one timed region of execution — an exact search, a chase run,
an index refinement phase — with a name, nesting (parent span), monotonic
start/duration, free-form attributes, and a status that carries the
:class:`~repro.runtime.Outcome` vocabulary (``completed`` /
``budget-exhausted`` / ``oom`` / ...).  Spans answer the question metrics
cannot: not just *how many* nodes a run expanded, but *which* comparison
spent them and under which budget verdict.

Like metrics, tracing is disabled by default and guarded by a single
module-global read: ``span(...)`` returns a shared no-op context manager
when no :class:`Tracer` is installed, so the disabled cost is one ``if``.

Timing is ``time.perf_counter`` relative to the tracer's epoch — spans
from one tracer order totally and deterministically by ``(start, span_id)``
— plus one wall-clock epoch stamp on the tracer for log correlation.
Export is JSON Lines (one span object per line, schema in
:mod:`~repro.obs.schema`); import/export round-trips exactly.
"""

from __future__ import annotations

import json
import time
from typing import IO, Iterable

from .schema import validate_span

_ATTR_TYPES = (str, int, float, bool, type(None))


def _clean_attributes(attributes: dict) -> dict:
    """Coerce attribute values to JSON scalars (repr() for anything else)."""
    cleaned = {}
    for key, value in attributes.items():
        if isinstance(value, bool) or isinstance(value, _ATTR_TYPES):
            cleaned[key] = value
        else:
            cleaned[key] = repr(value)
    return cleaned


class Span:
    """One region of traced execution.  Created via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "status",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration: float | None = None  # None while the span is open
        self.attributes = attributes
        self.status = "completed"

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(_clean_attributes(attributes))
        return self

    def set_status(self, status: str) -> "Span":
        """Record why the spanned work stopped (Outcome value or ``error``)."""
        self.status = str(status)
        return self

    def as_dict(self) -> dict:
        """JSON-ready form (the JSONL line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration if self.duration is not None else 0.0,
            "status": self.status,
            "attributes": {
                k: self.attributes[k] for k in sorted(self.attributes)
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span_record = cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload["start"],
            attributes=dict(payload.get("attributes", {})),
        )
        span_record.duration = payload.get("duration", 0.0)
        span_record.status = payload.get("status", "completed")
        return span_record

    def __repr__(self) -> str:
        timing = (
            f"{self.duration * 1000:.2f}ms"
            if self.duration is not None
            else "open"
        )
        return f"Span({self.name!r}, {timing}, status={self.status!r})"


class _NullSpan:
    """Shared no-op stand-in returned when tracing is disabled.

    Stateless, so one instance is safely reused as a context manager by
    every disabled ``span(...)`` call site.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attributes) -> "_NullSpan":
        return self

    def set_status(self, status: str) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`; closes the span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_record: Span) -> None:
        self._tracer = tracer
        self._span = span_record

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc_type is not None and self._span.status == "completed":
            self._span.set_status("error")
            self._span.set(error=f"{exc_type.__name__}: {exc}")
        self._tracer._close(self._span)
        return None


class Tracer:
    """Collects spans for one run; export/import is JSON Lines.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer", kind="demo"):
    ...     with tracer.span("inner"):
    ...         pass
    >>> [s.name for s in tracer.spans], tracer.spans[0].parent_id
    (['inner', 'outer'], 1)
    """

    def __init__(self) -> None:
        self.epoch_wall = time.time()
        self._epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._open: list[Span] = []
        self._next_id = 1

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a span; use as a context manager."""
        parent_id = self._open[-1].span_id if self._open else None
        span_record = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent_id,
            start=time.perf_counter() - self._epoch,
            attributes=_clean_attributes(attributes),
        )
        self._next_id += 1
        self._open.append(span_record)
        return _SpanContext(self, span_record)

    def _close(self, span_record: Span) -> None:
        span_record.duration = (
            time.perf_counter() - self._epoch - span_record.start
        )
        # Close any abandoned children first (defensive; normal exits pop
        # exactly the last element).
        while self._open and self._open[-1] is not span_record:
            self._open.pop()
        if self._open:
            self._open.pop()
        self.spans.append(span_record)

    def export_jsonl(self, sink: IO[str]) -> int:
        """Write one JSON object per completed span; returns the span count.

        Spans are written sorted by ``(start, span_id)`` so exports are
        deterministic regardless of close order (children close before
        parents, but parents *start* first).
        """
        ordered = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        for span_record in ordered:
            sink.write(json.dumps(span_record.as_dict(), sort_keys=True))
            sink.write("\n")
        return len(ordered)

    def export_path(self, path: str) -> int:
        """Export to a file path; returns the span count."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.export_jsonl(handle)

    @staticmethod
    def import_jsonl(lines: Iterable[str]) -> list[Span]:
        """Parse (and validate) spans from JSONL lines."""
        spans = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            validate_span(payload)
            spans.append(Span.from_dict(payload))
        return spans

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans, {len(self._open)} open)"


_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


class _TraceScope:
    """Context manager for :func:`collect_trace` (restores the previous tracer)."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)
        return None


def collect_trace(tracer: Tracer | None = None) -> _TraceScope:
    """Enable tracing for the duration of the block.

    Examples
    --------
    >>> import repro
    >>> from repro.obs import collect_trace
    >>> I = repro.Instance.from_rows("R", ("A",), [("x",)], id_prefix="l")
    >>> J = repro.Instance.from_rows("R", ("A",), [("x",)], id_prefix="r")
    >>> with collect_trace() as tracer:
    ...     _ = repro.compare(I, J, repro.Algorithm.EXACT)
    >>> any(s.name == "exact.search" for s in tracer.spans)
    True
    """
    return _TraceScope(tracer if tracer is not None else Tracer())


def span(name: str, **attributes):
    """Open a span on the active tracer, or a shared no-op when disabled.

    The instrumentation entry point::

        with span("exact.search", algorithm="exact") as sp:
            ...
            sp.set(nodes=control.nodes)
            sp.set_status(control.outcome.value)
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def annotate_budget(span_record, control) -> None:
    """Stamp a span with a :class:`~repro.runtime.Budget`'s verdict.

    Records the nodes spent, the limits in force, and the outcome as the
    span status — the per-span version of the † table markers.  Works on
    real spans and the disabled no-op alike.
    """
    span_record.set(
        nodes=control.nodes,
        node_limit=control.node_limit,
        deadline=control.deadline,
        outcome=control.outcome.value,
    )
    span_record.set_status(control.outcome.value)


__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "active_tracer",
    "annotate_budget",
    "collect_trace",
    "set_tracer",
    "span",
]
