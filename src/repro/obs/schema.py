"""Documented JSON schemas for exported observability artifacts.

Three artifact kinds leave the process:

* a **metrics snapshot** (``--metrics out.json``, worker→parent shipping),
* a **span** (one JSONL line of ``--trace out.jsonl``),
* a **profile summary** (embedded in the metrics file under ``"profile"``).

The schema dicts below use JSON-Schema vocabulary (``type`` /
``properties`` / ``required`` / ``additionalProperties``) as the
*documentation format*, and the ``validate_*`` functions are a hand-rolled
interpreter of exactly the subset these schemas use — the repository has a
no-third-party-dependency rule, so ``jsonschema`` is out of reach.  The
round-trip tests in ``tests/obs/test_export.py`` pin both directions:
everything we export validates, and known-bad shapes are rejected.
"""

from __future__ import annotations


class SchemaError(ValueError):
    """An exported artifact does not match its documented schema."""


_HISTOGRAM_SCHEMA = {
    "type": "object",
    "properties": {
        "count": {"type": "integer"},
        "sum": {"type": "number"},
        "min": {"type": "number"},
        "max": {"type": "number"},
        "buckets": {"type": "object", "values": {"type": "integer"}},
    },
    "required": ["count", "sum", "min", "max", "buckets"],
    "additionalProperties": False,
}

METRICS_SCHEMA = {
    "type": "object",
    "properties": {
        "counters": {"type": "object", "values": {"type": "number"}},
        "gauges": {"type": "object", "values": {"type": "number"}},
        "histograms": {"type": "object", "values": _HISTOGRAM_SCHEMA},
    },
    "required": ["counters", "gauges", "histograms"],
    "additionalProperties": False,
}

SPAN_SCHEMA = {
    "type": "object",
    "properties": {
        "name": {"type": "string"},
        "span_id": {"type": "integer"},
        "parent_id": {"type": ["integer", "null"]},
        "start": {"type": "number"},
        "duration": {"type": "number"},
        "status": {"type": "string"},
        "attributes": {
            "type": "object",
            "values": {"type": ["string", "number", "boolean", "null"]},
        },
    },
    "required": [
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "status",
        "attributes",
    ],
    "additionalProperties": False,
}

PROFILE_SCHEMA = {
    "type": "object",
    "properties": {
        "top_k": {"type": "integer"},
        "sites": {
            "type": "object",
            "values": {
                "type": "object",
                "properties": {
                    "count": {"type": "integer"},
                    "sum": {"type": "number"},
                    "max": {"type": "number"},
                    "top": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "properties": {
                                "value": {"type": "number"},
                                "label": {"type": "string"},
                            },
                            "required": ["value", "label"],
                            "additionalProperties": False,
                        },
                    },
                },
                "required": ["count", "sum", "max", "top"],
                "additionalProperties": False,
            },
        },
    },
    "required": ["top_k", "sites"],
    "additionalProperties": False,
}

# ``values`` (for homogeneous maps) mirrors JSON Schema's
# ``additionalProperties: <schema>`` form but keeps the interpreter below
# trivially small.

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(value, schema: dict, path: str) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise SchemaError(
                f"{path or '$'}: expected {'/'.join(types)}, "
                f"got {type(value).__name__}"
            )
    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in value:
                raise SchemaError(f"{path or '$'}: missing key {name!r}")
        value_schema = schema.get("values")
        for key, item in value.items():
            if not isinstance(key, str):
                raise SchemaError(f"{path or '$'}: non-string key {key!r}")
            child_path = f"{path}.{key}" if path else key
            if key in properties:
                _check(item, properties[key], child_path)
            elif value_schema is not None:
                _check(item, value_schema, child_path)
            elif schema.get("additionalProperties") is False:
                raise SchemaError(f"{path or '$'}: unexpected key {key!r}")
    elif isinstance(value, list):
        item_schema = schema.get("items")
        if item_schema is not None:
            for index, item in enumerate(value):
                _check(item, item_schema, f"{path}[{index}]")


def validate_metrics(payload: object) -> dict:
    """Validate a metrics-snapshot dict; returns it (raises SchemaError)."""
    if not isinstance(payload, dict):
        raise SchemaError(
            f"metrics snapshot must be an object, got {type(payload).__name__}"
        )
    _check(payload, METRICS_SCHEMA, "")
    return payload


def validate_span(payload: object) -> dict:
    """Validate one exported span dict; returns it (raises SchemaError)."""
    if not isinstance(payload, dict):
        raise SchemaError(
            f"span must be an object, got {type(payload).__name__}"
        )
    _check(payload, SPAN_SCHEMA, "")
    return payload


def validate_profile(payload: object) -> dict:
    """Validate a profile-summary dict; returns it (raises SchemaError)."""
    if not isinstance(payload, dict):
        raise SchemaError(
            f"profile summary must be an object, got {type(payload).__name__}"
        )
    _check(payload, PROFILE_SCHEMA, "")
    return payload


__all__ = [
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "SPAN_SCHEMA",
    "SchemaError",
    "validate_metrics",
    "validate_profile",
    "validate_span",
]
